//! Train/validation/test splitting (the paper's 60/20/20 protocol).

use crate::Dataset;
use pnc_linalg::rng::{permutation, seeded};
use pnc_linalg::Matrix;

/// One subset of a dataset.
#[derive(Debug, Clone)]
pub struct Subset {
    /// Feature rows for this subset.
    pub x: Matrix,
    /// Labels aligned with `x`.
    pub labels: Vec<usize>,
}

impl Subset {
    /// Number of samples in the subset.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// A 60/20/20 split of a dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// 60 % training subset.
    pub train: Subset,
    /// 20 % validation subset (early stopping, `μ` selection).
    pub val: Subset,
    /// 20 % held-out test subset.
    pub test: Subset,
}

/// Splits `ds` into 60/20/20 with a seeded shuffle.
pub fn split_60_20_20(ds: &Dataset, seed: u64) -> Split {
    let n = ds.len();
    let mut rng = seeded(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let perm = permutation(&mut rng, n);
    let n_train = (n as f64 * 0.6).round() as usize;
    let n_val = (n as f64 * 0.2).round() as usize;

    let take = |idx: &[usize]| -> Subset {
        Subset {
            x: ds.x().select_rows(idx),
            labels: idx.iter().map(|&i| ds.labels()[i]).collect(),
        }
    };
    Split {
        train: take(&perm[..n_train]),
        val: take(&perm[n_train..n_train + n_val]),
        test: take(&perm[n_train + n_val..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetId;

    #[test]
    fn proportions_are_60_20_20() {
        let ds = Dataset::generate(DatasetId::BreastCancer, 1);
        let s = ds.split(2);
        let n = ds.len() as f64;
        assert!((s.train.len() as f64 / n - 0.6).abs() < 0.01);
        assert!((s.val.len() as f64 / n - 0.2).abs() < 0.01);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), ds.len());
    }

    #[test]
    fn split_is_deterministic_in_seed() {
        let ds = Dataset::generate(DatasetId::Iris, 1);
        let a = ds.split(7);
        let b = ds.split(7);
        assert_eq!(a.train.labels, b.train.labels);
        let c = ds.split(8);
        assert_ne!(a.train.labels, c.train.labels);
    }

    #[test]
    fn subsets_are_disjoint() {
        // Rows are identifiable by their (continuous) feature vectors.
        let ds = Dataset::generate(DatasetId::Seeds, 3);
        let s = ds.split(4);
        let row_key = |m: &Matrix, i: usize| -> String {
            m.row_slice(i)
                .iter()
                .map(|v| format!("{v:.12}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut seen = std::collections::HashSet::new();
        for (sub, _) in [(&s.train, "train"), (&s.val, "val"), (&s.test, "test")] {
            for i in 0..sub.len() {
                assert!(
                    seen.insert(row_key(&sub.x, i)),
                    "duplicate row across subsets"
                );
            }
        }
    }

    #[test]
    fn all_classes_in_training_set() {
        for id in DatasetId::ALL {
            let ds = Dataset::generate(id, 5);
            let s = ds.split(6);
            let mut present = vec![false; ds.classes()];
            for &l in &s.train.labels {
                present[l] = true;
            }
            assert!(
                present.iter().all(|&p| p),
                "{}: missing class in train",
                id.name()
            );
        }
    }
}
