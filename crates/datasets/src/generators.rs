//! The per-dataset synthetic generators.
//!
//! Each generator returns `(features, labels)` with features already
//! scaled to [`crate::Dataset::SIGNAL_RANGE`]. Difficulty is controlled
//! by class-mean separation, feature noise and label noise, calibrated
//! so a `#in-3-#out` network lands in the accuracy band the paper
//! reports for the corresponding UCI dataset.

use crate::{Dataset, DatasetId};
use pnc_linalg::rng::{next_normal, seeded};
use pnc_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Generates the dataset for `id` with the given seed.
pub fn generate(id: DatasetId, seed: u64) -> (Matrix, Vec<usize>) {
    // Mix the dataset id into the seed so two datasets with the same
    // user seed do not share random streams.
    let tag = id as u64;
    let mut rng = seeded(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(tag));
    let (mut x, labels) = match id {
        DatasetId::AcuteInflammation => gaussian_mixture(
            &mut rng,
            GaussianSpec {
                samples: 120,
                features: 6,
                classes: 2,
                separation: 3.0,
                spread: (0.6, 1.2),
                label_noise: 0.0,
                imbalance: &[0.49, 0.51],
            },
        ),
        DatasetId::AcuteNephritis => gaussian_mixture(
            &mut rng,
            GaussianSpec {
                samples: 120,
                features: 6,
                classes: 2,
                separation: 3.2,
                spread: (0.6, 1.2),
                label_noise: 0.0,
                imbalance: &[0.42, 0.58],
            },
        ),
        DatasetId::BalanceScale => balance_scale(&mut rng),
        DatasetId::BreastCancer => gaussian_mixture(
            &mut rng,
            GaussianSpec {
                samples: 683,
                features: 9,
                classes: 2,
                separation: 2.1,
                spread: (0.7, 1.5),
                label_noise: 0.02,
                imbalance: &[0.65, 0.35],
            },
        ),
        DatasetId::Cardiotocography => gaussian_mixture(
            &mut rng,
            GaussianSpec {
                samples: 2126,
                features: 21,
                classes: 3,
                separation: 1.6,
                spread: (0.7, 1.6),
                label_noise: 0.03,
                imbalance: &[0.78, 0.14, 0.08],
            },
        ),
        DatasetId::EnergyY1 => energy(&mut rng, 768, 0),
        DatasetId::EnergyY2 => energy(&mut rng, 768, 1),
        DatasetId::Iris => gaussian_mixture(
            &mut rng,
            GaussianSpec {
                samples: 150,
                features: 4,
                classes: 3,
                separation: 2.2,
                spread: (0.5, 1.0),
                label_noise: 0.0,
                imbalance: &[0.333, 0.333, 0.334],
            },
        ),
        DatasetId::MammographicMass => gaussian_mixture(
            &mut rng,
            GaussianSpec {
                samples: 830,
                features: 5,
                classes: 2,
                separation: 1.4,
                spread: (0.8, 1.6),
                label_noise: 0.06,
                imbalance: &[0.51, 0.49],
            },
        ),
        DatasetId::Pendigits => pendigits(&mut rng),
        DatasetId::Seeds => gaussian_mixture(
            &mut rng,
            GaussianSpec {
                samples: 210,
                features: 7,
                classes: 3,
                separation: 2.0,
                spread: (0.6, 1.2),
                label_noise: 0.01,
                imbalance: &[0.333, 0.333, 0.334],
            },
        ),
        DatasetId::TicTacToe => tic_tac_toe(&mut rng),
        DatasetId::VertebralColumn => gaussian_mixture(
            &mut rng,
            GaussianSpec {
                samples: 310,
                features: 6,
                classes: 3,
                separation: 1.5,
                spread: (0.7, 1.4),
                label_noise: 0.04,
                imbalance: &[0.32, 0.48, 0.20],
            },
        ),
    };
    rescale_to_signal_range(&mut x);
    (x, labels)
}

/// Parameters of a class-conditional Gaussian mixture.
struct GaussianSpec<'a> {
    samples: usize,
    features: usize,
    classes: usize,
    /// Distance scale between class means, in units of feature noise.
    separation: f64,
    /// Range of per-feature standard deviations.
    spread: (f64, f64),
    /// Probability of flipping a label to a random class.
    label_noise: f64,
    /// Class priors (must sum to ≈ 1).
    imbalance: &'a [f64],
}

fn gaussian_mixture(rng: &mut StdRng, spec: GaussianSpec<'_>) -> (Matrix, Vec<usize>) {
    assert_eq!(spec.imbalance.len(), spec.classes);
    // Random unit-ish directions for class means, separated by `separation`.
    let mut means = Matrix::zeros(spec.classes, spec.features);
    for k in 0..spec.classes {
        let mut norm = 0.0;
        let mut dir = vec![0.0; spec.features];
        for d in dir.iter_mut() {
            *d = next_normal(rng);
            norm += *d * *d;
        }
        let norm = norm.sqrt().max(1e-9);
        for (j, d) in dir.iter().enumerate() {
            means[(k, j)] = spec.separation * d / norm * (1.0 + 0.25 * k as f64);
        }
    }
    // Per-feature noise scales shared across classes.
    let sigmas: Vec<f64> = (0..spec.features)
        .map(|_| rng.gen_range(spec.spread.0..spec.spread.1))
        .collect();

    let mut x = Matrix::zeros(spec.samples, spec.features);
    let mut labels = Vec::with_capacity(spec.samples);
    for i in 0..spec.samples {
        // Sample class from priors.
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut class = spec.classes - 1;
        for (k, &p) in spec.imbalance.iter().enumerate() {
            acc += p;
            if u < acc {
                class = k;
                break;
            }
        }
        for j in 0..spec.features {
            x[(i, j)] = means[(class, j)] + sigmas[j] * next_normal(rng);
        }
        let label = if spec.label_noise > 0.0 && rng.gen::<f64>() < spec.label_noise {
            rng.gen_range(0..spec.classes)
        } else {
            class
        };
        labels.push(label);
    }
    (x, labels)
}

/// Balance Scale: the real generative rule. Features are (left weight,
/// left distance, right weight, right distance) ∈ {1..5}; the label is
/// the sign of the torque difference.
#[allow(clippy::needless_range_loop)] // parallel structures indexed together
fn balance_scale(rng: &mut StdRng) -> (Matrix, Vec<usize>) {
    let n = 625;
    let mut x = Matrix::zeros(n, 4);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let vals: Vec<f64> = (0..4).map(|_| rng.gen_range(1..=5) as f64).collect();
        let torque = vals[0] * vals[1] - vals[2] * vals[3];
        let label = if torque > 0.0 {
            0 // tips left
        } else if torque < 0.0 {
            1 // tips right
        } else {
            2 // balanced
        };
        for j in 0..4 {
            // Small jitter so features are continuous voltages.
            x[(i, j)] = vals[j] + 0.05 * next_normal(rng);
        }
        labels.push(label);
    }
    (x, labels)
}

/// Energy Efficiency: 8 building-geometry features driving a smooth
/// nonlinear load, binned into terciles. `mode` 0 ≈ heating (y1),
/// 1 ≈ cooling (y2) — different response surfaces.
fn energy(rng: &mut StdRng, n: usize, mode: usize) -> (Matrix, Vec<usize>) {
    let mut x = Matrix::zeros(n, 8);
    let mut response = Vec::with_capacity(n);
    for i in 0..n {
        let f: Vec<f64> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for j in 0..8 {
            x[(i, j)] = f[j] + 0.03 * next_normal(rng);
        }
        let y = match mode {
            0 => {
                // Heating: compactness and glazing dominate.
                2.0 * f[0] - 1.2 * f[1] + 0.8 * f[4] * f[4] + 0.9 * f[6] + 0.5 * f[2] * f[3]
            }
            _ => {
                // Cooling: roof area and orientation interplay.
                1.5 * f[2] + 0.9 * f[5] - 1.1 * f[0] * f[4] + 0.7 * f[7] + 0.4 * f[1] * f[1]
            }
        } + 0.25 * next_normal(rng);
        response.push(y);
    }
    // Tercile binning.
    let mut sorted = response.clone();
    sorted.sort_by(f64::total_cmp);
    let t1 = sorted[n / 3];
    let t2 = sorted[2 * n / 3];
    let labels = response
        .iter()
        .map(|&y| {
            if y < t1 {
                0
            } else if y < t2 {
                1
            } else {
                2
            }
        })
        .collect();
    (x, labels)
}

/// Pendigits: each digit class is a smoothed random pen trajectory
/// template (8 sample points → 16 coordinates) plus per-sample warp and
/// noise.
#[allow(clippy::needless_range_loop)] // parallel structures indexed together
fn pendigits(rng: &mut StdRng) -> (Matrix, Vec<usize>) {
    let n = 10_992;
    let classes = 10;
    // Templates: a seeded random walk per class, smoothed.
    let mut templates = Matrix::zeros(classes, 16);
    for k in 0..classes {
        let mut px = 0.0;
        let mut py = 0.0;
        for step in 0..8 {
            px += next_normal(rng);
            py += next_normal(rng);
            templates[(k, 2 * step)] = px;
            templates[(k, 2 * step + 1)] = py;
        }
    }
    let mut x = Matrix::zeros(n, 16);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes; // balanced like the original
        let scale = 1.0 + 0.15 * next_normal(rng);
        let dx = 0.3 * next_normal(rng);
        let dy = 0.3 * next_normal(rng);
        for step in 0..8 {
            x[(i, 2 * step)] = templates[(class, 2 * step)] * scale + dx + 0.35 * next_normal(rng);
            x[(i, 2 * step + 1)] =
                templates[(class, 2 * step + 1)] * scale + dy + 0.35 * next_normal(rng);
        }
        labels.push(class);
    }
    (x, labels)
}

/// Tic-Tac-Toe-like endgame data: nine board cells in {−1, 0, +1}
/// (o / empty / x) with the label "x has a winning line". Structured,
/// discrete, and linearly inseparable — like the original.
#[allow(clippy::needless_range_loop)] // parallel structures indexed together
fn tic_tac_toe(rng: &mut StdRng) -> (Matrix, Vec<usize>) {
    const LINES: [[usize; 3]; 8] = [
        [0, 1, 2],
        [3, 4, 5],
        [6, 7, 8],
        [0, 3, 6],
        [1, 4, 7],
        [2, 5, 8],
        [0, 4, 8],
        [2, 4, 6],
    ];
    let n = 958;
    let mut x = Matrix::zeros(n, 9);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let mut board = [0i8; 9];
        for cell in board.iter_mut() {
            *cell = match rng.gen_range(0..3) {
                0 => -1,
                1 => 0,
                _ => 1,
            };
        }
        let x_wins = LINES.iter().any(|line| line.iter().all(|&c| board[c] == 1));
        for (j, &cell) in board.iter().enumerate() {
            x[(i, j)] = cell as f64 + 0.05 * next_normal(rng);
        }
        labels.push(usize::from(x_wins));
    }
    (x, labels)
}

/// Rescales every feature column linearly into the printed signal range.
fn rescale_to_signal_range(x: &mut Matrix) {
    let (lo, hi) = Dataset::SIGNAL_RANGE;
    for j in 0..x.cols() {
        let col = x.col_vec(j);
        let cmin = col.iter().cloned().fold(f64::INFINITY, f64::min);
        let cmax = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let range = (cmax - cmin).max(1e-12);
        for i in 0..x.rows() {
            let t = (x[(i, j)] - cmin) / range;
            x[(i, j)] = lo + t * (hi - lo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)] // x rows and labels advance together
    fn balance_scale_rule_holds() {
        let mut rng = seeded(3);
        let (x, labels) = balance_scale(&mut rng);
        // Re-derive the torque rule from the (jittered) features; jitter
        // is small enough that rounding recovers the integers.
        for i in 0..x.rows() {
            let v: Vec<f64> = x.row_slice(i).iter().map(|&f| f.round()).collect();
            let torque = v[0] * v[1] - v[2] * v[3];
            let expect = if torque > 0.0 {
                0
            } else if torque < 0.0 {
                1
            } else {
                2
            };
            assert_eq!(labels[i], expect, "row {i}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // x rows and labels advance together
    fn tictactoe_labels_match_rule() {
        let mut rng = seeded(4);
        let (x, labels) = tic_tac_toe(&mut rng);
        let lines: [[usize; 3]; 8] = [
            [0, 1, 2],
            [3, 4, 5],
            [6, 7, 8],
            [0, 3, 6],
            [1, 4, 7],
            [2, 5, 8],
            [0, 4, 8],
            [2, 4, 6],
        ];
        for i in 0..50 {
            let board: Vec<i8> = x.row_slice(i).iter().map(|&f| f.round() as i8).collect();
            let x_wins = lines.iter().any(|l| l.iter().all(|&c| board[c] == 1));
            assert_eq!(labels[i], usize::from(x_wins), "row {i}");
        }
    }

    #[test]
    fn energy_terciles_are_balanced() {
        let mut rng = seeded(5);
        let (_, labels) = energy(&mut rng, 768, 0);
        let mut counts = [0usize; 3];
        for &l in &labels {
            counts[l] += 1;
        }
        for c in counts {
            assert!((230..=290).contains(&c), "tercile counts {counts:?}");
        }
    }

    #[test]
    fn energy_modes_differ() {
        let mut rng = seeded(6);
        let (_, l1) = energy(&mut rng, 500, 0);
        let mut rng = seeded(6);
        let (_, l2) = energy(&mut rng, 500, 1);
        assert_ne!(l1, l2);
    }

    #[test]
    fn pendigits_is_class_balanced() {
        let mut rng = seeded(7);
        let (_, labels) = pendigits(&mut rng);
        let mut counts = [0usize; 10];
        for &l in &labels {
            counts[l] += 1;
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 2, "{counts:?}");
    }

    #[test]
    fn gaussian_separation_orders_difficulty() {
        // Larger separation → a nearest-class-mean classifier does
        // better on its own training data.
        let acc_of = |sep: f64| -> f64 {
            let mut rng = seeded(11);
            let (x, labels) = gaussian_mixture(
                &mut rng,
                GaussianSpec {
                    samples: 600,
                    features: 6,
                    classes: 3,
                    separation: sep,
                    spread: (0.8, 1.2),
                    label_noise: 0.0,
                    imbalance: &[0.33, 0.33, 0.34],
                },
            );
            // Estimate class means, classify by nearest mean.
            let mut means = Matrix::zeros(3, 6);
            let mut counts = [0.0f64; 3];
            for i in 0..x.rows() {
                counts[labels[i]] += 1.0;
                for j in 0..6 {
                    means[(labels[i], j)] += x[(i, j)];
                }
            }
            for k in 0..3 {
                for j in 0..6 {
                    means[(k, j)] /= counts[k].max(1.0);
                }
            }
            let mut correct = 0usize;
            for i in 0..x.rows() {
                let mut best = 0usize;
                let mut bd = f64::INFINITY;
                for k in 0..3 {
                    let d: f64 = (0..6).map(|j| (x[(i, j)] - means[(k, j)]).powi(2)).sum();
                    if d < bd {
                        bd = d;
                        best = k;
                    }
                }
                correct += usize::from(best == labels[i]);
            }
            correct as f64 / x.rows() as f64
        };
        let easy = acc_of(3.0);
        let hard = acc_of(0.8);
        assert!(easy > hard + 0.1, "easy {easy} vs hard {hard}");
        assert!(easy > 0.9, "easy mixture should be near-separable: {easy}");
    }
}
