//! CSV import/export of datasets.
//!
//! The built-in generators are *stand-ins* for the UCI files (see
//! DESIGN.md §3). Users who have the real files — or their own sensor
//! logs — can load them here and run the identical pipeline: the CSV
//! format is one sample per row, features first, integer class label in
//! the last column, with an optional header row.
//!
//! Features are rescaled into [`crate::Dataset::SIGNAL_RANGE`] on load
//! (printed circuits consume voltages, not raw units).

use crate::Dataset;
use pnc_linalg::Matrix;
use std::fmt;
use std::path::Path;

/// Errors from CSV loading.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// File had no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv i/o error: {e}"),
            CsvError::Malformed { line, message } => {
                write!(f, "csv line {line}: {message}")
            }
            CsvError::Empty => write!(f, "csv contains no data rows"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// A dataset loaded from user data rather than a built-in generator.
#[derive(Debug, Clone)]
pub struct CustomDataset {
    /// Features scaled to [`Dataset::SIGNAL_RANGE`] (`samples × features`).
    pub x: Matrix,
    /// Integer labels in `0..classes`.
    pub labels: Vec<usize>,
    /// Number of classes (max label + 1).
    pub classes: usize,
}

impl CustomDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.x.cols()
    }

    /// Splits 60/20/20 with a seeded shuffle, like the built-in
    /// datasets.
    pub fn split(&self, seed: u64) -> crate::Split {
        let n = self.len();
        let mut rng = pnc_linalg::rng::seeded(seed ^ 0xC0FF_EE00_DADA_5EED);
        let perm = pnc_linalg::rng::permutation(&mut rng, n);
        let n_train = (n as f64 * 0.6).round() as usize;
        let n_val = (n as f64 * 0.2).round() as usize;
        let take = |idx: &[usize]| crate::Subset {
            x: self.x.select_rows(idx),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
        };
        crate::Split {
            train: take(&perm[..n_train]),
            val: take(&perm[n_train..n_train + n_val]),
            test: take(&perm[n_train + n_val..]),
        }
    }
}

/// Parses CSV text: features…, label per row; a non-numeric first row
/// is treated as a header and skipped. Labels may be arbitrary
/// non-negative integers — they are compacted to `0..classes`
/// preserving numeric order.
pub fn parse_csv(text: &str) -> Result<CustomDataset, CsvError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut raw_labels: Vec<u64> = Vec::new();
    let mut width: Option<usize> = None;

    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if cells.len() < 2 {
            return Err(CsvError::Malformed {
                line: line_no,
                message: "need at least one feature column plus a label".to_string(),
            });
        }
        let parsed: Result<Vec<f64>, _> = cells.iter().map(|c| c.parse::<f64>()).collect();
        let values = match parsed {
            Ok(v) => v,
            Err(_) if rows.is_empty() && raw_labels.is_empty() => {
                // Header row.
                continue;
            }
            Err(_) => {
                return Err(CsvError::Malformed {
                    line: line_no,
                    message: "non-numeric cell".to_string(),
                });
            }
        };
        match width {
            None => width = Some(values.len()),
            Some(w) if w != values.len() => {
                return Err(CsvError::Malformed {
                    line: line_no,
                    message: format!("expected {w} columns, found {}", values.len()),
                });
            }
            _ => {}
        }
        // lint: allow(L001, reason = "the column-count check above guarantees at least two cells")
        let label_raw = *values.last().expect("at least two cells");
        if label_raw < 0.0 || label_raw.fract() != 0.0 {
            return Err(CsvError::Malformed {
                line: line_no,
                message: format!("label must be a non-negative integer, got {label_raw}"),
            });
        }
        raw_labels.push(label_raw as u64);
        rows.push(values[..values.len() - 1].to_vec());
    }

    if rows.is_empty() {
        return Err(CsvError::Empty);
    }

    // Compact labels to 0..classes, preserving numeric order.
    let mut distinct: Vec<u64> = raw_labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let labels: Vec<usize> = raw_labels
        .iter()
        // lint: allow(L001, reason = "distinct was deduplicated from these very labels")
        .map(|l| distinct.binary_search(l).expect("present"))
        .collect();

    // Rescale features to the signal range.
    let d = rows[0].len();
    let mut x = Matrix::zeros(rows.len(), d);
    for (i, r) in rows.iter().enumerate() {
        x.row_slice_mut(i).copy_from_slice(r);
    }
    let (lo, hi) = Dataset::SIGNAL_RANGE;
    for j in 0..d {
        let col = x.col_vec(j);
        let cmin = col.iter().cloned().fold(f64::INFINITY, f64::min);
        let cmax = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let range = (cmax - cmin).max(1e-12);
        for i in 0..x.rows() {
            let t = (x[(i, j)] - cmin) / range;
            x[(i, j)] = lo + t * (hi - lo);
        }
    }

    Ok(CustomDataset {
        x,
        labels,
        classes: distinct.len(),
    })
}

/// Loads a dataset from a CSV file (see [`parse_csv`] for the format).
///
/// # Errors
///
/// Returns I/O and format errors.
pub fn load_csv(path: &Path) -> Result<CustomDataset, CsvError> {
    parse_csv(&std::fs::read_to_string(path)?)
}

/// Writes a built-in dataset to CSV (features…, label) — handy for
/// inspecting the synthetic stand-ins or round-tripping through
/// external tools.
///
/// # Errors
///
/// Returns I/O errors.
pub fn save_csv(dataset: &Dataset, path: &Path) -> Result<(), CsvError> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path)?;
    let d = dataset.features();
    let header: Vec<String> = (0..d)
        .map(|j| format!("f{j}"))
        .chain(std::iter::once("label".to_string()))
        .collect();
    writeln!(f, "{}", header.join(","))?;
    for i in 0..dataset.len() {
        let mut cells: Vec<String> = dataset
            .x()
            .row_slice(i)
            .iter()
            .map(|v| format!("{v:.6}"))
            .collect();
        cells.push(dataset.labels()[i].to_string());
        writeln!(f, "{}", cells.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetId;

    #[test]
    fn parses_plain_csv() {
        let ds = parse_csv("1.0,2.0,0\n3.0,4.0,1\n5.0,6.0,0\n").unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.features(), 2);
        assert_eq!(ds.classes, 2);
        assert_eq!(ds.labels, vec![0, 1, 0]);
        // Features rescaled into the signal range.
        let (lo, hi) = Dataset::SIGNAL_RANGE;
        assert!(ds.x.min() >= lo - 1e-12 && ds.x.max() <= hi + 1e-12);
    }

    #[test]
    fn skips_header_row() {
        let ds = parse_csv("temp,humidity,label\n1.0,2.0,0\n3.0,4.0,1\n").unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn compacts_sparse_labels() {
        let ds = parse_csv("0,5\n1,9\n2,5\n").unwrap();
        assert_eq!(ds.classes, 2);
        assert_eq!(ds.labels, vec![0, 1, 0]); // 5 → 0, 9 → 1
    }

    #[test]
    fn rejects_ragged_rows() {
        let e = parse_csv("1,2,0\n1,2,3,0\n").unwrap_err();
        assert!(matches!(e, CsvError::Malformed { line: 2, .. }), "{e}");
    }

    #[test]
    fn rejects_non_integer_label() {
        let e = parse_csv("1,2,0.5\n").unwrap_err();
        assert!(matches!(e, CsvError::Malformed { .. }), "{e}");
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(parse_csv("\n\n"), Err(CsvError::Empty)));
    }

    #[test]
    fn rejects_mid_file_garbage() {
        let e = parse_csv("1,2,0\nfoo,bar,baz\n").unwrap_err();
        assert!(matches!(e, CsvError::Malformed { line: 2, .. }), "{e}");
    }

    #[test]
    fn roundtrip_through_file() {
        let ds = Dataset::generate(DatasetId::Iris, 3);
        let dir = std::env::temp_dir().join("pnc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("iris.csv");
        save_csv(&ds, &path).unwrap();
        let loaded = load_csv(&path).unwrap();
        assert_eq!(loaded.len(), ds.len());
        assert_eq!(loaded.features(), ds.features());
        assert_eq!(loaded.classes, ds.classes());
        assert_eq!(loaded.labels, ds.labels());
        // Features survive the normalize → write → renormalize loop.
        assert!(loaded.x.approx_eq(ds.x(), 1e-4));
        std::fs::remove_file(path).ok();
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Any numeric table with integer labels survives
            /// format → parse with shapes, labels and feature order
            /// intact (values are rescaled, so we check rank order per
            /// column instead of raw values).
            #[test]
            fn format_parse_roundtrip(
                rows in proptest::collection::vec(
                    (proptest::collection::vec(-100.0..100.0f64, 3),
                     0u64..4),
                    4..40,
                )
            ) {
                let text: String = rows
                    .iter()
                    .map(|(f, l)| {
                        format!("{},{},{},{}", f[0], f[1], f[2], l)
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
                let ds = parse_csv(&text).unwrap();
                prop_assert_eq!(ds.len(), rows.len());
                prop_assert_eq!(ds.features(), 3);
                // Labels compacted but order-preserving.
                let mut distinct: Vec<u64> =
                    rows.iter().map(|(_, l)| *l).collect();
                distinct.sort_unstable();
                distinct.dedup();
                prop_assert_eq!(ds.classes, distinct.len());
                for (i, (_, l)) in rows.iter().enumerate() {
                    let expect = distinct.binary_search(l).unwrap();
                    prop_assert_eq!(ds.labels[i], expect);
                }
                // Per-column rank order preserved by the rescale.
                for j in 0..3 {
                    for a in 0..rows.len() {
                        for b in 0..rows.len() {
                            let raw = rows[a].0[j] < rows[b].0[j];
                            let scaled = ds.x[(a, j)] < ds.x[(b, j)];
                            if (rows[a].0[j] - rows[b].0[j]).abs() > 1e-9 {
                                prop_assert_eq!(raw, scaled);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn custom_split_proportions() {
        let ds = parse_csv(
            &(0..100)
                .map(|i| format!("{},{},{}", i, i * 2, i % 3))
                .collect::<Vec<_>>()
                .join("\n"),
        )
        .unwrap();
        let split = ds.split(1);
        assert_eq!(split.train.len(), 60);
        assert_eq!(split.val.len(), 20);
        assert_eq!(split.test.len(), 20);
    }
}
