//! # pnc-datasets
//!
//! Seeded synthetic stand-ins for the 13 tabular benchmark datasets the
//! paper evaluates on (Sec. IV-A1, following the prior pNC studies
//! [13, 34, 35]): Acute Inflammation, Acute Nephritis, Balance Scale,
//! Breast Cancer Wisconsin, Cardiotocography, Energy Efficiency (y1 and
//! y2), Iris, Mammographic Mass, Pendigits, Seeds, Tic-Tac-Toe and
//! Vertebral Column.
//!
//! The original UCI files are not redistributable inside this
//! repository, so each dataset is replaced by a generator matched in
//! **feature count, class count, sample count, class balance and rough
//! separability** (see DESIGN.md §3). Where the real dataset has known
//! generative structure we reproduce it — the Balance Scale labels come
//! from the actual torque rule, Tic-Tac-Toe-like data from a parity-of-
//! products rule, Energy Efficiency from a smooth nonlinear response
//! binned into terciles — and the rest are class-conditional Gaussian
//! mixtures with calibrated overlap and label noise.
//!
//! Everything is deterministic in the seed, so experiment tables are
//! exactly reproducible.
//!
//! # Example
//!
//! ```
//! use pnc_datasets::{Dataset, DatasetId};
//!
//! let ds = Dataset::generate(DatasetId::Iris, 42);
//! assert_eq!(ds.features(), 4);
//! assert_eq!(ds.classes(), 3);
//! let split = ds.split(7);
//! assert!(split.train.len() > split.test.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod io;
pub mod split;

pub use io::{load_csv, save_csv, CustomDataset};
pub use split::{Split, Subset};

use pnc_linalg::Matrix;

/// Identifier of one of the 13 benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Acute Inflammation — 6 features, 2 classes, 120 samples, easy.
    AcuteInflammation,
    /// Acute Nephritis — 6 features, 2 classes, 120 samples, easy.
    AcuteNephritis,
    /// Balance Scale — 4 features, 3 classes, 625 samples (torque rule).
    BalanceScale,
    /// Breast Cancer Wisconsin — 9 features, 2 classes, 683 samples.
    BreastCancer,
    /// Cardiotocography — 21 features, 3 imbalanced classes, 2126 samples.
    Cardiotocography,
    /// Energy Efficiency, heating load — 8 features, 3 classes, 768 samples.
    EnergyY1,
    /// Energy Efficiency, cooling load — 8 features, 3 classes, 768 samples.
    EnergyY2,
    /// Iris — 4 features, 3 classes, 150 samples.
    Iris,
    /// Mammographic Mass — 5 features, 2 classes, 830 samples.
    MammographicMass,
    /// Pen-based digit recognition — 16 features, 10 classes, 10992 samples.
    Pendigits,
    /// Seeds — 7 features, 3 classes, 210 samples.
    Seeds,
    /// Tic-Tac-Toe endgame — 9 features, 2 classes, 958 samples (rule).
    TicTacToe,
    /// Vertebral Column — 6 features, 3 classes, 310 samples.
    VertebralColumn,
}

impl DatasetId {
    /// All 13 benchmark datasets, in alphabetical (paper table) order.
    pub const ALL: [DatasetId; 13] = [
        DatasetId::AcuteInflammation,
        DatasetId::AcuteNephritis,
        DatasetId::BalanceScale,
        DatasetId::BreastCancer,
        DatasetId::Cardiotocography,
        DatasetId::EnergyY1,
        DatasetId::EnergyY2,
        DatasetId::Iris,
        DatasetId::MammographicMass,
        DatasetId::Pendigits,
        DatasetId::Seeds,
        DatasetId::TicTacToe,
        DatasetId::VertebralColumn,
    ];

    /// Human-readable dataset name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::AcuteInflammation => "Acute Inflammation",
            DatasetId::AcuteNephritis => "Acute Nephritis",
            DatasetId::BalanceScale => "Balance Scale",
            DatasetId::BreastCancer => "Breast Cancer Wisconsin",
            DatasetId::Cardiotocography => "Cardiotocography",
            DatasetId::EnergyY1 => "Energy Efficiency (y1)",
            DatasetId::EnergyY2 => "Energy Efficiency (y2)",
            DatasetId::Iris => "Iris",
            DatasetId::MammographicMass => "Mammographic Mass",
            DatasetId::Pendigits => "Pendigits",
            DatasetId::Seeds => "Seeds",
            DatasetId::TicTacToe => "Tic-Tac-Toe",
            DatasetId::VertebralColumn => "Vertebral Column",
        }
    }

    /// Number of input features.
    pub fn features(self) -> usize {
        match self {
            DatasetId::AcuteInflammation | DatasetId::AcuteNephritis => 6,
            DatasetId::BalanceScale => 4,
            DatasetId::BreastCancer => 9,
            DatasetId::Cardiotocography => 21,
            DatasetId::EnergyY1 | DatasetId::EnergyY2 => 8,
            DatasetId::Iris => 4,
            DatasetId::MammographicMass => 5,
            DatasetId::Pendigits => 16,
            DatasetId::Seeds => 7,
            DatasetId::TicTacToe => 9,
            DatasetId::VertebralColumn => 6,
        }
    }

    /// Number of target classes.
    pub fn classes(self) -> usize {
        match self {
            DatasetId::AcuteInflammation
            | DatasetId::AcuteNephritis
            | DatasetId::BreastCancer
            | DatasetId::MammographicMass
            | DatasetId::TicTacToe => 2,
            DatasetId::Pendigits => 10,
            _ => 3,
        }
    }

    /// Number of samples the generator produces.
    pub fn samples(self) -> usize {
        match self {
            DatasetId::AcuteInflammation | DatasetId::AcuteNephritis => 120,
            DatasetId::BalanceScale => 625,
            DatasetId::BreastCancer => 683,
            DatasetId::Cardiotocography => 2126,
            DatasetId::EnergyY1 | DatasetId::EnergyY2 => 768,
            DatasetId::Iris => 150,
            DatasetId::MammographicMass => 830,
            DatasetId::Pendigits => 10992,
            DatasetId::Seeds => 210,
            DatasetId::TicTacToe => 958,
            DatasetId::VertebralColumn => 310,
        }
    }
}

/// A fully materialized dataset: features scaled to the printed-signal
/// range plus integer labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    id: DatasetId,
    x: Matrix,
    labels: Vec<usize>,
}

impl Dataset {
    /// Signal range features are scaled into (printed circuits operate
    /// on bipolar voltages; ±0.8 V leaves headroom to the rails).
    pub const SIGNAL_RANGE: (f64, f64) = (-0.8, 0.8);

    /// Generates the dataset for `id` deterministically from `seed`.
    pub fn generate(id: DatasetId, seed: u64) -> Dataset {
        let (x, labels) = generators::generate(id, seed);
        debug_assert_eq!(x.rows(), labels.len());
        Dataset { id, x, labels }
    }

    /// The dataset identifier.
    pub fn id(&self) -> DatasetId {
        self.id
    }

    /// Feature matrix (`samples × features`), scaled to
    /// [`Dataset::SIGNAL_RANGE`].
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// Class labels, one per row of [`Dataset::x`].
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty (never true for built-in ids).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.x.cols()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.id.classes()
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Splits 60 / 20 / 20 into train / validation / test with a seeded
    /// shuffle (the paper's protocol).
    pub fn split(&self, seed: u64) -> Split {
        split::split_60_20_20(self, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_have_declared_shapes() {
        for id in DatasetId::ALL {
            let ds = Dataset::generate(id, 1);
            assert_eq!(ds.len(), id.samples(), "{}", id.name());
            assert_eq!(ds.features(), id.features(), "{}", id.name());
            assert_eq!(ds.classes(), id.classes(), "{}", id.name());
            assert!(ds.labels().iter().all(|&l| l < id.classes()));
        }
    }

    #[test]
    fn features_stay_in_signal_range() {
        for id in DatasetId::ALL {
            let ds = Dataset::generate(id, 3);
            let (lo, hi) = Dataset::SIGNAL_RANGE;
            assert!(
                ds.x().min() >= lo - 1e-9 && ds.x().max() <= hi + 1e-9,
                "{}: range [{}, {}]",
                id.name(),
                ds.x().min(),
                ds.x().max()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetId::Iris, 9);
        let b = Dataset::generate(DatasetId::Iris, 9);
        assert_eq!(a.x(), b.x());
        assert_eq!(a.labels(), b.labels());
        let c = Dataset::generate(DatasetId::Iris, 10);
        assert_ne!(a.x(), c.x());
    }

    #[test]
    fn every_class_is_represented() {
        for id in DatasetId::ALL {
            let ds = Dataset::generate(id, 5);
            let counts = ds.class_counts();
            assert!(
                counts.iter().all(|&c| c > 0),
                "{}: class counts {counts:?}",
                id.name()
            );
        }
    }

    #[test]
    fn cardiotocography_is_imbalanced_like_the_original() {
        let ds = Dataset::generate(DatasetId::Cardiotocography, 2);
        let counts = ds.class_counts();
        // Original CTG NSP distribution is roughly 78/14/8 %.
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        assert!(counts[0] as f64 / ds.len() as f64 > 0.6);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = DatasetId::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }
}
