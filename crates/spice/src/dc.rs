//! DC operating-point analysis: damped Newton–Raphson with supply
//! ramping as a homotopy fallback.

use crate::mna::{assemble, assemble_into, node_voltage, unknown_count, JacobianSink};
use crate::netlist::{Circuit, Element};
use crate::pattern::{self, CircuitPattern};
use crate::{observe, stats, SpiceError};
use pnc_linalg::decomp::Lu;
use pnc_linalg::sparse::SparseLu;
use pnc_linalg::Matrix;
use pnc_telemetry::{Event, Level, Stopwatch, Telemetry};
use std::sync::atomic::{AtomicU8, Ordering};

/// Smallest MNA dimension for which [`SolverBackend::Auto`] picks the
/// sparse backend. The paper's activation circuits assemble 4–8 unknown
/// systems where dense LU wins outright; sparse pattern reuse pays off
/// once fill and O(n³) dense cost dominate the stamp cost.
pub const SPARSE_MIN_DIM: usize = 32;

/// Linear-system backend used inside the Newton loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Decide per circuit: the process-wide override from
    /// [`set_default_backend`] when one is set, otherwise sparse for
    /// systems of at least [`SPARSE_MIN_DIM`] unknowns and dense below.
    #[default]
    Auto,
    /// Dense LU with partial pivoting — the original path and the
    /// property-test oracle.
    Dense,
    /// Pattern-reusing sparse LU (one symbolic analysis per circuit
    /// topology, numeric refactorization per iteration).
    Sparse,
}

impl SolverBackend {
    /// Canonical lower-case name (CLI flag value, trace field).
    pub fn name(self) -> &'static str {
        match self {
            SolverBackend::Auto => "auto",
            SolverBackend::Dense => "dense",
            SolverBackend::Sparse => "sparse",
        }
    }

    /// Parses a backend name as accepted by `--solver-backend`.
    pub fn parse(s: &str) -> Option<SolverBackend> {
        match s {
            "auto" => Some(SolverBackend::Auto),
            "dense" => Some(SolverBackend::Dense),
            "sparse" => Some(SolverBackend::Sparse),
            _ => None,
        }
    }
}

// lint: allow(L003, reason = "process-wide backend override set once at CLI startup before any solves; per-solve state stays in SolverConfig")
static DEFAULT_BACKEND: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide backend used when a [`SolverConfig`] leaves
/// `backend` at [`SolverBackend::Auto`] (the `--solver-backend` CLI
/// flag). Passing [`SolverBackend::Auto`] restores the size-based rule.
pub fn set_default_backend(backend: SolverBackend) {
    let code = match backend {
        SolverBackend::Auto => 0,
        SolverBackend::Dense => 1,
        SolverBackend::Sparse => 2,
    };
    DEFAULT_BACKEND.store(code, Ordering::Relaxed);
}

fn default_backend() -> SolverBackend {
    match DEFAULT_BACKEND.load(Ordering::Relaxed) {
        1 => SolverBackend::Dense,
        2 => SolverBackend::Sparse,
        _ => SolverBackend::Auto,
    }
}

/// Resolves `Auto` to a concrete backend for a system of `dim` unknowns.
fn resolve_backend(requested: SolverBackend, dim: usize) -> SolverBackend {
    match requested {
        SolverBackend::Auto => match default_backend() {
            SolverBackend::Auto => {
                if dim >= SPARSE_MIN_DIM {
                    SolverBackend::Sparse
                } else {
                    SolverBackend::Dense
                }
            }
            explicit => explicit,
        },
        explicit => explicit,
    }
}

/// Newton iteration limits and tolerances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Maximum Newton iterations per attempt.
    pub max_iterations: usize,
    /// Convergence threshold on the KCL residual (amperes).
    pub residual_tol_amps: f64,
    /// Convergence threshold on the voltage update (volts).
    pub step_tol_volts: f64,
    /// Maximum voltage change per Newton step (damping).
    pub max_step_volts: f64,
    /// Number of supply-ramp stages used when the cold start fails.
    pub ramp_stages: usize,
    /// Linear-system backend; solve traces record the *resolved*
    /// choice, never `Auto`, so replays re-run the backend that
    /// actually produced the trajectory.
    pub backend: SolverBackend,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_iterations: 200,
            residual_tol_amps: 1e-12,
            step_tol_volts: 1e-10,
            max_step_volts: 0.4,
            ramp_stages: 8,
            backend: SolverBackend::Auto,
        }
    }
}

/// A converged DC solution.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    voltages: Vec<f64>,
    source_currents: Vec<f64>,
    iterations: usize,
    residual: f64,
}

impl OperatingPoint {
    /// Voltage of `node` (ground reports 0).
    pub fn voltage(&self, node: usize) -> f64 {
        if node == Circuit::GROUND {
            0.0
        } else {
            self.voltages[node - 1]
        }
    }

    /// Branch current of the `k`-th voltage source (in element order);
    /// positive current flows out of the `+` terminal through the
    /// external circuit... measured *into* the + terminal inside MNA, so
    /// a source *delivering* power reports a negative value here.
    pub fn source_current(&self, k: usize) -> f64 {
        self.source_currents[k]
    }

    /// Newton iterations spent (including ramp stages).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// KCL residual norm (amperes) at the accepted solution — the
    /// value that passed the convergence test.
    pub fn final_residual(&self) -> f64 {
        self.residual
    }

    /// All node voltages including ground, indexed by `NodeId`.
    pub fn all_voltages(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.voltages.len() + 1);
        v.push(0.0);
        v.extend_from_slice(&self.voltages);
        v
    }
}

/// One damped Newton descent. Returns `(iterations, residual)` on
/// convergence; the residual is the KCL norm that passed the test.
fn newton_attempt(
    circuit: &Circuit,
    x: &mut [f64],
    cfg: &SolverConfig,
    mut cap: Option<&mut observe::AttemptCapture>,
) -> Result<(usize, f64), SpiceError> {
    let n_nodes = circuit.node_count() - 1;
    for iter in 0..cfg.max_iterations {
        let sys = assemble(circuit, x);
        let max_resid = sys
            .residual
            .iter()
            .take(n_nodes)
            .fold(0.0f64, |m, r| m.max(r.abs()));
        // Converged on arrival: every equation — including the linear
        // source rows, which a warm start from a different sweep point
        // leaves violated — is satisfied at `x`, so the step would be
        // ~0 and the factorization pure confirmation. Well-predicted
        // warm starts land here one iteration early.
        let full_resid = sys.residual.iter().fold(0.0f64, |m, r| m.max(r.abs()));
        if full_resid < cfg.residual_tol_amps {
            return Ok((iter, max_resid));
        }
        let lu = Lu::new(&sys.jacobian).map_err(|_| SpiceError::SingularMatrix)?;
        let neg_f: Vec<f64> = sys.residual.iter().map(|r| -r).collect();
        let dx = lu.solve(&neg_f).map_err(|_| SpiceError::SingularMatrix)?;

        // Damping: limit voltage updates; currents move freely.
        let max_dv = dx[..n_nodes].iter().fold(0.0f64, |m, d| m.max(d.abs()));
        let scale = if max_dv > cfg.max_step_volts {
            cfg.max_step_volts / max_dv
        } else {
            1.0
        };
        if let Some(c) = cap.as_deref_mut() {
            c.record_iteration(&sys.jacobian, &lu, max_resid, max_dv * scale, scale < 1.0);
        }
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += scale * di;
        }

        if max_resid < cfg.residual_tol_amps && max_dv * scale < cfg.step_tol_volts {
            return Ok((iter + 1, max_resid));
        }
    }
    let sys = assemble(circuit, x);
    let resid = sys
        .residual
        .iter()
        .take(n_nodes)
        .fold(0.0f64, |m, r| m.max(r.abs()));
    Err(SpiceError::NonConvergence {
        iterations: cfg.max_iterations,
        residual: resid,
    })
}

/// [`newton_attempt`] on the sparse backend: the circuit's cached
/// pattern supplies preallocated value slots and the shared symbolic
/// factorization; the first iteration factorizes numerically, later
/// iterations refactorize in place (falling back to a fresh pivot
/// order only on pivot drift). Numeric factor state lives entirely in
/// this frame — nothing per-solve is shared across threads.
fn newton_attempt_sparse(
    circuit: &Circuit,
    pat: &CircuitPattern,
    x: &mut [f64],
    cfg: &SolverConfig,
    mut cap: Option<&mut observe::AttemptCapture>,
) -> Result<(usize, f64), SpiceError> {
    let n_nodes = circuit.node_count() - 1;
    let n = x.len();
    let mut vals = pat.new_values();
    let mut f = vec![0.0; n];
    let mut lu: Option<SparseLu> = None;
    for iter in 0..cfg.max_iterations {
        pat.stamp(circuit, x, &mut vals, &mut f);
        let max_resid = f
            .iter()
            .take(n_nodes)
            .fold(0.0f64, |m, r| m.max(r.abs()));
        // Converged on arrival — see the dense attempt for the
        // rationale; the full-vector check covers the source rows.
        let full_resid = f.iter().fold(0.0f64, |m, r| m.max(r.abs()));
        if full_resid < cfg.residual_tol_amps {
            return Ok((iter, max_resid));
        }
        let lu_ref = match lu.as_mut() {
            None => {
                let fresh = SparseLu::factorize(pat.symbolic(), &vals)
                    .map_err(|_| SpiceError::SingularMatrix)?;
                stats::record_factorization();
                lu.insert(fresh)
            }
            Some(l) => {
                let reused = l
                    .refactorize(&vals)
                    .map_err(|_| SpiceError::SingularMatrix)?;
                if reused {
                    stats::record_refactorization();
                } else {
                    stats::record_factorization();
                }
                l
            }
        };
        let neg_f: Vec<f64> = f.iter().map(|r| -r).collect();
        let dx = lu_ref
            .solve(&neg_f)
            .map_err(|_| SpiceError::SingularMatrix)?;

        let max_dv = dx[..n_nodes].iter().fold(0.0f64, |m, d| m.max(d.abs()));
        let scale = if max_dv > cfg.max_step_volts {
            cfg.max_step_volts / max_dv
        } else {
            1.0
        };
        if let Some(c) = cap.as_deref_mut() {
            c.record_iteration_sparse(pat.dim(), pat.nnz(), max_resid, max_dv * scale, scale < 1.0);
        }
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += scale * di;
        }

        if max_resid < cfg.residual_tol_amps && max_dv * scale < cfg.step_tol_volts {
            return Ok((iter + 1, max_resid));
        }
    }
    pat.stamp(circuit, x, &mut vals, &mut f);
    let resid = f
        .iter()
        .take(n_nodes)
        .fold(0.0f64, |m, r| m.max(r.abs()));
    Err(SpiceError::NonConvergence {
        iterations: cfg.max_iterations,
        residual: resid,
    })
}

/// Dispatches one Newton attempt to the resolved backend.
fn run_attempt(
    circuit: &Circuit,
    pat: Option<&CircuitPattern>,
    x: &mut [f64],
    cfg: &SolverConfig,
    cap: Option<&mut observe::AttemptCapture>,
) -> Result<(usize, f64), SpiceError> {
    match pat {
        Some(p) => newton_attempt_sparse(circuit, p, x, cfg, cap),
        None => newton_attempt(circuit, x, cfg, cap),
    }
}

/// Solves for the DC operating point with default solver settings.
///
/// # Errors
///
/// Returns [`SpiceError::EmptyCircuit`] for circuits without unknowns,
/// [`SpiceError::SingularMatrix`] for structurally defective circuits,
/// and [`SpiceError::NonConvergence`] when Newton and the supply-ramp
/// homotopy both fail.
pub fn solve_dc(circuit: &Circuit) -> Result<OperatingPoint, SpiceError> {
    solve_dc_with(circuit, &SolverConfig::default(), None)
}

/// Solves for the DC operating point with explicit settings and an
/// optional warm-start guess (`voltages ++ source currents`).
///
/// Every call updates the process-wide aggregate counters in
/// [`crate::stats`].
///
/// # Errors
///
/// Same conditions as [`solve_dc`]. A
/// [`SpiceError::NonConvergence`] carries the *total* Newton
/// iterations spent across the plain attempt and every ramp stage, so
/// failure cost is attributable from the error alone.
pub fn solve_dc_with(
    circuit: &Circuit,
    cfg: &SolverConfig,
    warm_start: Option<&[f64]>,
) -> Result<OperatingPoint, SpiceError> {
    stats::record_solve();
    if warm_start.is_some() {
        stats::record_warm_start();
    }
    let mut cap = observe::capture_if_enabled();
    let sw = Stopwatch::start();
    let result = solve_dc_inner(circuit, cfg, warm_start, cap.as_mut());
    stats::record_solve_time_ms(sw.elapsed_ms());
    match &result {
        Ok((op, _ramped)) => {
            stats::record_iterations(op.iterations());
            stats::record_success();
        }
        Err(SpiceError::NonConvergence { iterations, .. }) => {
            stats::record_iterations(*iterations);
            stats::record_failure();
        }
        Err(_) => stats::record_failure(),
    }
    observe_outcome(cap, circuit, cfg, warm_start, &result);
    result.map(|(op, _ramped)| op)
}

/// Shared observatory tail of the solve wrappers: bumps the per-point
/// accounting window (always — a few thread-local counter writes) and,
/// when a capture was active, finalizes and records the trace.
fn observe_outcome(
    cap: Option<observe::AttemptCapture>,
    circuit: &Circuit,
    cfg: &SolverConfig,
    warm_start: Option<&[f64]>,
    result: &Result<(OperatingPoint, bool), SpiceError>,
) {
    let (iters, ramped, failed) = match result {
        Ok((op, ramped)) => (op.iterations() as u64, *ramped, false),
        Err(SpiceError::NonConvergence { iterations, .. }) => (*iterations as u64, true, true),
        Err(_) => (0, false, true),
    };
    observe::record_point_solve(circuit, iters, ramped, failed);
    if let Some(cap) = cap {
        observe::record_trace(cap.into_trace(circuit, cfg, warm_start, result));
    }
}

/// Runs a DC solve with trace capture *forced on*, independent of the
/// observatory's global switch, and returns the captured
/// [`observe::SolveTrace`] alongside the outcome. Unlike
/// [`solve_dc_with`] this records nothing into the process-wide
/// aggregates — it is the offline re-execution primitive behind
/// `pnc-cli solver replay`.
///
/// # Errors
///
/// The result slot carries the same conditions as [`solve_dc_with`];
/// the trace is returned either way (a failed solve still has a
/// trajectory worth diffing).
pub fn solve_dc_captured(
    circuit: &Circuit,
    cfg: &SolverConfig,
    warm_start: Option<&[f64]>,
) -> (Result<OperatingPoint, SpiceError>, observe::SolveTrace) {
    let mut cap = observe::AttemptCapture::new();
    let result = solve_dc_inner(circuit, cfg, warm_start, Some(&mut cap));
    let trace = cap.into_trace(circuit, cfg, warm_start, &result);
    (result.map(|(op, _ramped)| op), trace)
}

/// [`solve_dc_with`] plus per-solve telemetry: emits a `dc_solve`
/// debug event (iterations, final residual, whether the supply-ramp
/// fallback was engaged) on success and a `dc_solve_failed` warning on
/// error. When the handle carries an enabled
/// [`pnc_telemetry::Profiler`], each solve also records a `dc_solve`
/// span with the Newton iteration count and outcome as attributes.
/// With a disabled handle this is exactly [`solve_dc_with`].
///
/// # Errors
///
/// Same conditions as [`solve_dc_with`].
pub fn solve_dc_traced(
    circuit: &Circuit,
    cfg: &SolverConfig,
    warm_start: Option<&[f64]>,
    tel: &Telemetry,
) -> Result<OperatingPoint, SpiceError> {
    let mut scope = tel.profiler().scope("dc_solve");
    stats::record_solve();
    if warm_start.is_some() {
        stats::record_warm_start();
    }
    let mut cap = observe::capture_if_enabled();
    let sw = Stopwatch::start();
    let result = solve_dc_inner(circuit, cfg, warm_start, cap.as_mut());
    stats::record_solve_time_ms(sw.elapsed_ms());
    match &result {
        Ok((op, ramped)) => {
            stats::record_iterations(op.iterations());
            stats::record_success();
            let (iters, resid, ramped) = (op.iterations(), op.final_residual(), *ramped);
            scope.set_u64("iterations", iters as u64);
            scope.set_bool("ramped", ramped);
            tel.emit(|| {
                Event::new("dc_solve", Level::Debug)
                    .with_u64("iterations", iters as u64)
                    .with_f64("residual", resid)
                    .with_bool("ramped", ramped)
            });
        }
        Err(e) => {
            scope.set_bool("failed", true);
            if let SpiceError::NonConvergence {
                iterations,
                residual,
            } = e
            {
                stats::record_iterations(*iterations);
                scope.set_u64("iterations", *iterations as u64);
                let (iters, resid) = (*iterations, *residual);
                tel.emit(|| {
                    Event::new("dc_solve_failed", Level::Warn)
                        .with_str("error", "non_convergence")
                        .with_u64("iterations", iters as u64)
                        .with_f64("residual", resid)
                });
            } else {
                let msg = e.to_string();
                tel.emit(|| Event::new("dc_solve_failed", Level::Warn).with_str("error", msg));
            }
            stats::record_failure();
        }
    }
    observe_outcome(cap, circuit, cfg, warm_start, &result);
    result.map(|(op, _ramped)| op)
}

/// Core solve: returns the operating point and whether the ramp
/// fallback was engaged.
fn solve_dc_inner(
    circuit: &Circuit,
    cfg: &SolverConfig,
    warm_start: Option<&[f64]>,
    mut cap: Option<&mut observe::AttemptCapture>,
) -> Result<(OperatingPoint, bool), SpiceError> {
    let n = unknown_count(circuit);
    if n == 0 {
        return Err(SpiceError::EmptyCircuit);
    }
    let n_nodes = circuit.node_count() - 1;

    // Resolve the backend once per solve; every attempt (plain and
    // every ramp stage) uses the same resolved choice, and the capture
    // records it so replays re-run the path that produced the trace.
    let backend = resolve_backend(cfg.backend, n);
    if let Some(c) = cap.as_deref_mut() {
        c.set_backend(backend);
    }
    let pat = match backend {
        SolverBackend::Sparse => Some(pattern::cached_pattern(circuit)),
        _ => None,
    };
    let pat = pat.as_deref();

    let mut x = match warm_start {
        Some(ws) if ws.len() == n => ws.to_vec(),
        _ => vec![0.0; n],
    };

    // Attempt 1: plain Newton from the guess.
    let mut total_iters = 0usize;
    match run_attempt(circuit, pat, &mut x, cfg, cap.as_deref_mut()) {
        Ok((iters, residual)) => {
            return Ok((
                OperatingPoint {
                    voltages: x[..n_nodes].to_vec(),
                    source_currents: x[n_nodes..].to_vec(),
                    iterations: iters,
                    residual,
                },
                false,
            ));
        }
        Err(SpiceError::NonConvergence { iterations, .. }) => total_iters += iterations,
        Err(e) => return Err(e),
    }

    // Attempt 2: supply ramping — scale all sources from 0 to full.
    stats::record_ramp_fallback();
    let full_volts: Vec<Option<f64>> = circuit
        .elements()
        .iter()
        .map(|e| match e {
            Element::VSource { volts, .. } => Some(*volts),
            _ => None,
        })
        .collect();

    let mut ramped = circuit.clone();
    x = vec![0.0; n];
    let mut final_residual = f64::INFINITY;
    for stage in 1..=cfg.ramp_stages {
        let frac = stage as f64 / cfg.ramp_stages as f64;
        for (idx, fv) in full_volts.iter().enumerate() {
            if let Some(v) = fv {
                ramped
                    .set_vsource(idx, v * frac)
                    // lint: allow(L001, reason = "idx enumerates the circuit's own source list")
                    .expect("index points at a source");
            }
        }
        if let Some(c) = cap.as_deref_mut() {
            c.mark_ramp_stage();
        }
        // The ramped clone only rescales source values, so it shares
        // the original topology — and therefore the same pattern.
        match run_attempt(&ramped, pat, &mut x, cfg, cap.as_deref_mut()) {
            Ok((iters, residual)) => {
                total_iters += iters;
                final_residual = residual;
            }
            Err(SpiceError::NonConvergence {
                iterations,
                residual,
            }) => {
                total_iters += iterations;
                if stage == cfg.ramp_stages {
                    // Report the whole budget spent, not just the last
                    // attempt, so the failure's cost is attributable.
                    return Err(SpiceError::NonConvergence {
                        iterations: total_iters,
                        residual,
                    });
                }
                // Intermediate stage struggled; carry the partial
                // solution forward and keep ramping.
            }
            Err(e) => return Err(e),
        }
    }

    Ok((
        OperatingPoint {
            voltages: x[..n_nodes].to_vec(),
            source_currents: x[n_nodes..].to_vec(),
            iterations: total_iters,
            residual: final_residual,
        },
        true,
    ))
}

/// Result of a DC sweep: one operating point per sweep value.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Swept source values (volts).
    pub inputs: Vec<f64>,
    /// Operating point per input.
    pub points: Vec<OperatingPoint>,
}

impl SweepResult {
    /// Extracts the voltage of `node` across the sweep.
    pub fn node_curve(&self, node: usize) -> Vec<f64> {
        self.points.iter().map(|p| p.voltage(node)).collect()
    }
}

/// Sweeps the EMF of the voltage source at element index `source_index`
/// over `values`, warm-starting each solve with the previous solution.
///
/// # Errors
///
/// Propagates element and convergence errors.
pub fn dc_sweep(
    circuit: &Circuit,
    source_index: usize,
    values: &[f64],
) -> Result<SweepResult, SpiceError> {
    dc_sweep_traced(circuit, source_index, values, &Telemetry::disabled())
}

/// Residual inf-norm of a candidate state at the circuit's current
/// element values: one assembly with the Jacobian entries discarded,
/// no factorization. Cheap enough to rank several warm-start
/// candidates per solve.
pub(crate) fn residual_inf(circuit: &Circuit, x: &[f64]) -> f64 {
    struct NullSink;
    impl JacobianSink for NullSink {
        fn add(&mut self, _row: usize, _col: usize, _v: f64) {}
    }
    let mut f = vec![0.0; x.len()];
    assemble_into(circuit, x, &mut NullSink, &mut f);
    f.iter().fold(0.0f64, |m, r| m.max(r.abs()))
}

/// Index of the warm-start candidate with the smallest assembled
/// residual at the target point (ties go to the earliest candidate,
/// so the choice is deterministic). `None` when `cands` is empty.
pub(crate) fn best_warm_candidate(circuit: &Circuit, cands: &[Vec<f64>]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in cands.iter().enumerate() {
        let r = residual_inf(circuit, c);
        if best.map_or(true, |(_, b)| r < b) {
            best = Some((i, r));
        }
    }
    best.map(|(i, _)| i)
}

/// [`dc_sweep`] with instrumentation: when `tel` carries an *enabled*
/// [`pnc_telemetry::Profiler`], every per-point solve goes through
/// [`solve_dc_traced`] and records a `dc_solve` span (Newton iteration
/// count as an attribute). With a disabled profiler this is exactly
/// [`dc_sweep`] — the per-point `dc_solve` event stream stays quiet so
/// unprofiled structured-log output keeps its volume.
///
/// # Errors
///
/// Propagates element and convergence errors.
pub fn dc_sweep_traced(
    circuit: &Circuit,
    source_index: usize,
    values: &[f64],
    tel: &Telemetry,
) -> Result<SweepResult, SpiceError> {
    let trace = tel.profiler().is_enabled();
    let cfg = SolverConfig::default();

    // Batched fast path: a linear circuit's Newton step is exact, so
    // the whole sweep collapses to one factorization plus one blocked
    // multi-RHS solve. Skipped while per-solve instrumentation is on
    // (profiler spans or the solver observatory) — those consumers
    // want one trace per point.
    let linear = circuit
        .elements()
        .iter()
        .all(|e| !matches!(e, Element::Egt { .. }));
    if linear && !trace && !observe::is_enabled() {
        if let Some(res) = dc_sweep_linear(circuit, source_index, values, &cfg)? {
            return Ok(res);
        }
    }

    let mut swept = circuit.clone();
    let mut points = Vec::with_capacity(values.len());
    // Continuation warm starts: chain each point from its predecessor
    // and, once two points have solved, also offer the secant
    // extrapolation of their states — whichever assembles the smaller
    // residual seeds Newton. Purely a function of the sweep inputs, so
    // trajectories stay deterministic.
    let mut prev: Option<Vec<f64>> = None;
    let mut prev2: Option<Vec<f64>> = None;
    let mut prev3: Option<Vec<f64>> = None;

    for &v in values {
        swept.set_vsource(source_index, v)?;
        let mut cands: Vec<Vec<f64>> = Vec::with_capacity(3);
        if let Some(p) = &prev {
            cands.push(p.clone());
            if let Some(p2) = &prev2 {
                cands.push(p.iter().zip(p2).map(|(a, b)| 2.0 * a - b).collect());
                if let Some(p3) = &prev3 {
                    cands.push(
                        p.iter()
                            .zip(p2.iter().zip(p3))
                            .map(|(a, (b, c))| 3.0 * a - 3.0 * b + c)
                            .collect(),
                    );
                }
            }
        }
        let warm = best_warm_candidate(&swept, &cands).map(|i| cands[i].as_slice());
        let op = if trace {
            solve_dc_traced(&swept, &cfg, warm, tel)?
        } else {
            solve_dc_with(&swept, &cfg, warm)?
        };
        let mut state = op.voltages.clone();
        state.extend_from_slice(&op.source_currents);
        prev3 = prev2.take();
        prev2 = prev.take();
        prev = Some(state);
        points.push(op);
    }
    Ok(SweepResult {
        inputs: values.to_vec(),
        points,
    })
}

/// The batched Newton step behind the linear-sweep fast path: for a
/// linear circuit `f(x) = A·x − b`, assembling at `x = 0` yields the
/// constant Jacobian `A` and residual `−b`, so one factorization plus
/// one blocked multi-RHS solve ([`Lu::solve_matrix`]) lands every sweep
/// point exactly. Each accepted column is verified against the Newton
/// residual tolerance; returns `Ok(None)` (fall back to the iterative
/// path) when the factorization fails or any column misses tolerance.
fn dc_sweep_linear(
    circuit: &Circuit,
    source_index: usize,
    values: &[f64],
    cfg: &SolverConfig,
) -> Result<Option<SweepResult>, SpiceError> {
    let n = unknown_count(circuit);
    if n == 0 || values.is_empty() {
        return Ok(None);
    }
    let n_nodes = circuit.node_count() - 1;
    let sw = Stopwatch::start();
    let x0 = vec![0.0; n];
    let mut swept = circuit.clone();

    // The Jacobian of a linear circuit is independent of the swept
    // source value (EMFs enter only the residual), so the factors from
    // the first sweep point serve all of them.
    swept.set_vsource(source_index, values[0])?;
    let first = assemble(&swept, &x0);
    let Ok(lu) = Lu::new(&first.jacobian) else {
        return Ok(None);
    };

    let mut rhs = Matrix::zeros(n, values.len());
    for (col, &v) in values.iter().enumerate() {
        swept.set_vsource(source_index, v)?;
        let sys = assemble(&swept, &x0);
        for row in 0..n {
            rhs[(row, col)] = -sys.residual[row];
        }
    }
    let Ok(solutions) = lu.solve_matrix(&rhs) else {
        return Ok(None);
    };

    let mut points = Vec::with_capacity(values.len());
    for (col, &v) in values.iter().enumerate() {
        let x: Vec<f64> = (0..n).map(|row| solutions[(row, col)]).collect();
        swept.set_vsource(source_index, v)?;
        let sys = assemble(&swept, &x);
        let resid = sys
            .residual
            .iter()
            .take(n_nodes)
            .fold(0.0f64, |m, r| m.max(r.abs()));
        if resid >= cfg.residual_tol_amps {
            return Ok(None);
        }
        points.push(OperatingPoint {
            voltages: x[..n_nodes].to_vec(),
            source_currents: x[n_nodes..].to_vec(),
            iterations: 1,
            residual: resid,
        });
    }

    // Aggregate accounting keeps the iterative path's per-point shape:
    // one solve and one (batched) Newton iteration per sweep value.
    let per_point_ms = sw.elapsed_ms() / values.len() as f64;
    for _ in values {
        stats::record_solve();
        stats::record_iterations(1);
        stats::record_success();
        stats::record_solve_time_ms(per_point_ms);
        observe::record_point_solve(circuit, 1, false, false);
    }
    Ok(Some(SweepResult {
        inputs: values.to_vec(),
        points,
    }))
}

/// Convenience: evaluates the KCL residual norm at a solution (used in
/// tests to confirm physical consistency).
pub fn residual_norm(circuit: &Circuit, op: &OperatingPoint) -> f64 {
    let n_nodes = circuit.node_count() - 1;
    let mut x = op.all_voltages()[1..].to_vec();
    for k in 0..circuit.branch_count() {
        x.push(op.source_current(k));
    }
    let sys = assemble(circuit, &x);
    sys.residual
        .iter()
        .take(n_nodes)
        .fold(0.0f64, |m, r| m.max(r.abs()))
}

/// Linearly spaced values, inclusive of both endpoints.
// lint: dimensionless
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

// Re-exported for power computation.
pub(crate) fn voltage_of(op: &OperatingPoint, node: usize) -> f64 {
    node_voltage(&op.all_voltages()[1..], node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divider_solves_exactly() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vin, Circuit::GROUND, 1.0);
        c.resistor(vin, out, 2_000.0);
        c.resistor(out, Circuit::GROUND, 1_000.0);
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(out) - 1.0 / 3.0).abs() < 1e-9);
        assert!((op.voltage(vin) - 1.0).abs() < 1e-9);
        // Source current = −V/R_total = −1/3000.
        assert!((op.source_current(0) + 1.0 / 3000.0).abs() < 1e-9);
    }

    #[test]
    fn bridge_of_resistors() {
        // Wheatstone bridge, balanced: no current through the bridge R.
        let mut c = Circuit::new();
        let top = c.node("top");
        let l = c.node("l");
        let r = c.node("r");
        c.vsource(top, Circuit::GROUND, 1.0);
        c.resistor(top, l, 1000.0);
        c.resistor(top, r, 1000.0);
        c.resistor(l, Circuit::GROUND, 2000.0);
        c.resistor(r, Circuit::GROUND, 2000.0);
        c.resistor(l, r, 500.0); // bridge
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(l) - op.voltage(r)).abs() < 1e-9);
    }

    #[test]
    fn nmos_inverter_swings() {
        // Common-source EGT with resistive pull-up: V_out high when the
        // gate is low, low when the gate is high.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        let src = c.vsource(vin, Circuit::GROUND, 0.0);
        c.resistor(vdd, out, 100_000.0);
        c.egt(out, vin, Circuit::GROUND, 2e-4, 2e-5);

        let mut low = c.clone();
        low.set_vsource(src, 0.0).unwrap();
        let op_low = solve_dc(&low).unwrap();
        assert!(op_low.voltage(out) > 0.9, "out = {}", op_low.voltage(out));

        let mut high = c.clone();
        high.set_vsource(src, 1.0).unwrap();
        let op_high = solve_dc(&high).unwrap();
        assert!(op_high.voltage(out) < 0.2, "out = {}", op_high.voltage(out));
    }

    #[test]
    fn source_follower_tracks_input() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.2);
        c.vsource(vin, Circuit::GROUND, 0.9);
        c.egt(vdd, vin, out, 4e-4, 1e-5);
        c.resistor(out, Circuit::GROUND, 200_000.0);
        let op = solve_dc(&c).unwrap();
        let vout = op.voltage(out);
        // Output follows the gate minus roughly a threshold.
        assert!(vout > 0.2 && vout < 0.9, "vout = {vout}");
    }

    #[test]
    fn residual_is_tiny_at_solution() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.resistor(vdd, out, 10_000.0);
        c.egt(out, vdd, Circuit::GROUND, 1e-4, 2e-5);
        let op = solve_dc(&c).unwrap();
        assert!(residual_norm(&c, &op) < 1e-9);
    }


    #[test]
    fn sweep_is_monotone_for_follower() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.2);
        let src = c.vsource(vin, Circuit::GROUND, 0.0);
        c.egt(vdd, vin, out, 4e-4, 1e-5);
        c.resistor(out, Circuit::GROUND, 200_000.0);
        let sweep = dc_sweep(&c, src, &linspace(-1.0, 1.0, 41)).unwrap();
        let curve = sweep.node_curve(out);
        // Margin: accepted points satisfy |f(x)| < 1e-12 A, which over
        // this circuit's ~5 µS output-node conductance allows ~2e-7 V
        // of slack per point in the flat region.
        for w in curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "follower output must be monotone");
        }
        // ReLU-like: flat near zero for low inputs, rising after threshold.
        assert!(curve[0].abs() < 0.05);
        assert!(*curve.last().unwrap() > 0.3);
    }

    #[test]
    fn sweep_rejects_non_source_index() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource(a, Circuit::GROUND, 1.0);
        let r_idx = c.resistor(a, Circuit::GROUND, 100.0);
        assert!(dc_sweep(&c, r_idx, &[0.0, 1.0]).is_err());
    }

    #[test]
    fn vcvs_buffers_a_loaded_divider() {
        // Divider into a unity-gain buffer into a heavy load: the
        // divider must stay at 0.5 V because the buffer draws nothing
        // from it, while the load sees the buffered copy.
        let mut c = Circuit::new();
        let top = c.node("top");
        let mid = c.node("mid");
        let buf = c.node("buf");
        c.vsource(top, Circuit::GROUND, 1.0);
        c.resistor(top, mid, 10_000.0);
        c.resistor(mid, Circuit::GROUND, 10_000.0);
        c.vcvs(buf, Circuit::GROUND, mid, Circuit::GROUND, 1.0);
        c.resistor(buf, Circuit::GROUND, 100.0); // heavy load
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(mid) - 0.5).abs() < 1e-6, "divider loaded!");
        // The buffer copies its control node exactly (within Newton
        // tolerance); the 1e-9-scale offset on `mid` itself is GMIN.
        assert!((op.voltage(buf) - op.voltage(mid)).abs() < 1e-9);
    }

    #[test]
    fn vcvs_applies_gain() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GROUND, 0.3);
        c.vcvs(b, Circuit::GROUND, a, Circuit::GROUND, -2.5);
        c.resistor(b, Circuit::GROUND, 1_000.0);
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(b) + 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_circuit_errors() {
        let c = Circuit::new();
        assert!(matches!(solve_dc(&c), Err(SpiceError::EmptyCircuit)));
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(-1.0, 1.0, 5);
        assert_eq!(v, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn final_residual_passes_tolerance() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.resistor(vdd, out, 10_000.0);
        c.egt(out, vdd, Circuit::GROUND, 1e-4, 2e-5);
        let cfg = SolverConfig::default();
        let op = solve_dc_with(&c, &cfg, None).unwrap();
        assert!(op.final_residual() <= cfg.residual_tol_amps);
    }

    #[test]
    fn non_convergence_reports_total_iterations() {
        // A nonlinear circuit with a 1-iteration budget cannot
        // converge; the error must account for the plain attempt plus
        // every ramp stage, not just the final attempt.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.resistor(vdd, out, 100_000.0);
        c.egt(out, vdd, Circuit::GROUND, 2e-4, 2e-5);
        let cfg = SolverConfig {
            max_iterations: 1,
            ramp_stages: 3,
            ..SolverConfig::default()
        };
        match solve_dc_with(&c, &cfg, None) {
            Err(SpiceError::NonConvergence { iterations, .. }) => {
                // 1 (plain) + 3 ramp stages × 1 = 4.
                assert_eq!(iterations, 4);
            }
            other => panic!("expected NonConvergence, got {other:?}"),
        }
    }

    #[test]
    fn traced_solve_emits_events_and_matches_plain() {
        use pnc_telemetry::{MemorySink, Telemetry};
        use std::sync::Arc;

        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vin, Circuit::GROUND, 1.0);
        c.resistor(vin, out, 2_000.0);
        c.resistor(out, Circuit::GROUND, 1_000.0);

        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let cfg = SolverConfig::default();
        let traced = solve_dc_traced(&c, &cfg, None, &tel).unwrap();
        let plain = solve_dc_with(&c, &cfg, None).unwrap();
        assert_eq!(traced.voltage(out), plain.voltage(out));

        let events = sink.events_named("dc_solve");
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get_u64("iterations"), Some(traced.iterations() as u64));
        assert_eq!(e.get_f64("residual"), Some(traced.final_residual()));
        assert_eq!(e.get_bool("ramped"), Some(false));

        // Failure path emits a warning with the iteration total.
        let mut hard = Circuit::new();
        let vdd = hard.node("vdd");
        let o = hard.node("o");
        hard.vsource(vdd, Circuit::GROUND, 1.0);
        hard.resistor(vdd, o, 100_000.0);
        hard.egt(o, vdd, Circuit::GROUND, 2e-4, 2e-5);
        let tight = SolverConfig {
            max_iterations: 1,
            ramp_stages: 2,
            ..SolverConfig::default()
        };
        assert!(solve_dc_traced(&hard, &tight, None, &tel).is_err());
        let fails = sink.events_named("dc_solve_failed");
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].get_u64("iterations"), Some(3));
    }

    #[test]
    fn sparse_backend_matches_dense() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.vsource(vin, Circuit::GROUND, 0.6);
        c.resistor(vdd, out, 100_000.0);
        c.egt(out, vin, Circuit::GROUND, 2e-4, 2e-5);

        let dense_cfg = SolverConfig {
            backend: SolverBackend::Dense,
            ..SolverConfig::default()
        };
        let sparse_cfg = SolverConfig {
            backend: SolverBackend::Sparse,
            ..SolverConfig::default()
        };
        let d = solve_dc_with(&c, &dense_cfg, None).unwrap();
        let s = solve_dc_with(&c, &sparse_cfg, None).unwrap();
        assert!((d.voltage(out) - s.voltage(out)).abs() < 1e-9);
        assert!((d.source_current(0) - s.source_current(0)).abs() < 1e-12);
        assert!(residual_norm(&c, &s) < 1e-9);
    }

    #[test]
    fn sparse_capture_records_resolved_backend() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.resistor(vdd, out, 10_000.0);
        c.egt(out, vdd, Circuit::GROUND, 1e-4, 2e-5);
        let cfg = SolverConfig {
            backend: SolverBackend::Sparse,
            ..SolverConfig::default()
        };
        let (res, trace) = solve_dc_captured(&c, &cfg, None);
        assert!(res.is_ok());
        assert_eq!(trace.config.backend, SolverBackend::Sparse);
        assert!(trace.dim > 0 && trace.nnz > 0);

        // Replaying the trace (its config carries the resolved
        // backend) reproduces the trajectory exactly.
        let rebuilt = trace.rebuild_circuit();
        let (rr, rt) = solve_dc_captured(&rebuilt, &trace.config, trace.warm_start.as_deref());
        assert!(rr.is_ok());
        assert_eq!(rt.residuals_amps, trace.residuals_amps);
        assert_eq!(rt.steps_volts, trace.steps_volts);
    }

    #[test]
    fn auto_backend_resolves_by_dimension() {
        // A long resistor ladder crosses SPARSE_MIN_DIM; the trace must
        // show the resolved choice, never `Auto`.
        let mut c = Circuit::new();
        let top = c.node("n0");
        c.vsource(top, Circuit::GROUND, 1.0);
        let mut prev = top;
        for i in 1..=40 {
            let nxt = c.node(&format!("n{i}"));
            c.resistor(prev, nxt, 1_000.0);
            prev = nxt;
        }
        c.resistor(prev, Circuit::GROUND, 1_000.0);
        let cfg = SolverConfig::default();
        let (res, trace) = solve_dc_captured(&c, &cfg, None);
        assert!(res.is_ok());
        assert!(trace.dim >= SPARSE_MIN_DIM);
        assert_eq!(trace.config.backend, SolverBackend::Sparse);

        // A small circuit stays dense under Auto.
        let mut small = Circuit::new();
        let a = small.node("a");
        small.vsource(a, Circuit::GROUND, 1.0);
        small.resistor(a, Circuit::GROUND, 100.0);
        let (_, small_trace) = solve_dc_captured(&small, &cfg, None);
        assert_eq!(small_trace.config.backend, SolverBackend::Dense);
    }

    #[test]
    fn linear_sweep_fast_path_matches_per_point_solves() {
        // Divider: out = v/2 for every sweep value; the batched path
        // must agree with one-at-a-time solves to solver tolerance and
        // report the single batched Newton step per point.
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        let src = c.vsource(vin, Circuit::GROUND, 0.0);
        c.resistor(vin, out, 10_000.0);
        c.resistor(out, Circuit::GROUND, 10_000.0);
        let values = linspace(-1.0, 1.0, 9);
        let sweep = dc_sweep(&c, src, &values).unwrap();
        for (p, &v) in sweep.points.iter().zip(&values) {
            // GMIN loads the divider by a few parts in 1e9.
            assert!((p.voltage(out) - v / 2.0).abs() < 1e-7, "at v = {v}");
            assert_eq!(p.iterations(), 1);
            let mut one = c.clone();
            one.set_vsource(src, v).unwrap();
            let op = solve_dc(&one).unwrap();
            assert!((p.voltage(out) - op.voltage(out)).abs() < 1e-9);
        }
    }

    #[test]
    fn backend_parse_round_trips() {
        for b in [
            SolverBackend::Auto,
            SolverBackend::Dense,
            SolverBackend::Sparse,
        ] {
            assert_eq!(SolverBackend::parse(b.name()), Some(b));
        }
        assert_eq!(SolverBackend::parse("blas"), None);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.vsource(vin, Circuit::GROUND, 0.5);
        c.resistor(vdd, out, 50_000.0);
        c.egt(out, vin, Circuit::GROUND, 1e-4, 2e-5);
        let cfg = SolverConfig::default();
        let cold = solve_dc_with(&c, &cfg, None).unwrap();
        let mut state = cold.all_voltages()[1..].to_vec();
        state.push(cold.source_current(0));
        state.push(cold.source_current(1));
        let warm = solve_dc_with(&c, &cfg, Some(&state)).unwrap();
        assert!(warm.iterations() <= cold.iterations());
    }
}
