//! DC operating-point analysis: damped Newton–Raphson with supply
//! ramping as a homotopy fallback.

use crate::mna::{assemble, node_voltage, unknown_count};
use crate::netlist::{Circuit, Element};
use crate::{observe, stats, SpiceError};
use pnc_linalg::decomp::Lu;
use pnc_telemetry::{Event, Level, Stopwatch, Telemetry};

/// Newton iteration limits and tolerances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Maximum Newton iterations per attempt.
    pub max_iterations: usize,
    /// Convergence threshold on the KCL residual (amperes).
    pub residual_tol_amps: f64,
    /// Convergence threshold on the voltage update (volts).
    pub step_tol_volts: f64,
    /// Maximum voltage change per Newton step (damping).
    pub max_step_volts: f64,
    /// Number of supply-ramp stages used when the cold start fails.
    pub ramp_stages: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_iterations: 200,
            residual_tol_amps: 1e-12,
            step_tol_volts: 1e-10,
            max_step_volts: 0.4,
            ramp_stages: 8,
        }
    }
}

/// A converged DC solution.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    voltages: Vec<f64>,
    source_currents: Vec<f64>,
    iterations: usize,
    residual: f64,
}

impl OperatingPoint {
    /// Voltage of `node` (ground reports 0).
    pub fn voltage(&self, node: usize) -> f64 {
        if node == Circuit::GROUND {
            0.0
        } else {
            self.voltages[node - 1]
        }
    }

    /// Branch current of the `k`-th voltage source (in element order);
    /// positive current flows out of the `+` terminal through the
    /// external circuit... measured *into* the + terminal inside MNA, so
    /// a source *delivering* power reports a negative value here.
    pub fn source_current(&self, k: usize) -> f64 {
        self.source_currents[k]
    }

    /// Newton iterations spent (including ramp stages).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// KCL residual norm (amperes) at the accepted solution — the
    /// value that passed the convergence test.
    pub fn final_residual(&self) -> f64 {
        self.residual
    }

    /// All node voltages including ground, indexed by `NodeId`.
    pub fn all_voltages(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.voltages.len() + 1);
        v.push(0.0);
        v.extend_from_slice(&self.voltages);
        v
    }
}

/// One damped Newton descent. Returns `(iterations, residual)` on
/// convergence; the residual is the KCL norm that passed the test.
fn newton_attempt(
    circuit: &Circuit,
    x: &mut [f64],
    cfg: &SolverConfig,
    mut cap: Option<&mut observe::AttemptCapture>,
) -> Result<(usize, f64), SpiceError> {
    let n_nodes = circuit.node_count() - 1;
    for iter in 0..cfg.max_iterations {
        let sys = assemble(circuit, x);
        let max_resid = sys
            .residual
            .iter()
            .take(n_nodes)
            .fold(0.0f64, |m, r| m.max(r.abs()));
        let lu = Lu::new(&sys.jacobian).map_err(|_| SpiceError::SingularMatrix)?;
        let neg_f: Vec<f64> = sys.residual.iter().map(|r| -r).collect();
        let dx = lu.solve(&neg_f).map_err(|_| SpiceError::SingularMatrix)?;

        // Damping: limit voltage updates; currents move freely.
        let max_dv = dx[..n_nodes].iter().fold(0.0f64, |m, d| m.max(d.abs()));
        let scale = if max_dv > cfg.max_step_volts {
            cfg.max_step_volts / max_dv
        } else {
            1.0
        };
        if let Some(c) = cap.as_deref_mut() {
            c.record_iteration(&sys.jacobian, &lu, max_resid, max_dv * scale, scale < 1.0);
        }
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += scale * di;
        }

        if max_resid < cfg.residual_tol_amps && max_dv * scale < cfg.step_tol_volts {
            return Ok((iter + 1, max_resid));
        }
    }
    let sys = assemble(circuit, x);
    let resid = sys
        .residual
        .iter()
        .take(n_nodes)
        .fold(0.0f64, |m, r| m.max(r.abs()));
    Err(SpiceError::NonConvergence {
        iterations: cfg.max_iterations,
        residual: resid,
    })
}

/// Solves for the DC operating point with default solver settings.
///
/// # Errors
///
/// Returns [`SpiceError::EmptyCircuit`] for circuits without unknowns,
/// [`SpiceError::SingularMatrix`] for structurally defective circuits,
/// and [`SpiceError::NonConvergence`] when Newton and the supply-ramp
/// homotopy both fail.
pub fn solve_dc(circuit: &Circuit) -> Result<OperatingPoint, SpiceError> {
    solve_dc_with(circuit, &SolverConfig::default(), None)
}

/// Solves for the DC operating point with explicit settings and an
/// optional warm-start guess (`voltages ++ source currents`).
///
/// Every call updates the process-wide aggregate counters in
/// [`crate::stats`].
///
/// # Errors
///
/// Same conditions as [`solve_dc`]. A
/// [`SpiceError::NonConvergence`] carries the *total* Newton
/// iterations spent across the plain attempt and every ramp stage, so
/// failure cost is attributable from the error alone.
pub fn solve_dc_with(
    circuit: &Circuit,
    cfg: &SolverConfig,
    warm_start: Option<&[f64]>,
) -> Result<OperatingPoint, SpiceError> {
    stats::record_solve();
    let mut cap = observe::capture_if_enabled();
    let sw = Stopwatch::start();
    let result = solve_dc_inner(circuit, cfg, warm_start, cap.as_mut());
    stats::record_solve_time_ms(sw.elapsed_ms());
    match &result {
        Ok((op, _ramped)) => {
            stats::record_iterations(op.iterations());
            stats::record_success();
        }
        Err(SpiceError::NonConvergence { iterations, .. }) => {
            stats::record_iterations(*iterations);
            stats::record_failure();
        }
        Err(_) => stats::record_failure(),
    }
    observe_outcome(cap, circuit, cfg, warm_start, &result);
    result.map(|(op, _ramped)| op)
}

/// Shared observatory tail of the solve wrappers: bumps the per-point
/// accounting window (always — a few thread-local counter writes) and,
/// when a capture was active, finalizes and records the trace.
fn observe_outcome(
    cap: Option<observe::AttemptCapture>,
    circuit: &Circuit,
    cfg: &SolverConfig,
    warm_start: Option<&[f64]>,
    result: &Result<(OperatingPoint, bool), SpiceError>,
) {
    let (iters, ramped, failed) = match result {
        Ok((op, ramped)) => (op.iterations() as u64, *ramped, false),
        Err(SpiceError::NonConvergence { iterations, .. }) => (*iterations as u64, true, true),
        Err(_) => (0, false, true),
    };
    observe::record_point_solve(circuit, iters, ramped, failed);
    if let Some(cap) = cap {
        observe::record_trace(cap.into_trace(circuit, cfg, warm_start, result));
    }
}

/// Runs a DC solve with trace capture *forced on*, independent of the
/// observatory's global switch, and returns the captured
/// [`observe::SolveTrace`] alongside the outcome. Unlike
/// [`solve_dc_with`] this records nothing into the process-wide
/// aggregates — it is the offline re-execution primitive behind
/// `pnc-cli solver replay`.
///
/// # Errors
///
/// The result slot carries the same conditions as [`solve_dc_with`];
/// the trace is returned either way (a failed solve still has a
/// trajectory worth diffing).
pub fn solve_dc_captured(
    circuit: &Circuit,
    cfg: &SolverConfig,
    warm_start: Option<&[f64]>,
) -> (Result<OperatingPoint, SpiceError>, observe::SolveTrace) {
    let mut cap = observe::AttemptCapture::new();
    let result = solve_dc_inner(circuit, cfg, warm_start, Some(&mut cap));
    let trace = cap.into_trace(circuit, cfg, warm_start, &result);
    (result.map(|(op, _ramped)| op), trace)
}

/// [`solve_dc_with`] plus per-solve telemetry: emits a `dc_solve`
/// debug event (iterations, final residual, whether the supply-ramp
/// fallback was engaged) on success and a `dc_solve_failed` warning on
/// error. When the handle carries an enabled
/// [`pnc_telemetry::Profiler`], each solve also records a `dc_solve`
/// span with the Newton iteration count and outcome as attributes.
/// With a disabled handle this is exactly [`solve_dc_with`].
///
/// # Errors
///
/// Same conditions as [`solve_dc_with`].
pub fn solve_dc_traced(
    circuit: &Circuit,
    cfg: &SolverConfig,
    warm_start: Option<&[f64]>,
    tel: &Telemetry,
) -> Result<OperatingPoint, SpiceError> {
    let mut scope = tel.profiler().scope("dc_solve");
    stats::record_solve();
    let mut cap = observe::capture_if_enabled();
    let sw = Stopwatch::start();
    let result = solve_dc_inner(circuit, cfg, warm_start, cap.as_mut());
    stats::record_solve_time_ms(sw.elapsed_ms());
    match &result {
        Ok((op, ramped)) => {
            stats::record_iterations(op.iterations());
            stats::record_success();
            let (iters, resid, ramped) = (op.iterations(), op.final_residual(), *ramped);
            scope.set_u64("iterations", iters as u64);
            scope.set_bool("ramped", ramped);
            tel.emit(|| {
                Event::new("dc_solve", Level::Debug)
                    .with_u64("iterations", iters as u64)
                    .with_f64("residual", resid)
                    .with_bool("ramped", ramped)
            });
        }
        Err(e) => {
            scope.set_bool("failed", true);
            if let SpiceError::NonConvergence {
                iterations,
                residual,
            } = e
            {
                stats::record_iterations(*iterations);
                scope.set_u64("iterations", *iterations as u64);
                let (iters, resid) = (*iterations, *residual);
                tel.emit(|| {
                    Event::new("dc_solve_failed", Level::Warn)
                        .with_str("error", "non_convergence")
                        .with_u64("iterations", iters as u64)
                        .with_f64("residual", resid)
                });
            } else {
                let msg = e.to_string();
                tel.emit(|| Event::new("dc_solve_failed", Level::Warn).with_str("error", msg));
            }
            stats::record_failure();
        }
    }
    observe_outcome(cap, circuit, cfg, warm_start, &result);
    result.map(|(op, _ramped)| op)
}

/// Core solve: returns the operating point and whether the ramp
/// fallback was engaged.
fn solve_dc_inner(
    circuit: &Circuit,
    cfg: &SolverConfig,
    warm_start: Option<&[f64]>,
    mut cap: Option<&mut observe::AttemptCapture>,
) -> Result<(OperatingPoint, bool), SpiceError> {
    let n = unknown_count(circuit);
    if n == 0 {
        return Err(SpiceError::EmptyCircuit);
    }
    let n_nodes = circuit.node_count() - 1;

    let mut x = match warm_start {
        Some(ws) if ws.len() == n => ws.to_vec(),
        _ => vec![0.0; n],
    };

    // Attempt 1: plain Newton from the guess.
    let mut total_iters = 0usize;
    match newton_attempt(circuit, &mut x, cfg, cap.as_deref_mut()) {
        Ok((iters, residual)) => {
            return Ok((
                OperatingPoint {
                    voltages: x[..n_nodes].to_vec(),
                    source_currents: x[n_nodes..].to_vec(),
                    iterations: iters,
                    residual,
                },
                false,
            ));
        }
        Err(SpiceError::NonConvergence { iterations, .. }) => total_iters += iterations,
        Err(e) => return Err(e),
    }

    // Attempt 2: supply ramping — scale all sources from 0 to full.
    stats::record_ramp_fallback();
    let full_volts: Vec<Option<f64>> = circuit
        .elements()
        .iter()
        .map(|e| match e {
            Element::VSource { volts, .. } => Some(*volts),
            _ => None,
        })
        .collect();

    let mut ramped = circuit.clone();
    x = vec![0.0; n];
    let mut final_residual = f64::INFINITY;
    for stage in 1..=cfg.ramp_stages {
        let frac = stage as f64 / cfg.ramp_stages as f64;
        for (idx, fv) in full_volts.iter().enumerate() {
            if let Some(v) = fv {
                ramped
                    .set_vsource(idx, v * frac)
                    // lint: allow(L001, reason = "idx enumerates the circuit's own source list")
                    .expect("index points at a source");
            }
        }
        if let Some(c) = cap.as_deref_mut() {
            c.mark_ramp_stage();
        }
        match newton_attempt(&ramped, &mut x, cfg, cap.as_deref_mut()) {
            Ok((iters, residual)) => {
                total_iters += iters;
                final_residual = residual;
            }
            Err(SpiceError::NonConvergence {
                iterations,
                residual,
            }) => {
                total_iters += iterations;
                if stage == cfg.ramp_stages {
                    // Report the whole budget spent, not just the last
                    // attempt, so the failure's cost is attributable.
                    return Err(SpiceError::NonConvergence {
                        iterations: total_iters,
                        residual,
                    });
                }
                // Intermediate stage struggled; carry the partial
                // solution forward and keep ramping.
            }
            Err(e) => return Err(e),
        }
    }

    Ok((
        OperatingPoint {
            voltages: x[..n_nodes].to_vec(),
            source_currents: x[n_nodes..].to_vec(),
            iterations: total_iters,
            residual: final_residual,
        },
        true,
    ))
}

/// Result of a DC sweep: one operating point per sweep value.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Swept source values (volts).
    pub inputs: Vec<f64>,
    /// Operating point per input.
    pub points: Vec<OperatingPoint>,
}

impl SweepResult {
    /// Extracts the voltage of `node` across the sweep.
    pub fn node_curve(&self, node: usize) -> Vec<f64> {
        self.points.iter().map(|p| p.voltage(node)).collect()
    }
}

/// Sweeps the EMF of the voltage source at element index `source_index`
/// over `values`, warm-starting each solve with the previous solution.
///
/// # Errors
///
/// Propagates element and convergence errors.
pub fn dc_sweep(
    circuit: &Circuit,
    source_index: usize,
    values: &[f64],
) -> Result<SweepResult, SpiceError> {
    dc_sweep_traced(circuit, source_index, values, &Telemetry::disabled())
}

/// [`dc_sweep`] with instrumentation: when `tel` carries an *enabled*
/// [`pnc_telemetry::Profiler`], every per-point solve goes through
/// [`solve_dc_traced`] and records a `dc_solve` span (Newton iteration
/// count as an attribute). With a disabled profiler this is exactly
/// [`dc_sweep`] — the per-point `dc_solve` event stream stays quiet so
/// unprofiled structured-log output keeps its volume.
///
/// # Errors
///
/// Propagates element and convergence errors.
pub fn dc_sweep_traced(
    circuit: &Circuit,
    source_index: usize,
    values: &[f64],
    tel: &Telemetry,
) -> Result<SweepResult, SpiceError> {
    let trace = tel.profiler().is_enabled();
    let mut swept = circuit.clone();
    let cfg = SolverConfig::default();
    let mut points = Vec::with_capacity(values.len());
    let mut warm: Option<Vec<f64>> = None;

    for &v in values {
        swept.set_vsource(source_index, v)?;
        let op = if trace {
            solve_dc_traced(&swept, &cfg, warm.as_deref(), tel)?
        } else {
            solve_dc_with(&swept, &cfg, warm.as_deref())?
        };
        let mut state = op.voltages.clone();
        state.extend_from_slice(&op.source_currents);
        warm = Some(state);
        points.push(op);
    }
    Ok(SweepResult {
        inputs: values.to_vec(),
        points,
    })
}

/// Convenience: evaluates the KCL residual norm at a solution (used in
/// tests to confirm physical consistency).
pub fn residual_norm(circuit: &Circuit, op: &OperatingPoint) -> f64 {
    let n_nodes = circuit.node_count() - 1;
    let mut x = op.all_voltages()[1..].to_vec();
    for k in 0..circuit.branch_count() {
        x.push(op.source_current(k));
    }
    let sys = assemble(circuit, &x);
    sys.residual
        .iter()
        .take(n_nodes)
        .fold(0.0f64, |m, r| m.max(r.abs()))
}

/// Linearly spaced values, inclusive of both endpoints.
// lint: dimensionless
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

// Re-exported for power computation.
pub(crate) fn voltage_of(op: &OperatingPoint, node: usize) -> f64 {
    node_voltage(&op.all_voltages()[1..], node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divider_solves_exactly() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vin, Circuit::GROUND, 1.0);
        c.resistor(vin, out, 2_000.0);
        c.resistor(out, Circuit::GROUND, 1_000.0);
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(out) - 1.0 / 3.0).abs() < 1e-9);
        assert!((op.voltage(vin) - 1.0).abs() < 1e-9);
        // Source current = −V/R_total = −1/3000.
        assert!((op.source_current(0) + 1.0 / 3000.0).abs() < 1e-9);
    }

    #[test]
    fn bridge_of_resistors() {
        // Wheatstone bridge, balanced: no current through the bridge R.
        let mut c = Circuit::new();
        let top = c.node("top");
        let l = c.node("l");
        let r = c.node("r");
        c.vsource(top, Circuit::GROUND, 1.0);
        c.resistor(top, l, 1000.0);
        c.resistor(top, r, 1000.0);
        c.resistor(l, Circuit::GROUND, 2000.0);
        c.resistor(r, Circuit::GROUND, 2000.0);
        c.resistor(l, r, 500.0); // bridge
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(l) - op.voltage(r)).abs() < 1e-9);
    }

    #[test]
    fn nmos_inverter_swings() {
        // Common-source EGT with resistive pull-up: V_out high when the
        // gate is low, low when the gate is high.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        let src = c.vsource(vin, Circuit::GROUND, 0.0);
        c.resistor(vdd, out, 100_000.0);
        c.egt(out, vin, Circuit::GROUND, 2e-4, 2e-5);

        let mut low = c.clone();
        low.set_vsource(src, 0.0).unwrap();
        let op_low = solve_dc(&low).unwrap();
        assert!(op_low.voltage(out) > 0.9, "out = {}", op_low.voltage(out));

        let mut high = c.clone();
        high.set_vsource(src, 1.0).unwrap();
        let op_high = solve_dc(&high).unwrap();
        assert!(op_high.voltage(out) < 0.2, "out = {}", op_high.voltage(out));
    }

    #[test]
    fn source_follower_tracks_input() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.2);
        c.vsource(vin, Circuit::GROUND, 0.9);
        c.egt(vdd, vin, out, 4e-4, 1e-5);
        c.resistor(out, Circuit::GROUND, 200_000.0);
        let op = solve_dc(&c).unwrap();
        let vout = op.voltage(out);
        // Output follows the gate minus roughly a threshold.
        assert!(vout > 0.2 && vout < 0.9, "vout = {vout}");
    }

    #[test]
    fn residual_is_tiny_at_solution() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.resistor(vdd, out, 10_000.0);
        c.egt(out, vdd, Circuit::GROUND, 1e-4, 2e-5);
        let op = solve_dc(&c).unwrap();
        assert!(residual_norm(&c, &op) < 1e-9);
    }

    #[test]
    fn sweep_is_monotone_for_follower() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.2);
        let src = c.vsource(vin, Circuit::GROUND, 0.0);
        c.egt(vdd, vin, out, 4e-4, 1e-5);
        c.resistor(out, Circuit::GROUND, 200_000.0);
        let sweep = dc_sweep(&c, src, &linspace(-1.0, 1.0, 41)).unwrap();
        let curve = sweep.node_curve(out);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "follower output must be monotone");
        }
        // ReLU-like: flat near zero for low inputs, rising after threshold.
        assert!(curve[0].abs() < 0.05);
        assert!(*curve.last().unwrap() > 0.3);
    }

    #[test]
    fn sweep_rejects_non_source_index() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource(a, Circuit::GROUND, 1.0);
        let r_idx = c.resistor(a, Circuit::GROUND, 100.0);
        assert!(dc_sweep(&c, r_idx, &[0.0, 1.0]).is_err());
    }

    #[test]
    fn vcvs_buffers_a_loaded_divider() {
        // Divider into a unity-gain buffer into a heavy load: the
        // divider must stay at 0.5 V because the buffer draws nothing
        // from it, while the load sees the buffered copy.
        let mut c = Circuit::new();
        let top = c.node("top");
        let mid = c.node("mid");
        let buf = c.node("buf");
        c.vsource(top, Circuit::GROUND, 1.0);
        c.resistor(top, mid, 10_000.0);
        c.resistor(mid, Circuit::GROUND, 10_000.0);
        c.vcvs(buf, Circuit::GROUND, mid, Circuit::GROUND, 1.0);
        c.resistor(buf, Circuit::GROUND, 100.0); // heavy load
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(mid) - 0.5).abs() < 1e-6, "divider loaded!");
        // The buffer copies its control node exactly (within Newton
        // tolerance); the 1e-9-scale offset on `mid` itself is GMIN.
        assert!((op.voltage(buf) - op.voltage(mid)).abs() < 1e-9);
    }

    #[test]
    fn vcvs_applies_gain() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GROUND, 0.3);
        c.vcvs(b, Circuit::GROUND, a, Circuit::GROUND, -2.5);
        c.resistor(b, Circuit::GROUND, 1_000.0);
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(b) + 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_circuit_errors() {
        let c = Circuit::new();
        assert!(matches!(solve_dc(&c), Err(SpiceError::EmptyCircuit)));
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(-1.0, 1.0, 5);
        assert_eq!(v, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn final_residual_passes_tolerance() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.resistor(vdd, out, 10_000.0);
        c.egt(out, vdd, Circuit::GROUND, 1e-4, 2e-5);
        let cfg = SolverConfig::default();
        let op = solve_dc_with(&c, &cfg, None).unwrap();
        assert!(op.final_residual() <= cfg.residual_tol_amps);
    }

    #[test]
    fn non_convergence_reports_total_iterations() {
        // A nonlinear circuit with a 1-iteration budget cannot
        // converge; the error must account for the plain attempt plus
        // every ramp stage, not just the final attempt.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.resistor(vdd, out, 100_000.0);
        c.egt(out, vdd, Circuit::GROUND, 2e-4, 2e-5);
        let cfg = SolverConfig {
            max_iterations: 1,
            ramp_stages: 3,
            ..SolverConfig::default()
        };
        match solve_dc_with(&c, &cfg, None) {
            Err(SpiceError::NonConvergence { iterations, .. }) => {
                // 1 (plain) + 3 ramp stages × 1 = 4.
                assert_eq!(iterations, 4);
            }
            other => panic!("expected NonConvergence, got {other:?}"),
        }
    }

    #[test]
    fn traced_solve_emits_events_and_matches_plain() {
        use pnc_telemetry::{MemorySink, Telemetry};
        use std::sync::Arc;

        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vin, Circuit::GROUND, 1.0);
        c.resistor(vin, out, 2_000.0);
        c.resistor(out, Circuit::GROUND, 1_000.0);

        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let cfg = SolverConfig::default();
        let traced = solve_dc_traced(&c, &cfg, None, &tel).unwrap();
        let plain = solve_dc_with(&c, &cfg, None).unwrap();
        assert_eq!(traced.voltage(out), plain.voltage(out));

        let events = sink.events_named("dc_solve");
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get_u64("iterations"), Some(traced.iterations() as u64));
        assert_eq!(e.get_f64("residual"), Some(traced.final_residual()));
        assert_eq!(e.get_bool("ramped"), Some(false));

        // Failure path emits a warning with the iteration total.
        let mut hard = Circuit::new();
        let vdd = hard.node("vdd");
        let o = hard.node("o");
        hard.vsource(vdd, Circuit::GROUND, 1.0);
        hard.resistor(vdd, o, 100_000.0);
        hard.egt(o, vdd, Circuit::GROUND, 2e-4, 2e-5);
        let tight = SolverConfig {
            max_iterations: 1,
            ramp_stages: 2,
            ..SolverConfig::default()
        };
        assert!(solve_dc_traced(&hard, &tight, None, &tel).is_err());
        let fails = sink.events_named("dc_solve_failed");
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].get_u64("iterations"), Some(3));
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.vsource(vin, Circuit::GROUND, 0.5);
        c.resistor(vdd, out, 50_000.0);
        c.egt(out, vin, Circuit::GROUND, 1e-4, 2e-5);
        let cfg = SolverConfig::default();
        let cold = solve_dc_with(&c, &cfg, None).unwrap();
        let mut state = cold.all_voltages()[1..].to_vec();
        state.push(cold.source_current(0));
        state.push(cold.source_current(1));
        let warm = solve_dc_with(&c, &cfg, Some(&state)).unwrap();
        assert!(warm.iterations() <= cold.iterations());
    }
}
