//! Transient analysis: backward-Euler time integration.
//!
//! The paper's optimization is purely DC (static classification power),
//! but a printed classifier's *energy per inference* is power × settling
//! time, and settling is set by printed parasitics (electrolyte-gated
//! transistors are notoriously slow; node capacitances of printed
//! interconnect sit in the nF range). This module integrates any
//! netlist containing [`Element::Capacitor`]s with the A-stable
//! backward-Euler rule:
//!
//! ```text
//! i_C(t+Δt) = C/Δt · (v(t+Δt) − v(t))
//! ```
//!
//! Each step replaces every capacitor with its companion model — a
//! conductance `C/Δt` in parallel with a history current source — and
//! solves the resulting nonlinear DC system with the existing Newton
//! machinery, warm-started from the previous step.

use crate::dc::{solve_dc_with, SolverConfig};
use crate::netlist::{Circuit, Element};
use crate::SpiceError;

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Time points (seconds), starting at `0.0` (the initial DC point).
    pub times: Vec<f64>,
    /// Node voltages per time point (`times.len() × node_count`),
    /// indexed `[step][node]` with ground included as column 0.
    pub voltages: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Voltage trace of one node.
    pub fn node_trace(&self, node: usize) -> Vec<f64> {
        self.voltages.iter().map(|v| v[node]).collect()
    }

    /// First time at which `node` stays within `tol_volts` of its final
    /// value for the remainder of the run, or `None` if it never
    /// settles.
    pub fn settling_time(&self, node: usize, tol_volts: f64) -> Option<f64> {
        let trace = self.node_trace(node);
        let last = *trace.last()?;
        let mut settle_idx = None;
        for (i, &v) in trace.iter().enumerate() {
            if (v - last).abs() <= tol_volts {
                if settle_idx.is_none() {
                    settle_idx = Some(i);
                }
            } else {
                settle_idx = None;
            }
        }
        settle_idx.map(|i| self.times[i])
    }
}

/// Builds the backward-Euler companion circuit for one step: capacitors
/// become `geq = C/Δt` conductances plus history current sources.
fn companion(circuit: &Circuit, dt_seconds: f64, v_prev: &[f64]) -> Circuit {
    let mut out = Circuit::new();
    for _ in 1..circuit.node_count() {
        out.node("n");
    }
    for e in circuit.elements() {
        match *e {
            Element::Capacitor { a, b, farads } => {
                let geq = farads / dt_seconds;
                out.resistor(a, b, 1.0 / geq);
                let dv_prev = v_prev[a] - v_prev[b];
                // i_C = geq·(v − v_prev): the −geq·v_prev part is a
                // current source injecting into `a`.
                out.isource(b, a, geq * dv_prev);
            }
            ref other => {
                // Clone every other element verbatim.
                match *other {
                    Element::Resistor { a, b, ohms } => {
                        out.resistor(a, b, ohms);
                    }
                    Element::VSource { plus, minus, volts } => {
                        out.vsource(plus, minus, volts);
                    }
                    Element::ISource { plus, minus, amps } => {
                        out.isource(plus, minus, amps);
                    }
                    Element::Vcvs {
                        plus,
                        minus,
                        ctrl_p,
                        ctrl_n,
                        gain,
                    } => {
                        out.vcvs(plus, minus, ctrl_p, ctrl_n, gain);
                    }
                    Element::Egt {
                        drain,
                        gate,
                        source,
                        w,
                        l,
                        model,
                    } => {
                        out.egt_with_model(drain, gate, source, w, l, model);
                    }
                    Element::Capacitor { .. } => unreachable!("handled above"),
                }
            }
        }
    }
    out
}

/// Integrates `circuit` from its DC operating point for `tstop_seconds` seconds
/// with fixed step `dt_seconds`.
///
/// # Errors
///
/// Propagates DC/Newton failures from the initial point or any step.
///
/// # Panics
///
/// Panics when `dt_seconds` or `tstop_seconds` is non-positive.
pub fn transient(
    circuit: &Circuit,
    tstop_seconds: f64,
    dt_seconds: f64,
) -> Result<TransientResult, SpiceError> {
    assert!(
        dt_seconds > 0.0 && tstop_seconds > 0.0,
        "transient: dt_seconds and tstop_seconds must be positive"
    );
    let cfg = SolverConfig::default();

    // Initial condition: DC point with capacitors open.
    let op0 = solve_dc_with(circuit, &cfg, None)?;
    let mut v_prev = op0.all_voltages();

    let steps = (tstop_seconds / dt_seconds).ceil() as usize;
    let mut times = Vec::with_capacity(steps + 1);
    let mut voltages = Vec::with_capacity(steps + 1);
    times.push(0.0);
    voltages.push(v_prev.clone());

    let mut warm: Option<Vec<f64>> = None;
    for k in 1..=steps {
        let comp = companion(circuit, dt_seconds, &v_prev);
        let op = solve_dc_with(&comp, &cfg, warm.as_deref())?;
        let v_now = op.all_voltages();
        let mut state = v_now[1..].to_vec();
        for b in 0..comp.branch_count() {
            state.push(op.source_current(b));
        }
        warm = Some(state);
        v_prev = v_now.clone();
        times.push(k as f64 * dt_seconds);
        voltages.push(v_now);
    }
    Ok(TransientResult { times, voltages })
}

/// Step-response helper: solves the DC point with the source at
/// `v_initial_volts`, switches it to `v_final_volts` and integrates for `tstop_seconds`.
///
/// # Errors
///
/// Propagates element-index and solver failures.
pub fn step_response(
    circuit: &Circuit,
    source_index: usize,
    v_initial_volts: f64,
    v_final_volts: f64,
    tstop_seconds: f64,
    dt_seconds: f64,
) -> Result<TransientResult, SpiceError> {
    // Pre-switch steady state.
    let mut before = circuit.clone();
    before.set_vsource(source_index, v_initial_volts)?;
    let cfg = SolverConfig::default();
    let op0 = solve_dc_with(&before, &cfg, None)?;
    let mut v_prev = op0.all_voltages();

    // Post-switch circuit, integrated from the pre-switch state.
    let mut after = circuit.clone();
    after.set_vsource(source_index, v_final_volts)?;

    assert!(
        dt_seconds > 0.0 && tstop_seconds > 0.0,
        "step_response: dt_seconds and tstop_seconds must be positive"
    );
    let steps = (tstop_seconds / dt_seconds).ceil() as usize;
    let mut times = vec![0.0];
    let mut voltages = vec![v_prev.clone()];
    let mut warm: Option<Vec<f64>> = None;
    for k in 1..=steps {
        let comp = companion(&after, dt_seconds, &v_prev);
        let op = solve_dc_with(&comp, &cfg, warm.as_deref())?;
        let v_now = op.all_voltages();
        let mut state = v_now[1..].to_vec();
        for b in 0..comp.branch_count() {
            state.push(op.source_current(b));
        }
        warm = Some(state);
        v_prev = v_now.clone();
        times.push(k as f64 * dt_seconds);
        voltages.push(v_now);
    }
    Ok(TransientResult { times, voltages })
}

/// Adds a capacitor of `farads` from every non-ground node to ground —
/// the standard lumped model of printed interconnect parasitics.
/// Returns the number of capacitors added.
pub fn add_node_parasitics(circuit: &mut Circuit, farads: f64) -> usize {
    let n = circuit.node_count();
    for node in 1..n {
        circuit.capacitor(node, Circuit::GROUND, farads);
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RC low-pass: R = 10 kΩ, C = 1 nF → τ = 10 µs.
    fn rc() -> (Circuit, usize, usize) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        let src = c.vsource(vin, Circuit::GROUND, 0.0);
        c.resistor(vin, out, 10_000.0);
        c.capacitor(out, Circuit::GROUND, 1e-9);
        (c, src, out)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (c, src, out) = rc();
        let tau = 1e-5;
        let r = step_response(&c, src, 0.0, 1.0, 5.0 * tau, tau / 100.0).unwrap();
        let trace = r.node_trace(out);
        // Compare v(t) = 1 − e^(−t/τ) at several points.
        for (i, &t) in r.times.iter().enumerate() {
            let expect = 1.0 - (-t / tau).exp();
            assert!(
                (trace[i] - expect).abs() < 0.02,
                "t = {t:.2e}: {} vs {expect}",
                trace[i]
            );
        }
    }

    #[test]
    fn rc_settling_time_is_a_few_tau() {
        let (c, src, out) = rc();
        let tau = 1e-5;
        let r = step_response(&c, src, 0.0, 1.0, 8.0 * tau, tau / 50.0).unwrap();
        let ts = r.settling_time(out, 0.01).expect("settles");
        // 1 % settling of a first-order system is ≈ 4.6 τ.
        assert!(
            (3.5 * tau..6.0 * tau).contains(&ts),
            "settling time {ts:.2e} (τ = {tau:.0e})"
        );
    }

    #[test]
    fn dc_initial_condition_is_respected() {
        let (c, src, out) = rc();
        // Start from 0.7 V steady state and keep the source there:
        // nothing should move.
        let r = step_response(&c, src, 0.7, 0.7, 5e-5, 1e-6).unwrap();
        let trace = r.node_trace(out);
        for &v in &trace {
            assert!((v - 0.7).abs() < 1e-6, "{trace:?}");
        }
    }

    #[test]
    fn transient_from_dc_point_is_flat_without_excitation() {
        let (mut c, _, out) = rc();
        c.set_vsource(0, 0.5).unwrap();
        let r = transient(&c, 3e-5, 1e-6).unwrap();
        let trace = r.node_trace(out);
        for &v in &trace {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn nonlinear_transient_converges() {
        // Inverter with output capacitance: input step, output slews.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        let src = c.vsource(vin, Circuit::GROUND, 0.0);
        c.resistor(vdd, out, 100_000.0);
        c.egt(out, vin, Circuit::GROUND, 2e-4, 2e-5);
        c.capacitor(out, Circuit::GROUND, 1e-9);
        let r = step_response(&c, src, 0.0, 1.0, 2e-3, 2e-5).unwrap();
        let trace = r.node_trace(out);
        assert!(trace[0] > 0.9, "output initially high: {}", trace[0]);
        assert!(
            *trace.last().unwrap() < 0.1,
            "output ends low: {}",
            trace.last().unwrap()
        );
        // Monotone fall (first-order-ish).
        for w in trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-6);
        }
    }

    #[test]
    fn add_node_parasitics_counts() {
        let (mut c, _, _) = rc();
        let nodes_before = c.node_count();
        let added = add_node_parasitics(&mut c, 1e-12);
        assert_eq!(added, nodes_before - 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_bad_dt() {
        let (c, _, _) = rc();
        let _ = transient(&c, 1e-5, 0.0);
    }
}
