//! Per-element and total power accounting at a DC operating point.
//!
//! Power dissipated by each element follows the electronic power
//! formula the paper uses for the crossbar (`P = ΔV²/R` for resistors)
//! and `P = I_D · V_DS` for transistors. Total dissipation equals the
//! power delivered by the sources (energy conservation — asserted in
//! tests).

use crate::dc::{voltage_of, OperatingPoint};
use crate::netlist::{Circuit, Element};

/// Power report for one circuit at one operating point.
#[derive(Debug, Clone)]
pub struct PowerReport {
    /// Dissipated power per element, in element order (watts). Voltage
    /// sources report the power they *deliver* (positive when sourcing).
    pub per_element: Vec<f64>,
    /// Total dissipated power across resistors and transistors (watts).
    pub dissipated_watts: f64,
    /// Total power delivered by all sources (watts).
    pub delivered_watts: f64,
}

/// Computes the power report for `circuit` at `op`.
pub fn power_report(circuit: &Circuit, op: &OperatingPoint) -> PowerReport {
    let mut per_element = Vec::with_capacity(circuit.elements().len());
    let mut dissipated_watts = 0.0;
    let mut delivered_watts = 0.0;
    let mut src_idx = 0usize;

    for element in circuit.elements() {
        let p = match *element {
            Element::Resistor { a, b, ohms } => {
                let dv = voltage_of(op, a) - voltage_of(op, b);
                let p = dv * dv / ohms;
                dissipated_watts += p;
                p
            }
            Element::VSource { plus, minus, .. } => {
                // MNA current flows into the + terminal; delivering
                // sources therefore have negative branch current.
                let i = op.source_current(src_idx);
                src_idx += 1;
                let v = voltage_of(op, plus) - voltage_of(op, minus);
                let p = -v * i;
                delivered_watts += p;
                p
            }
            Element::Capacitor { .. } => 0.0,
            Element::ISource { plus, minus, amps } => {
                // Delivers when pushing current from low to high
                // potential externally.
                let v = voltage_of(op, plus) - voltage_of(op, minus);
                let p = -v * amps;
                delivered_watts += p;
                p
            }
            Element::Vcvs { plus, minus, .. } => {
                // Ideal buffer: counted as delivered (active circuitry),
                // never as printed-network dissipation.
                let i = op.source_current(src_idx);
                src_idx += 1;
                let v = voltage_of(op, plus) - voltage_of(op, minus);
                let p = -v * i;
                delivered_watts += p;
                p
            }
            Element::Egt {
                drain,
                source,
                gate,
                w,
                l,
                model,
            } => {
                let vg = voltage_of(op, gate);
                let vd = voltage_of(op, drain);
                let vs = voltage_of(op, source);
                let id = model.eval(vg, vd, vs, w, l).id_amps;
                let p = id * (vd - vs);
                dissipated_watts += p;
                p
            }
        };
        per_element.push(p);
    }

    PowerReport {
        per_element,
        dissipated_watts,
        delivered_watts,
    }
}

/// Total power dissipated by the circuit at its DC operating point, in
/// watts.
pub fn total_power(circuit: &Circuit, op: &OperatingPoint) -> f64 {
    power_report(circuit, op).dissipated_watts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::solve_dc;

    #[test]
    fn divider_power_matches_closed_form() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vin, Circuit::GROUND, 1.0);
        c.resistor(vin, out, 1_000.0);
        c.resistor(out, Circuit::GROUND, 1_000.0);
        let op = solve_dc(&c).unwrap();
        let rep = power_report(&c, &op);
        // Total: V²/R_series = 1/2000 = 0.5 mW, split evenly.
        assert!((rep.dissipated_watts - 0.5e-3).abs() < 1e-9);
        assert!((rep.per_element[1] - 0.25e-3).abs() < 1e-9);
        assert!((rep.per_element[2] - 0.25e-3).abs() < 1e-9);
    }

    #[test]
    fn energy_conservation_with_transistor() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.vsource(vin, Circuit::GROUND, 0.7);
        c.resistor(vdd, out, 20_000.0);
        c.egt(out, vin, Circuit::GROUND, 1e-4, 2e-5);
        let op = solve_dc(&c).unwrap();
        let rep = power_report(&c, &op);
        // GMIN leak conductances dissipate a sliver of delivered power
        // that per-element accounting doesn't see; allow for it.
        assert!(
            (rep.dissipated_watts - rep.delivered_watts).abs()
                < 1e-6 * rep.delivered_watts.max(1e-12),
            "dissipated {} W vs delivered {} W",
            rep.dissipated_watts,
            rep.delivered_watts
        );
        assert!(rep.dissipated_watts > 0.0);
    }

    #[test]
    fn off_transistor_burns_almost_nothing() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.vsource(vin, Circuit::GROUND, -1.0); // deep off
        c.resistor(vdd, out, 1e6);
        c.egt(out, vin, Circuit::GROUND, 1e-4, 2e-5);
        let op = solve_dc(&c).unwrap();
        let rep = power_report(&c, &op);
        assert!(
            rep.dissipated_watts < 1e-7,
            "leakage power {}",
            rep.dissipated_watts
        );
    }

    #[test]
    fn source_delivery_sign() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource(a, Circuit::GROUND, 2.0);
        c.resistor(a, Circuit::GROUND, 100.0);
        let op = solve_dc(&c).unwrap();
        let rep = power_report(&c, &op);
        // 2 V across 100 Ω: delivers 40 mW.
        assert!((rep.delivered_watts - 0.04).abs() < 1e-9);
        assert!(rep.per_element[0] > 0.0, "source delivers positive power");
    }
}
