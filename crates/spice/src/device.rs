//! Compact model of the printed inorganic N-type electrolyte-gated
//! transistor (nEGT).
//!
//! The paper's circuits are built from nEGTs because they operate below
//! 1 V (Sec. II-A). We model them with an EKV-style single-expression
//! charge-sheet approximation:
//!
//! ```text
//! I_D = I_spec · [ ℓ(v_f)² − ℓ(v_r)² ],    ℓ(x) = ln(1 + eˣ)
//! v_f = (V_P − V_S) / (2 φ_t),   v_r = (V_P − V_D) / (2 φ_t)
//! V_P = (V_G − V_th) / n,        I_spec = 2 n β φ_t²,   β = K_p · W / L
//! ```
//!
//! This expression is smooth (C^∞) in all terminal voltages and in the
//! geometry `(W, L)`, covers sub-threshold through saturation, and
//! handles drain–source reversal symmetrically — exactly the properties
//! that make Newton iteration robust and that the paper's differentiable
//! power pipeline needs. Parameter magnitudes are representative of
//! published inkjet-printed inorganic EGT measurements (sub-1V
//! operation, µA–mA currents at W/L ≈ 1); they are *not* a calibrated
//! pPDK fit (see DESIGN.md §3 for the substitution rationale).

/// EKV-style nEGT compact model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EgtModel {
    /// Threshold voltage in volts.
    pub vth_volts: f64,
    /// Sub-threshold slope factor `n` (dimensionless, ≥ 1).
    // lint: dimensionless
    pub slope: f64,
    /// Thermal-equivalent voltage `φ_t` in volts. EGTs switch over a
    /// wider voltage range than silicon; we use an effective 60 mV.
    pub phi_t_volts: f64,
    /// Transconductance parameter `K_p` in A/V² at `W/L = 1`.
    // lint: allow(L004, reason = "A/V² has no single-unit suffix; units are pinned in the doc comment")
    pub kp: f64,
}

impl Default for EgtModel {
    fn default() -> Self {
        EgtModel {
            vth_volts: 0.40,
            slope: 1.25,
            phi_t_volts: 0.045,
            kp: 8.0e-4,
        }
    }
}

/// Drain current and its partial derivatives at an operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EgtEval {
    /// Drain current in amperes (positive = drain → source).
    pub id_amps: f64,
    /// `∂I_D/∂V_G`, in siemens.
    pub gm_siemens: f64,
    /// `∂I_D/∂V_D`, in siemens.
    pub gd_siemens: f64,
    /// `∂I_D/∂V_S`, in siemens.
    pub gs_siemens: f64,
}

/// Numerically stable `ln(1 + eˣ)`.
fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Logistic sigmoid, the derivative of [`softplus`].
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl EgtModel {
    /// Evaluates drain current and conductances for terminal voltages
    /// `(vg, vd, vs)` and geometry `(w, l)` in meters.
    ///
    /// # Panics
    ///
    /// Panics when `w` or `l` is non-positive (design-space bounds are
    /// enforced upstream; a non-positive geometry is a programming
    /// error).
    // lint: allow(L004, reason = "only the W/L ratio enters the model; any consistent length unit works")
    pub fn eval(&self, vg_volts: f64, vd_volts: f64, vs_volts: f64, w: f64, l: f64) -> EgtEval {
        assert!(w > 0.0 && l > 0.0, "EgtModel::eval: non-positive geometry");
        let beta = self.kp * w / l;
        let ispec = 2.0 * self.slope * beta * self.phi_t_volts * self.phi_t_volts;
        let inv2phi = 1.0 / (2.0 * self.phi_t_volts);
        // Source-referenced pinch-off: EGTs have no bulk terminal, so
        // the channel charge is controlled by V_GS alone.
        let vp = (vg_volts - vs_volts - self.vth_volts) / self.slope;
        let vds = vd_volts - vs_volts;

        let af = vp * inv2phi;
        let ar = (vp - vds) * inv2phi;
        let lf = softplus(af);
        let lr = softplus(ar);
        let sf = sigmoid(af);
        let sr = sigmoid(ar);

        let id = ispec * (lf * lf - lr * lr);
        // d(ℓ²)/darg = 2 ℓ σ
        let dlf = 2.0 * lf * sf;
        let dlr = 2.0 * lr * sr;
        // arg derivatives:
        //   ∂af/∂vg = inv2phi/n     ∂af/∂vs = −inv2phi/n   ∂af/∂vd = 0
        //   ∂ar/∂vg = inv2phi/n     ∂ar/∂vd = −inv2phi
        //   ∂ar/∂vs = inv2phi·(1 − 1/n)
        let dvpn = inv2phi / self.slope;
        let gm = ispec * (dlf - dlr) * dvpn;
        let gd = ispec * dlr * inv2phi;
        let gs = ispec * (-dlf * dvpn + dlr * (dvpn - inv2phi));

        EgtEval {
            id_amps: id,
            gm_siemens: gm,
            gd_siemens: gd,
            gs_siemens: gs,
        }
    }

    /// Saturation current for a gate overdrive `vov = V_G − V_th` with
    /// the source grounded and the drain far above pinch-off. Handy for
    /// sizing sanity checks.
    // lint: allow(L004, reason = "only the W/L ratio enters the model; any consistent length unit works")
    pub fn saturation_current(&self, vov_volts: f64, w: f64, l: f64) -> f64 {
        self.eval(self.vth_volts + vov_volts, 10.0, 0.0, w, l)
            .id_amps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: f64 = 100e-6;
    const L: f64 = 50e-6;

    #[test]
    fn off_below_threshold() {
        let m = EgtModel::default();
        let e = m.eval(0.0, 1.0, 0.0, W, L);
        // Deep sub-threshold: orders of magnitude below on-current.
        let on = m.eval(1.0, 1.0, 0.0, W, L);
        assert!(
            e.id_amps < on.id_amps * 1e-2,
            "off {} vs on {}",
            e.id_amps,
            on.id_amps
        );
        assert!(e.id_amps >= 0.0);
    }

    #[test]
    fn on_current_magnitude_is_physical() {
        // Printed EGT at ~0.7 V overdrive: tens of µA to ~mA.
        let m = EgtModel::default();
        let id = m.eval(1.0, 1.0, 0.0, W, L).id_amps;
        assert!(id > 1e-6 && id < 1e-2, "id = {id}");
    }

    #[test]
    fn current_increases_with_gate_voltage() {
        let m = EgtModel::default();
        let mut last = -1.0;
        for k in 0..20 {
            let vg = -0.5 + k as f64 * 0.1;
            let id = m.eval(vg, 1.0, 0.0, W, L).id_amps;
            assert!(id > last, "non-monotone at vg={vg}");
            last = id;
        }
    }

    #[test]
    fn current_scales_with_geometry() {
        let m = EgtModel::default();
        let a = m.eval(0.8, 1.0, 0.0, W, L).id_amps;
        let b = m.eval(0.8, 1.0, 0.0, 2.0 * W, L).id_amps;
        let c = m.eval(0.8, 1.0, 0.0, W, 2.0 * L).id_amps;
        assert!((b / a - 2.0).abs() < 1e-9, "W doubling should double I_D");
        assert!((c / a - 0.5).abs() < 1e-9, "L doubling should halve I_D");
    }

    #[test]
    fn reverse_bias_reverses_current() {
        // Swapping drain below source flips the current sign (the
        // source-referenced model is not magnitude-symmetric, but the
        // direction must reverse).
        let m = EgtModel::default();
        let fwd = m.eval(0.8, 0.6, 0.2, W, L).id_amps;
        let rev = m.eval(0.8, 0.2, 0.6, W, L).id_amps;
        assert!(fwd > 0.0);
        assert!(rev < 0.0, "reverse current should be negative: {rev}");
    }

    #[test]
    fn terminal_shift_invariance() {
        // Shifting all terminals by the same offset leaves I_D unchanged
        // (no bulk terminal), hence gm + gd + gs = 0.
        let m = EgtModel::default();
        let a = m.eval(0.7, 0.5, 0.1, W, L);
        let b = m.eval(0.7 - 0.4, 0.5 - 0.4, 0.1 - 0.4, W, L);
        assert!((a.id_amps - b.id_amps).abs() < 1e-18 + 1e-12 * a.id_amps.abs());
        assert!(
            (a.gm_siemens + a.gd_siemens + a.gs_siemens).abs()
                < 1e-12 * a.gm_siemens.abs().max(1e-12)
        );
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let m = EgtModel::default();
        let e = m.eval(0.9, 0.4, 0.4, W, L);
        assert!(e.id_amps.abs() < 1e-18);
    }

    #[test]
    fn saturation_flattens_current() {
        let m = EgtModel::default();
        let i1 = m.eval(0.8, 0.9, 0.0, W, L).id_amps;
        let i2 = m.eval(0.8, 1.8, 0.0, W, L).id_amps;
        // Ideal EKV without channel-length modulation: fully flat.
        assert!((i2 - i1) / i1 < 0.01, "saturation not flat: {i1} {i2}");
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let m = EgtModel::default();
        let (vg, vd, vs) = (0.62, 0.47, 0.11);
        let e = m.eval(vg, vd, vs, W, L);
        let h = 1e-7;
        let num_gm = (m.eval(vg + h, vd, vs, W, L).id_amps - m.eval(vg - h, vd, vs, W, L).id_amps)
            / (2.0 * h);
        let num_gd = (m.eval(vg, vd + h, vs, W, L).id_amps - m.eval(vg, vd - h, vs, W, L).id_amps)
            / (2.0 * h);
        let num_gs = (m.eval(vg, vd, vs + h, W, L).id_amps - m.eval(vg, vd, vs - h, W, L).id_amps)
            / (2.0 * h);
        assert!(
            (e.gm_siemens - num_gm).abs() < 1e-6 * num_gm.abs().max(1e-9),
            "gm {} vs {num_gm}",
            e.gm_siemens
        );
        assert!(
            (e.gd_siemens - num_gd).abs() < 1e-6 * num_gd.abs().max(1e-9),
            "gd {} vs {num_gd}",
            e.gd_siemens
        );
        assert!(
            (e.gs_siemens - num_gs).abs() < 1e-6 * num_gs.abs().max(1e-9),
            "gs {} vs {num_gs}",
            e.gs_siemens
        );
    }

    #[test]
    fn conductance_signs() {
        let m = EgtModel::default();
        let e = m.eval(0.7, 0.8, 0.0, W, L);
        assert!(e.gm_siemens > 0.0, "more gate drive, more current");
        assert!(e.gd_siemens > 0.0, "more drain voltage, more current");
        assert!(e.gs_siemens < 0.0, "raising source reduces current");
    }

    #[test]
    #[should_panic(expected = "non-positive geometry")]
    fn rejects_bad_geometry() {
        let m = EgtModel::default();
        let _ = m.eval(0.5, 0.5, 0.0, 0.0, L);
    }

    #[test]
    fn softplus_stability_extremes() {
        assert_eq!(softplus(100.0), 100.0);
        assert!(softplus(-100.0) > 0.0);
        assert!(softplus(-100.0) < 1e-30);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
    }
}
