//! Error type for circuit simulation.

use std::fmt;

/// Errors produced while building or solving a circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// Newton–Raphson failed to converge within the iteration budget,
    /// even after supply ramping.
    NonConvergence {
        /// Total Newton iterations spent across every attempt and
        /// ramp stage of the failed solve.
        iterations: usize,
        /// Residual norm at abort (amperes).
        residual: f64,
    },
    /// The MNA matrix was singular — usually a floating node or a loop
    /// of ideal voltage sources.
    SingularMatrix,
    /// An element parameter was non-physical (e.g. negative resistance).
    InvalidParameter {
        /// What was wrong.
        message: String,
    },
    /// The circuit references no elements or has no solvable unknowns.
    EmptyCircuit,
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::NonConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "DC analysis did not converge after {iterations} iterations \
                 (residual {residual:.3e} A)"
            ),
            SpiceError::SingularMatrix => {
                write!(f, "singular MNA matrix (floating node or source loop?)")
            }
            SpiceError::InvalidParameter { message } => {
                write!(f, "invalid element parameter: {message}")
            }
            SpiceError::EmptyCircuit => write!(f, "circuit has no solvable unknowns"),
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let e = SpiceError::NonConvergence {
            iterations: 200,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("200"));
        assert!(SpiceError::SingularMatrix.to_string().contains("singular"));
    }
}
