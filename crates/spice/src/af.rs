//! Printed activation circuits and the negation (inverter) circuit.
//!
//! The paper treats activation functions as *learnable hardware*: each
//! printed AF circuit has a design vector `q^AF = [R, W, L]` (resistor
//! values, transistor widths, transistor lengths — Sec. III-A) whose
//! values shape both the transfer function and the power draw. This
//! module provides, for each of the four AFs of Fig. 3(c)–(f):
//!
//! * a netlist builder ([`AfKind::build`]) over the nEGT compact model,
//! * the feasible design space `ℚ^AF` ([`AfKind::bounds`]),
//! * reference transfer-curve and power evaluation via DC analysis
//!   ([`transfer_curve`], [`mean_power`]) — the ground truth that the
//!   surrogate MLPs in `pnc-surrogate` are trained against.
//!
//! Signal convention: the pNC operates on bipolar signals in `[−1, 1]`
//! with supplies `V_DD = +1 V`, `V_SS = −1 V` (nEGTs allow sub-1V
//! rails). The negation circuit approximates `neg(V) ≈ −V` around 0.
//!
//! Topologies (chosen to reproduce the qualitative power signatures the
//! paper reports in Fig. 3 bottom):
//!
//! * **p-ReLU** — source follower + grounded load resistor: output ≈ 0
//!   below threshold, rises smoothly above it; power grows smoothly and
//!   unboundedly with input ("reflecting its unbounded nature").
//! * **p-Clipped_ReLU** — p-ReLU plus a diode-connected clamp EGT into a
//!   sink resistor: power spikes as the clamp starts conducting near the
//!   clip threshold, then the output flattens ("stabilizes due to the
//!   clipping effect").
//! * **p-sigmoid** — two cascaded, source-degenerated common-source
//!   stages between the rails: a moderate-gain S-shaped transfer; at
//!   negative inputs the (hotter-sized) second stage is fully on, so
//!   the circuit draws markedly more current ("higher current demands
//!   at negative voltages").
//! * **p-tanh** — pseudo-differential pair with shared tail resistor,
//!   output taken at the reference-side drain: symmetric tanh-like
//!   transfer centred at 0.

use crate::dc::{
    dc_sweep, dc_sweep_traced, linspace, solve_dc_traced, solve_dc_with, SolverConfig,
};
use crate::netlist::{Circuit, NodeId};
use crate::power::total_power;
use crate::SpiceError;
use pnc_telemetry::Telemetry;

/// Positive supply rail (volts).
pub const VDD: f64 = 1.0;
/// Negative supply rail (volts).
pub const VSS: f64 = -1.0;

/// The four printed activation-circuit families from Fig. 3(c)–(f).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AfKind {
    /// Unbounded rectifier (source follower). 1 EGT + 1 R.
    PRelu,
    /// Rectifier with output clamp. 2 EGT + 2 R.
    PClippedRelu,
    /// Cascaded degenerated-inverter sigmoid. 2 EGT + 4 R.
    PSigmoid,
    /// Pseudo-differential tanh. 2 EGT + 3 R (shared drain value).
    PTanh,
}

impl AfKind {
    /// All four kinds, in the paper's presentation order.
    pub const ALL: [AfKind; 4] = [
        AfKind::PRelu,
        AfKind::PClippedRelu,
        AfKind::PSigmoid,
        AfKind::PTanh,
    ];

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            AfKind::PRelu => "p-ReLU",
            AfKind::PClippedRelu => "p-Clipped_ReLU",
            AfKind::PSigmoid => "p-sigmoid",
            AfKind::PTanh => "p-tanh",
        }
    }

    /// Dimensionality of the design vector `q`.
    pub fn dim(self) -> usize {
        match self {
            AfKind::PRelu => 3,
            AfKind::PClippedRelu | AfKind::PSigmoid | AfKind::PTanh => 6,
        }
    }

    /// Names of the design parameters, in `q` order.
    pub fn param_names(self) -> &'static [&'static str] {
        match self {
            AfKind::PRelu => &["R_load", "W1", "L1"],
            AfKind::PClippedRelu => &["R_load", "R_supply", "W1", "L1", "W2", "L2"],
            AfKind::PSigmoid => &["R1", "R2", "W1", "L1", "W2", "L2"],
            AfKind::PTanh => &["R_drain", "R_tail", "W_A", "L_A", "W_B", "L_B"],
        }
    }

    /// Feasible design space `ℚ^AF`: `(lo, hi)` per parameter, matching
    /// printable component ranges (resistors in ohms, geometry in
    /// meters).
    pub fn bounds(self) -> Vec<(f64, f64)> {
        const R: (f64, f64) = (2.0e4, 1.0e6);
        const W: (f64, f64) = (2.0e-5, 5.0e-4);
        const L: (f64, f64) = (1.0e-5, 1.0e-4);
        match self {
            AfKind::PRelu => vec![R, W, L],
            AfKind::PClippedRelu | AfKind::PSigmoid | AfKind::PTanh => {
                vec![R, R, W, L, W, L]
            }
        }
    }

    /// Mid-range default design (geometric midpoint of each bound).
    pub fn default_design(self) -> AfDesign {
        let q = self
            .bounds()
            .iter()
            .map(|&(lo, hi)| (lo * hi).sqrt())
            .collect();
        AfDesign { kind: self, q }
    }

    /// Builds the AF netlist driven by a swept input source.
    ///
    /// Returns the circuit plus handles:
    /// `(circuit, input_source_index, output_node)`.
    ///
    /// # Panics
    ///
    /// Panics when `design.kind() != self` or the design vector has the
    /// wrong length (enforced by [`AfDesign::new`]).
    pub fn build(self, design: &AfDesign) -> (Circuit, usize, NodeId) {
        assert_eq!(design.kind, self, "design kind mismatch");
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vss = c.node("vss");
        let vin = c.node("in");
        c.vsource(vdd, Circuit::GROUND, VDD);
        c.vsource(vss, Circuit::GROUND, VSS);
        let src = c.vsource(vin, Circuit::GROUND, 0.0);
        let out = self.attach(&mut c, design.q(), vdd, vss, vin);
        (c, src, out)
    }

    /// Attaches this activation circuit to an existing netlist, driven
    /// by `vin` and supplied from `vdd`/`vss`. Returns the output node.
    /// Used by the network netlist exporter.
    ///
    /// # Panics
    ///
    /// Panics when `q.len() != self.dim()`.
    pub fn attach(
        self,
        c: &mut Circuit,
        q: &[f64],
        vdd: NodeId,
        vss: NodeId,
        vin: NodeId,
    ) -> NodeId {
        assert_eq!(q.len(), self.dim(), "attach: design dimension mismatch");
        match self {
            AfKind::PRelu => {
                let out = c.node("out");
                c.egt(vdd, vin, out, q[1], q[2]);
                c.resistor(out, Circuit::GROUND, q[0]);
                out
            }
            AfKind::PClippedRelu => {
                let out = c.node("out");
                let mid = c.node("mid");
                // Supply sag: the follower draws its drain current
                // through R_supply, so V_mid collapses as the output
                // rises; in triode the output clips near
                // V_DD·R_load/(R_load + R_supply) independent of input.
                c.resistor(vdd, mid, q[1]);
                c.egt(mid, vin, out, q[2], q[3]);
                c.resistor(out, Circuit::GROUND, q[0]);
                // Diode-connected clamp adds a hard ceiling ≈ V_th.
                c.egt(out, out, Circuit::GROUND, q[4], q[5]);
                out
            }
            AfKind::PSigmoid => {
                // Two source-degenerated common-source stages. The
                // degeneration (30 % of each stage's resistance budget)
                // sets a moderate gain ≈ (load/deg)² instead of the
                // near-step response of undegenerated inverters, and the
                // second stage is sized hotter (smaller total R), which
                // produces the higher current draw at negative inputs
                // the paper reports for p-sigmoid.
                let mid = c.node("mid");
                let out = c.node("out");
                let s1 = c.node("deg1");
                let s2 = c.node("deg2");
                c.resistor(vdd, mid, 1.5 * q[0]);
                c.resistor(s1, vss, 0.6 * q[0]);
                c.egt(mid, vin, s1, q[2], q[3]);
                c.resistor(vdd, out, 0.5 * q[1]);
                c.resistor(s2, vss, 0.2 * q[1]);
                c.egt(out, mid, s2, q[4], q[5]);
                out
            }
            AfKind::PTanh => {
                let da = c.node("drain_a");
                let db = c.node("drain_b");
                let tail = c.node("tail");
                c.resistor(vdd, da, q[0]);
                c.resistor(vdd, db, q[0]);
                c.egt(da, vin, tail, q[2], q[3]);
                // Reference side: gate at signal zero (ground).
                c.egt(db, Circuit::GROUND, tail, q[4], q[5]);
                c.resistor(tail, vss, q[1]);
                db
            }
        }
    }
}

/// A concrete design point `q` for one activation kind.
#[derive(Debug, Clone, PartialEq)]
pub struct AfDesign {
    kind: AfKind,
    q: Vec<f64>,
}

impl AfDesign {
    /// Wraps a design vector, validating its length against the kind's
    /// dimensionality and its entries against the feasible bounds.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidParameter`] when the length or any
    /// bound is violated.
    pub fn new(kind: AfKind, q: Vec<f64>) -> Result<Self, SpiceError> {
        if q.len() != kind.dim() {
            return Err(SpiceError::InvalidParameter {
                message: format!(
                    "{} expects {} design parameters, got {}",
                    kind.name(),
                    kind.dim(),
                    q.len()
                ),
            });
        }
        for (i, (&v, &(lo, hi))) in q.iter().zip(kind.bounds().iter()).enumerate() {
            if !(lo..=hi).contains(&v) {
                return Err(SpiceError::InvalidParameter {
                    message: format!(
                        "{} parameter {} = {v:.3e} outside [{lo:.3e}, {hi:.3e}]",
                        kind.name(),
                        kind.param_names()[i]
                    ),
                });
            }
        }
        Ok(AfDesign { kind, q })
    }

    /// The activation kind this design belongs to.
    pub fn kind(&self) -> AfKind {
        self.kind
    }

    /// The raw design vector.
    pub fn q(&self) -> &[f64] {
        &self.q
    }
}

/// Standard input grid used for transfer/power characterization.
pub fn input_grid(points: usize) -> Vec<f64> {
    linspace(VSS, VDD, points)
}

/// Simulated transfer curve `V_out(V_in)` of an AF design over `inputs`.
///
/// # Errors
///
/// Propagates DC convergence errors.
pub fn transfer_curve(design: &AfDesign, inputs: &[f64]) -> Result<Vec<f64>, SpiceError> {
    let (c, src, out) = design.kind.build(design);
    let sweep = dc_sweep(&c, src, inputs)?;
    Ok(sweep.node_curve(out))
}

/// [`transfer_curve`] with instrumentation: with an *enabled*
/// [`pnc_telemetry::Profiler`] each per-point DC solve records a
/// `dc_solve` span; with a disabled handle this is exactly
/// [`transfer_curve`].
///
/// # Errors
///
/// Propagates DC convergence errors.
pub fn transfer_curve_traced(
    design: &AfDesign,
    inputs: &[f64],
    tel: &Telemetry,
) -> Result<Vec<f64>, SpiceError> {
    let (c, src, out) = design.kind.build(design);
    let sweep = dc_sweep_traced(&c, src, inputs, tel)?;
    Ok(sweep.node_curve(out))
}

/// Simulated power curve `P(V_in)` (watts) of an AF design over
/// `inputs`. Only dissipation in the AF itself is counted (the input
/// source is ideal).
///
/// # Errors
///
/// Propagates DC convergence errors.
pub fn power_curve(design: &AfDesign, inputs: &[f64]) -> Result<Vec<f64>, SpiceError> {
    power_curve_traced(design, inputs, &Telemetry::disabled())
}

/// [`power_curve`] with instrumentation: with an *enabled*
/// [`pnc_telemetry::Profiler`] each per-point DC solve records a
/// `dc_solve` span (Newton iterations as an attribute); with a
/// disabled handle this is exactly [`power_curve`].
///
/// # Errors
///
/// Propagates DC convergence errors.
pub fn power_curve_traced(
    design: &AfDesign,
    inputs: &[f64],
    tel: &Telemetry,
) -> Result<Vec<f64>, SpiceError> {
    Ok(power_curve_with_states(design, inputs, None, tel)?.0)
}

/// Mean power over the standard input grid — the scalar target the
/// paper's surrogate models regress (`q^AF → 𝒫^AF`).
///
/// # Errors
///
/// Propagates DC convergence errors.
pub fn mean_power(design: &AfDesign, grid_points: usize) -> Result<f64, SpiceError> {
    let p = power_curve(design, &input_grid(grid_points))?;
    Ok(p.iter().sum::<f64>() / p.len() as f64)
}

/// [`mean_power`] with instrumentation — see [`power_curve_traced`].
///
/// # Errors
///
/// Propagates DC convergence errors.
pub fn mean_power_traced(
    design: &AfDesign,
    grid_points: usize,
    tel: &Telemetry,
) -> Result<f64, SpiceError> {
    let p = power_curve_traced(design, &input_grid(grid_points), tel)?;
    Ok(p.iter().sum::<f64>() / p.len() as f64)
}

/// Full solved state (`non-ground voltages ++ source currents`) of one
/// grid point — the warm-start currency of block-synchronous
/// characterization.
fn solved_state(circuit: &Circuit, op: &crate::dc::OperatingPoint) -> Vec<f64> {
    let mut state = op.all_voltages()[1..].to_vec();
    for k in 0..circuit.branch_count() {
        state.push(op.source_current(k));
    }
    state
}

/// Grid sweep core shared by the state-returning characterization
/// entry points: sweeps `src` over `inputs`, seeding each Newton solve
/// from the best of several continuation-style warm-start candidates:
///
/// * **chain** — the converged state of grid point `k−1`,
/// * **secant** — the linear extrapolation `2·x_{k−1} − x_{k−2}` of
///   the two previous states along the sweep (error `O(h²)` in the
///   grid spacing, vs `O(h)` for plain chaining),
/// * **donor slope** — `x_{k−1} + (donor[k] − donor[k−1])`: the
///   donor design's increment along its own sweep, re-anchored to the
///   current design (nearby designs trace near-parallel curves, so
///   the transplanted increment is often sharper than extrapolation),
/// * **donor** — `donor[k]` itself (the only candidate at point 0).
///
/// Donor states, when supplied, are the same grid solved on the
/// coordinate-nearest already-characterized design. Per point the
/// candidate with the smallest assembled residual wins — one cheap
/// Jacobian-free assembly each, no factorizations. Every candidate
/// and the ranking are pure functions of the sweep inputs, so solve
/// trajectories stay bit-identical for any thread count. Returns one
/// `(operating point, solved state)` per input.
fn sweep_with_states(
    c: &Circuit,
    src: usize,
    inputs: &[f64],
    donor: Option<&[Vec<f64>]>,
    tel: &Telemetry,
) -> Result<Vec<(crate::dc::OperatingPoint, Vec<f64>)>, SpiceError> {
    let trace = tel.profiler().is_enabled();
    let cfg = SolverConfig::default();
    let mut swept = c.clone();
    let mut chain: Option<Vec<f64>> = None;
    let mut chain2: Option<Vec<f64>> = None;
    let mut chain3: Option<Vec<f64>> = None;
    let mut out = Vec::with_capacity(inputs.len());
    for (k, &v) in inputs.iter().enumerate() {
        swept.set_vsource(src, v)?;
        let mut cands: Vec<Vec<f64>> = Vec::with_capacity(5);
        if let Some(prev) = &chain {
            cands.push(prev.clone());
            if let Some(prev2) = &chain2 {
                cands.push(prev.iter().zip(prev2).map(|(a, b)| 2.0 * a - b).collect());
                if let Some(prev3) = &chain3 {
                    // Quadratic extrapolation over the uniform grid:
                    // error O(h³) where the curve is smooth.
                    cands.push(
                        prev.iter()
                            .zip(prev2.iter().zip(prev3))
                            .map(|(a, (b, c))| 3.0 * a - 3.0 * b + c)
                            .collect(),
                    );
                }
            }
            if let (Some(dk), Some(dkm1)) = (
                donor.and_then(|d| d.get(k)),
                k.checked_sub(1).and_then(|j| donor.and_then(|d| d.get(j))),
            ) {
                cands.push(
                    prev.iter()
                        .zip(dk.iter().zip(dkm1))
                        .map(|(p, (a, b))| p + a - b)
                        .collect(),
                );
            }
        } else if let Some(dk) = donor.and_then(|d| d.get(k)) {
            cands.push(dk.clone());
        }
        let warm = crate::dc::best_warm_candidate(&swept, &cands).map(|i| cands[i].as_slice());
        let op = if trace {
            solve_dc_traced(&swept, &cfg, warm, tel)?
        } else {
            solve_dc_with(&swept, &cfg, warm)?
        };
        let state = solved_state(&swept, &op);
        chain3 = chain2.take();
        chain2 = chain.take();
        chain = Some(state.clone());
        out.push((op, state));
    }
    Ok(out)
}

/// [`power_curve_traced`] variant that accepts donor warm-start states
/// and returns the per-grid-point solved states alongside the power
/// curve. With `donor = None` the solve sequence matches
/// [`power_curve_traced`] (previous-point chaining).
///
/// # Errors
///
/// Propagates DC convergence errors.
pub fn power_curve_with_states(
    design: &AfDesign,
    inputs: &[f64],
    donor: Option<&[Vec<f64>]>,
    tel: &Telemetry,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), SpiceError> {
    let (c, src, _) = design.kind.build(design);
    let mut swept = c.clone();
    let mut powers = Vec::with_capacity(inputs.len());
    let mut states = Vec::with_capacity(inputs.len());
    for ((op, state), &v) in sweep_with_states(&c, src, inputs, donor, tel)?
        .into_iter()
        .zip(inputs)
    {
        swept.set_vsource(src, v)?;
        powers.push(total_power(&swept, &op));
        states.push(state);
    }
    Ok((powers, states))
}

/// [`mean_power_traced`] variant with donor warm-start states — see
/// [`power_curve_with_states`].
///
/// # Errors
///
/// Propagates DC convergence errors.
pub fn mean_power_with_states(
    design: &AfDesign,
    grid_points: usize,
    donor: Option<&[Vec<f64>]>,
    tel: &Telemetry,
) -> Result<(f64, Vec<Vec<f64>>), SpiceError> {
    let (p, states) = power_curve_with_states(design, &input_grid(grid_points), donor, tel)?;
    Ok((p.iter().sum::<f64>() / p.len() as f64, states))
}

/// [`transfer_curve_traced`] variant with donor warm-start states —
/// see [`power_curve_with_states`].
///
/// # Errors
///
/// Propagates DC convergence errors.
pub fn transfer_curve_with_states(
    design: &AfDesign,
    inputs: &[f64],
    donor: Option<&[Vec<f64>]>,
    tel: &Telemetry,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), SpiceError> {
    let (c, src, out) = design.kind.build(design);
    let mut curve = Vec::with_capacity(inputs.len());
    let mut states = Vec::with_capacity(inputs.len());
    for (op, state) in sweep_with_states(&c, src, inputs, donor, tel)? {
        curve.push(op.voltage(out));
        states.push(state);
    }
    Ok((curve, states))
}

/// Builds the standard-cell negation (inverter) circuit used for
/// negative weights: common-source nEGT between the rails with a
/// resistive pull-up and source degeneration. The degeneration resistor
/// linearizes the transfer (gain ≈ −R_pull/R_deg near the crossing) and
/// shifts the switching threshold toward 0 V so that `neg(V) ≈ −V` in
/// the mid range.
///
/// Returns `(circuit, input_source_index, output_node)`.
pub fn negation_circuit() -> (Circuit, usize, NodeId) {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vss = c.node("vss");
    let vin = c.node("in");
    c.vsource(vdd, Circuit::GROUND, VDD);
    c.vsource(vss, Circuit::GROUND, VSS);
    let src = c.vsource(vin, Circuit::GROUND, 0.0);
    let out = attach_negation(&mut c, vdd, vss, vin);
    (c, src, out)
}

/// Attaches the standard-cell negation inverter to an existing netlist.
/// Returns its output node. Used by the network netlist exporter.
pub fn attach_negation(c: &mut Circuit, vdd: NodeId, vss: NodeId, vin: NodeId) -> NodeId {
    let out = c.node("neg_out");
    let deg = c.node("neg_deg");
    c.resistor(vdd, out, 150_000.0);
    c.egt(out, vin, deg, 2.4e-4, 2.0e-5);
    c.resistor(deg, vss, 90_000.0);
    out
}

/// Simulated transfer curve of the negation circuit.
///
/// # Errors
///
/// Propagates DC convergence errors.
pub fn negation_transfer(inputs: &[f64]) -> Result<Vec<f64>, SpiceError> {
    let (c, src, out) = negation_circuit();
    let sweep = dc_sweep(&c, src, inputs)?;
    Ok(sweep.node_curve(out))
}

/// Mean power of the negation circuit over the standard grid (watts).
///
/// # Errors
///
/// Propagates DC convergence errors.
pub fn negation_mean_power(grid_points: usize) -> Result<f64, SpiceError> {
    let (c, src, _) = negation_circuit();
    let inputs = input_grid(grid_points);
    let mut swept = c.clone();
    let mut total = 0.0;
    for &v in &inputs {
        swept.set_vsource(src, v)?;
        let op = crate::dc::solve_dc(&swept)?;
        total += total_power(&swept, &op);
    }
    Ok(total / inputs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<f64> {
        input_grid(21)
    }

    #[test]
    fn all_kinds_build_and_converge() {
        for kind in AfKind::ALL {
            let d = kind.default_design();
            let t = transfer_curve(&d, &grid()).unwrap_or_else(|e| {
                panic!("{} failed to converge: {e}", kind.name());
            });
            assert_eq!(t.len(), 21);
            assert!(
                t.iter().all(|v| v.is_finite() && (-1.2..=1.2).contains(v)),
                "{}: transfer out of rails: {t:?}",
                kind.name()
            );
        }
    }

    #[test]
    fn design_validation() {
        assert!(AfDesign::new(AfKind::PRelu, vec![1.0]).is_err());
        assert!(AfDesign::new(AfKind::PRelu, vec![1e5, 1e-4, 2e-5]).is_ok());
        // Resistance below the printable minimum.
        assert!(AfDesign::new(AfKind::PRelu, vec![1.0, 1e-4, 2e-5]).is_err());
    }

    #[test]
    fn prelu_is_rectifying_and_monotone() {
        let d = AfKind::PRelu.default_design();
        let t = transfer_curve(&d, &grid()).unwrap();
        // Flat ≈ 0 for strongly negative inputs.
        assert!(t[0].abs() < 0.05, "left tail {}", t[0]);
        // Clearly positive for +1.
        assert!(
            *t.last().unwrap() > 0.2,
            "right value {}",
            t.last().unwrap()
        );
        for w in t.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "p-ReLU must be monotone: {t:?}");
        }
    }

    #[test]
    fn clipped_relu_flattens_at_the_top() {
        let d = AfKind::PClippedRelu.default_design();
        let inputs = linspace(-1.0, 1.0, 41);
        let t = transfer_curve(&d, &inputs).unwrap();
        // Slope in the last quarter is much smaller than the max slope.
        let slopes: Vec<f64> = t.windows(2).map(|w| w[1] - w[0]).collect();
        let max_slope = slopes.iter().cloned().fold(0.0f64, f64::max);
        let tail_slope = slopes[slopes.len() - 5..]
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert!(
            tail_slope < 0.5 * max_slope,
            "no clipping: tail {tail_slope} vs max {max_slope}"
        );
        assert!(t[0].abs() < 0.05, "left tail {}", t[0]);
    }

    #[test]
    fn sigmoid_is_s_shaped() {
        let d = AfKind::PSigmoid.default_design();
        let inputs = linspace(-1.0, 1.0, 41);
        let t = transfer_curve(&d, &inputs).unwrap();
        // Rising overall with saturation on both ends.
        assert!(*t.last().unwrap() - t[0] > 0.5, "swing too small: {t:?}");
        let slopes: Vec<f64> = t.windows(2).map(|w| w[1] - w[0]).collect();
        let max_slope = slopes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(slopes[0] < 0.3 * max_slope, "left end should be flat-ish");
        assert!(
            slopes[slopes.len() - 1] < 0.3 * max_slope,
            "right end should be flat-ish"
        );
    }

    #[test]
    fn tanh_is_centred_and_symmetricish() {
        let d = AfKind::PTanh.default_design();
        let inputs = linspace(-1.0, 1.0, 41);
        let t = transfer_curve(&d, &inputs).unwrap();
        assert!(*t.last().unwrap() > t[0], "must rise");
        // Steepest around 0 (within a few grid cells of centre).
        let slopes: Vec<f64> = t.windows(2).map(|w| w[1] - w[0]).collect();
        let arg = slopes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            (12..=28).contains(&arg),
            "steepest at index {arg}, expected near centre (20)"
        );
    }

    #[test]
    fn power_curves_match_paper_signatures() {
        // p-ReLU: smooth increase, highest at +1.
        let p = power_curve(&AfKind::PRelu.default_design(), &grid()).unwrap();
        assert!(p.iter().all(|&x| x >= 0.0));
        let arg_max = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(
            arg_max,
            p.len() - 1,
            "p-ReLU power should peak at +1: {p:?}"
        );

        // p-sigmoid: asymmetric — more power at negative inputs.
        let p = power_curve(&AfKind::PSigmoid.default_design(), &grid()).unwrap();
        let left: f64 = p[..5].iter().sum();
        let right: f64 = p[p.len() - 5..].iter().sum();
        assert!(
            left > right,
            "p-sigmoid should burn more at negative inputs: {left} vs {right}"
        );
    }

    #[test]
    fn mean_power_is_positive_and_sane() {
        for kind in AfKind::ALL {
            let p = mean_power(&kind.default_design(), 11).unwrap();
            // Physically plausible printed-AF power: 0.1 µW .. 1 mW.
            assert!(
                p > 1e-7 && p < 1e-3,
                "{}: mean power {p} W outside plausible range",
                kind.name()
            );
        }
    }

    #[test]
    fn negation_inverts_around_zero() {
        let inputs = linspace(-0.8, 0.8, 17);
        let t = negation_transfer(&inputs).unwrap();
        // Falling transfer.
        for w in t.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "negation must be monotone falling");
        }
        // Output swings from positive to negative as input crosses 0.
        assert!(t[0] > 0.3, "neg(-0.8) should be clearly positive: {}", t[0]);
        assert!(
            *t.last().unwrap() < -0.2,
            "neg(0.8) should be clearly negative: {}",
            t.last().unwrap()
        );
    }

    #[test]
    fn negation_power_is_positive() {
        let p = negation_mean_power(7).unwrap();
        assert!(p > 0.0 && p < 1e-3, "negation power {p}");
    }

    #[test]
    fn bounds_and_names_are_consistent() {
        for kind in AfKind::ALL {
            assert_eq!(kind.bounds().len(), kind.dim());
            assert_eq!(kind.param_names().len(), kind.dim());
            let d = kind.default_design();
            assert_eq!(d.q().len(), kind.dim());
            assert_eq!(d.kind(), kind);
            // Default design is feasible.
            assert!(AfDesign::new(kind, d.q().to_vec()).is_ok());
        }
    }

    #[test]
    fn power_depends_on_design() {
        // Larger W should change (typically raise) power for p-ReLU.
        let kind = AfKind::PRelu;
        let b = kind.bounds();
        let small = AfDesign::new(kind, vec![b[0].1, b[1].0, b[2].1]).unwrap();
        let large = AfDesign::new(kind, vec![b[0].0, b[1].1, b[2].0]).unwrap();
        let ps = mean_power(&small, 11).unwrap();
        let pl = mean_power(&large, 11).unwrap();
        assert!(
            pl > 2.0 * ps,
            "strong design should burn much more: {pl} vs {ps}"
        );
    }
}
