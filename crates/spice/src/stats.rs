//! Process-wide aggregate solver statistics.
//!
//! The DC solver is invoked from deep inside characterization sweeps
//! and power evaluations, far from any place a telemetry handle could
//! reasonably be threaded. Instead, every [`crate::dc::solve_dc_with`]
//! call unconditionally updates these relaxed atomic counters (a few
//! nanoseconds per solve), and an orchestrator — typically the CLI at
//! the end of a run — reads them out with [`snapshot`] or [`take`] and
//! emits a single `spice_stats` event.

use pnc_telemetry::{Event, HistogramSummary, Level, StreamHistogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::LazyLock;

// lint: allow(L003, reason = "process-wide monotonic counters aggregated across solver threads; read out once per run")
static SOLVES: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide monotonic counters aggregated across solver threads; read out once per run")
static NEWTON_ITERATIONS: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide monotonic counters aggregated across solver threads; read out once per run")
static RAMP_FALLBACKS: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide monotonic counters aggregated across solver threads; read out once per run")
static FAILURES: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide divergence-streak gauge; watchdogs poll it to diagnose sick runs")
static FAILURE_STREAK: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide divergence-streak high-water mark, same lifecycle as the counters above")
static LONGEST_FAILURE_STREAK: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide monotonic counters aggregated across solver threads; read out once per run")
static FACTORIZATIONS: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide monotonic counters aggregated across solver threads; read out once per run")
static REFACTORIZATIONS: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide monotonic counters aggregated across solver threads; read out once per run")
static PATTERN_HITS: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide monotonic counters aggregated across solver threads; read out once per run")
static PATTERN_MISSES: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide monotonic counters aggregated across solver threads; read out once per run")
static WARM_STARTED_SOLVES: AtomicU64 = AtomicU64::new(0);

/// Per-solve Newton iteration counts. A full-scale bench run performs
/// millions of solves, so the distribution lives in a log-bucketed
/// streamed histogram: bounded memory, allocation-free recording, and
/// — unlike the reservoir it replaced — deterministic summaries that
/// don't depend on which solves happened to survive sampling. Unit
/// resolution (1 tick per iteration) keeps small integer counts exact.
// lint: allow(L003, reason = "process-wide iteration-count distribution, same lifecycle as the atomic counters above")
static NEWTON_PER_SOLVE: LazyLock<StreamHistogram> =
    LazyLock::new(|| StreamHistogram::with_ticks_per_unit(1.0));

/// Per-solve wall-clock time in milliseconds, recorded by every
/// [`crate::dc::solve_dc_with`] / `solve_dc_traced` call at the
/// streamed histogram's default ns-per-ms resolution.
// lint: allow(L003, reason = "process-wide solve-latency distribution, same lifecycle as the atomic counters above")
static SOLVE_TIME_MS: LazyLock<StreamHistogram> = LazyLock::new(StreamHistogram::new);

/// A point-in-time copy of the aggregate counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStatsSnapshot {
    /// DC solves attempted (including failed ones).
    pub solves: u64,
    /// Newton iterations spent across all solves, attempts and ramp
    /// stages.
    pub newton_iterations: u64,
    /// Solves where the cold/warm Newton attempt failed and the
    /// supply-ramp homotopy was engaged.
    pub ramp_fallbacks: u64,
    /// Solves that returned an error.
    pub failures: u64,
    /// Longest run of *consecutive* failed solves observed — the
    /// Newton non-convergence streak a health watchdog keys on. A few
    /// isolated failures are normal near extreme operating points;
    /// a long unbroken streak means the solver has stopped converging.
    pub longest_failure_streak: u64,
    /// Full (pivot-searching) sparse numeric factorizations.
    pub factorizations: u64,
    /// Cheap numeric refactorizations that reused a frozen sparse
    /// structure — the factorization-reuse win of the sparse backend.
    pub refactorizations: u64,
    /// Circuit-pattern cache hits (symbolic analysis reused).
    pub pattern_hits: u64,
    /// Circuit-pattern cache misses (pattern built + analyzed).
    pub pattern_misses: u64,
    /// Solves that started from a caller-provided warm state instead
    /// of a cold zero guess.
    pub warm_started_solves: u64,
}

impl SolverStatsSnapshot {
    /// Renders the snapshot as a `spice_stats` telemetry event.
    pub fn to_event(&self) -> Event {
        Event::new("spice_stats", Level::Info)
            .with_u64("solves", self.solves)
            .with_u64("newton_iterations", self.newton_iterations)
            .with_u64("ramp_fallbacks", self.ramp_fallbacks)
            .with_u64("failures", self.failures)
            .with_u64("longest_failure_streak", self.longest_failure_streak)
            .with_u64("factorizations", self.factorizations)
            .with_u64("refactorizations", self.refactorizations)
            .with_u64("pattern_hits", self.pattern_hits)
            .with_u64("pattern_misses", self.pattern_misses)
            .with_u64("warm_started_solves", self.warm_started_solves)
    }
}

/// Reads the counters without resetting them.
pub fn snapshot() -> SolverStatsSnapshot {
    SolverStatsSnapshot {
        solves: SOLVES.load(Ordering::Relaxed),
        newton_iterations: NEWTON_ITERATIONS.load(Ordering::Relaxed),
        ramp_fallbacks: RAMP_FALLBACKS.load(Ordering::Relaxed),
        failures: FAILURES.load(Ordering::Relaxed),
        longest_failure_streak: LONGEST_FAILURE_STREAK.load(Ordering::Relaxed),
        factorizations: FACTORIZATIONS.load(Ordering::Relaxed),
        refactorizations: REFACTORIZATIONS.load(Ordering::Relaxed),
        pattern_hits: PATTERN_HITS.load(Ordering::Relaxed),
        pattern_misses: PATTERN_MISSES.load(Ordering::Relaxed),
        warm_started_solves: WARM_STARTED_SOLVES.load(Ordering::Relaxed),
    }
}

/// Current run of consecutive failed solves (zeroed by any successful
/// solve). Health watchdogs poll this to detect Newton divergence
/// streaks mid-run.
pub fn failure_streak() -> u64 {
    FAILURE_STREAK.load(Ordering::Relaxed)
}

/// Longest consecutive-failure streak since the last [`take`]/[`reset`].
pub fn longest_failure_streak() -> u64 {
    LONGEST_FAILURE_STREAK.load(Ordering::Relaxed)
}

/// Summary of the per-solve Newton iteration distribution (count /
/// min / max / mean / p50 / p95 / p99) accumulated since the last
/// [`take`] or [`reset`]. Iteration counts below 64 are exact;
/// larger ones carry the streamed histogram's ≤ 1/64 bucket error.
pub fn newton_iteration_summary() -> HistogramSummary {
    NEWTON_PER_SOLVE.summary()
}

/// Summary of per-solve wall-clock time (milliseconds) accumulated
/// since the last [`take`] or [`reset`].
pub fn solve_time_summary() -> HistogramSummary {
    SOLVE_TIME_MS.summary()
}

/// A live handle onto the per-solve Newton-iteration histogram
/// (clones share storage), for merging into a metrics registry.
pub fn newton_iteration_histogram() -> StreamHistogram {
    NEWTON_PER_SOLVE.clone()
}

/// A live handle onto the per-solve wall-time histogram (clones share
/// storage), for merging into a metrics registry.
pub fn solve_time_histogram() -> StreamHistogram {
    SOLVE_TIME_MS.clone()
}

/// Reads and zeroes the counters, returning the values they held; the
/// per-solve iteration histogram is cleared too (read it first with
/// [`newton_iteration_summary`] if you need the distribution).
/// Use this to attribute solver work to a phase of a larger run.
pub fn take() -> SolverStatsSnapshot {
    NEWTON_PER_SOLVE.clear();
    SOLVE_TIME_MS.clear();
    FAILURE_STREAK.store(0, Ordering::Relaxed);
    SolverStatsSnapshot {
        solves: SOLVES.swap(0, Ordering::Relaxed),
        newton_iterations: NEWTON_ITERATIONS.swap(0, Ordering::Relaxed),
        ramp_fallbacks: RAMP_FALLBACKS.swap(0, Ordering::Relaxed),
        failures: FAILURES.swap(0, Ordering::Relaxed),
        longest_failure_streak: LONGEST_FAILURE_STREAK.swap(0, Ordering::Relaxed),
        factorizations: FACTORIZATIONS.swap(0, Ordering::Relaxed),
        refactorizations: REFACTORIZATIONS.swap(0, Ordering::Relaxed),
        pattern_hits: PATTERN_HITS.swap(0, Ordering::Relaxed),
        pattern_misses: PATTERN_MISSES.swap(0, Ordering::Relaxed),
        warm_started_solves: WARM_STARTED_SOLVES.swap(0, Ordering::Relaxed),
    }
}

/// Zeroes the counters.
pub fn reset() {
    let _ = take();
}

pub(crate) fn record_solve() {
    SOLVES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_iterations(n: usize) {
    NEWTON_ITERATIONS.fetch_add(n as u64, Ordering::Relaxed);
    NEWTON_PER_SOLVE.record(n as f64);
}

pub(crate) fn record_solve_time_ms(ms: f64) {
    SOLVE_TIME_MS.record(ms);
}

/// A solve converged: breaks any consecutive-failure streak. Kept
/// separate from [`record_iterations`] because failed solves also
/// report their (wasted) iteration counts.
pub(crate) fn record_success() {
    FAILURE_STREAK.store(0, Ordering::Relaxed);
}

pub(crate) fn record_ramp_fallback() {
    RAMP_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// A full sparse numeric factorization ran (pivot search included).
pub(crate) fn record_factorization() {
    FACTORIZATIONS.fetch_add(1, Ordering::Relaxed);
}

/// A structure-reusing sparse refactorization ran.
pub(crate) fn record_refactorization() {
    REFACTORIZATIONS.fetch_add(1, Ordering::Relaxed);
}

/// The circuit-pattern cache served an existing symbolic analysis.
pub(crate) fn record_pattern_hit() {
    PATTERN_HITS.fetch_add(1, Ordering::Relaxed);
}

/// The circuit-pattern cache had to build + analyze a new pattern.
pub(crate) fn record_pattern_miss() {
    PATTERN_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// A solve was seeded from a warm state.
pub(crate) fn record_warm_start() {
    WARM_STARTED_SOLVES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_failure() {
    FAILURES.fetch_add(1, Ordering::Relaxed);
    let streak = FAILURE_STREAK.fetch_add(1, Ordering::Relaxed) + 1;
    LONGEST_FAILURE_STREAK.fetch_max(streak, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::solve_dc;
    use crate::netlist::Circuit;

    // NOTE: counters are process-global and Rust runs tests in
    // parallel, so assertions here are monotonic (deltas ≥ expected)
    // rather than exact.
    #[test]
    fn solves_and_iterations_accumulate() {
        let before = snapshot();
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GROUND, 1.0);
        c.resistor(a, b, 1_000.0);
        c.resistor(b, Circuit::GROUND, 1_000.0);
        let op = solve_dc(&c).unwrap();
        let after = snapshot();
        assert!(after.solves > before.solves);
        assert!(after.newton_iterations >= before.newton_iterations + op.iterations() as u64);
    }

    #[test]
    fn newton_histogram_tracks_per_solve_iterations() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource(a, Circuit::GROUND, 1.0);
        c.resistor(a, Circuit::GROUND, 500.0);
        let before = newton_iteration_summary().count;
        let op = solve_dc(&c).unwrap();
        let s = newton_iteration_summary();
        // Parallel tests may also solve, so assertions are monotonic.
        assert!(s.count > before);
        assert!(s.max >= op.iterations() as f64);
        // Warm-started solves that are converged on arrival record 0
        // iterations, so the minimum is only bounded below by zero.
        assert!(s.min >= 0.0);
    }

    #[test]
    fn solve_time_histogram_tracks_solves() {
        let before = solve_time_summary().count;
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource(a, Circuit::GROUND, 1.0);
        c.resistor(a, Circuit::GROUND, 250.0);
        solve_dc(&c).unwrap();
        let s = solve_time_summary();
        // Parallel tests may also solve, so assertions are monotonic.
        assert!(s.count > before);
        assert!(s.min >= 0.0 && s.max.is_finite());
        // The registry handle shares storage with the static.
        assert_eq!(solve_time_histogram().summary().count, s.count);
    }

    #[test]
    fn snapshot_event_shape() {
        let e = SolverStatsSnapshot {
            solves: 10,
            newton_iterations: 55,
            ramp_fallbacks: 2,
            failures: 1,
            longest_failure_streak: 1,
            factorizations: 4,
            refactorizations: 6,
            pattern_hits: 9,
            pattern_misses: 1,
            warm_started_solves: 5,
        }
        .to_event();
        assert_eq!(e.name, "spice_stats");
        assert_eq!(e.get_u64("solves"), Some(10));
        assert_eq!(e.get_u64("newton_iterations"), Some(55));
        assert_eq!(e.get_u64("ramp_fallbacks"), Some(2));
        assert_eq!(e.get_u64("failures"), Some(1));
        assert_eq!(e.get_u64("longest_failure_streak"), Some(1));
        assert_eq!(e.get_u64("factorizations"), Some(4));
        assert_eq!(e.get_u64("refactorizations"), Some(6));
        assert_eq!(e.get_u64("pattern_hits"), Some(9));
        assert_eq!(e.get_u64("pattern_misses"), Some(1));
        assert_eq!(e.get_u64("warm_started_solves"), Some(5));
    }

    #[test]
    fn failure_streak_counts_consecutive_failures_and_resets() {
        // Direct counter exercise: the streak grows with failures and
        // any completed solve breaks it. Parallel tests may interleave
        // their own solves, so assertions are monotonic where global
        // state is involved.
        record_failure();
        record_failure();
        assert!(longest_failure_streak() >= 2);
        record_success();
        assert!(failure_streak() < 2);
        // The high-water mark survives the reset of the live streak.
        assert!(longest_failure_streak() >= 2);
    }
}
