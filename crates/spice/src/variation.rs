//! Printing-process variation modeling.
//!
//! The pPDK the paper builds on (Rasheed et al., "Variability Modeling
//! for Printed Inorganic Electrolyte-Gated Transistors and Circuits" —
//! reference \[29\]) exists because inkjet-printed devices vary strongly
//! from print to print: resistor values spread with layer-thickness
//! fluctuations and transistors spread in both threshold voltage and
//! transconductance. This module applies that variability to any
//! netlist so trained circuits can be Monte-Carlo-evaluated *as they
//! would be printed*:
//!
//! * resistors: multiplicative log-normal spread on the resistance,
//! * nEGTs: additive normal spread on `V_th` plus multiplicative
//!   log-normal spread on `K_p`.
//!
//! Defaults follow the magnitudes reported for inkjet-printed passives
//! and EGTs (≈10 % resistance spread, ≈30 mV threshold spread, ≈15 %
//! transconductance spread).

use crate::netlist::{Circuit, Element};
use pnc_linalg::rng::next_normal;
use rand::rngs::StdRng;

/// Process-variation magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Relative (log-normal σ) spread of printed resistances.
    // lint: dimensionless
    pub resistor_sigma: f64,
    /// Absolute (normal σ, volts) spread of transistor thresholds.
    pub vth_sigma_volts: f64,
    /// Relative (log-normal σ) spread of the transconductance `K_p`.
    // lint: dimensionless
    pub kp_sigma: f64,
}

impl Default for VariationModel {
    fn default() -> Self {
        VariationModel {
            resistor_sigma: 0.10,
            vth_sigma_volts: 0.03,
            kp_sigma: 0.15,
        }
    }
}

impl VariationModel {
    /// A tighter "well-controlled process" corner (half the default
    /// spreads).
    pub fn tight() -> Self {
        VariationModel {
            resistor_sigma: 0.05,
            vth_sigma_volts: 0.015,
            kp_sigma: 0.075,
        }
    }

    /// A loose "low-cost process" corner (double the default spreads).
    pub fn loose() -> Self {
        VariationModel {
            resistor_sigma: 0.20,
            vth_sigma_volts: 0.06,
            kp_sigma: 0.30,
        }
    }

    /// Returns a perturbed copy of `circuit`: one Monte Carlo print.
    /// Voltage sources (test equipment / supplies) are not varied.
    pub fn sample(&self, circuit: &Circuit, rng: &mut StdRng) -> Circuit {
        // Rebuild the element list with perturbed values over the same
        // node numbering.
        let mut varied = Circuit::new();
        for _ in 1..circuit.node_count() {
            varied.node("n");
        }
        for e in circuit.elements() {
            match *e {
                Element::Resistor { a, b, ohms } => {
                    let f = (self.resistor_sigma * next_normal(rng)).exp();
                    varied.resistor(a, b, ohms * f);
                }
                Element::VSource { plus, minus, volts } => {
                    varied.vsource(plus, minus, volts);
                }
                Element::Capacitor { a, b, farads } => {
                    let f = (self.resistor_sigma * next_normal(rng)).exp();
                    varied.capacitor(a, b, farads * f);
                }
                Element::ISource { plus, minus, amps } => {
                    varied.isource(plus, minus, amps);
                }
                Element::Vcvs {
                    plus,
                    minus,
                    ctrl_p,
                    ctrl_n,
                    gain,
                } => {
                    varied.vcvs(plus, minus, ctrl_p, ctrl_n, gain);
                }
                Element::Egt {
                    drain,
                    gate,
                    source,
                    w,
                    l,
                    mut model,
                } => {
                    model.vth_volts += self.vth_sigma_volts * next_normal(rng);
                    model.kp *= (self.kp_sigma * next_normal(rng)).exp();
                    varied.egt_with_model(drain, gate, source, w, l, model);
                }
            }
        }
        varied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::solve_dc;
    use pnc_linalg::rng::seeded;

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let top = c.node("top");
        let mid = c.node("mid");
        c.vsource(top, Circuit::GROUND, 1.0);
        c.resistor(top, mid, 10_000.0);
        c.resistor(mid, Circuit::GROUND, 10_000.0);
        c
    }

    #[test]
    fn sampling_preserves_structure() {
        let c = divider();
        let mut rng = seeded(1);
        let v = VariationModel::default().sample(&c, &mut rng);
        assert_eq!(v.node_count(), c.node_count());
        assert_eq!(v.elements().len(), c.elements().len());
        assert_eq!(v.vsource_count(), 1);
    }

    #[test]
    fn resistances_spread_but_stay_positive() {
        let c = divider();
        let m = VariationModel::default();
        let mut rng = seeded(2);
        let mut values = Vec::new();
        for _ in 0..200 {
            let v = m.sample(&c, &mut rng);
            if let Element::Resistor { ohms, .. } = v.elements()[1] {
                assert!(ohms > 0.0);
                values.push(ohms);
            }
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let spread =
            (values.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
                / mean;
        assert!(
            (0.05..0.2).contains(&spread),
            "relative spread {spread} should be near 10 %"
        );
    }

    #[test]
    fn varied_divider_output_moves_but_stays_sane() {
        let c = divider();
        let m = VariationModel::default();
        let mut rng = seeded(3);
        let mut outputs = Vec::new();
        for _ in 0..50 {
            let v = m.sample(&c, &mut rng);
            let op = solve_dc(&v).expect("varied divider solves");
            outputs.push(op.voltage(2));
        }
        let min = outputs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = outputs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min > 0.35 && max < 0.65, "divider outputs [{min}, {max}]");
        assert!(max - min > 0.01, "variation should move the output");
    }

    #[test]
    fn sources_are_never_varied() {
        let c = divider();
        let mut rng = seeded(4);
        for _ in 0..20 {
            let v = VariationModel::loose().sample(&c, &mut rng);
            assert_eq!(v.vsource_volts(0).unwrap(), 1.0);
        }
    }

    #[test]
    fn corner_ordering() {
        let t = VariationModel::tight();
        let d = VariationModel::default();
        let l = VariationModel::loose();
        assert!(t.resistor_sigma < d.resistor_sigma);
        assert!(d.resistor_sigma < l.resistor_sigma);
        assert!(t.vth_sigma_volts < l.vth_sigma_volts);
    }
}
