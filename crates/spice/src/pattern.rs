//! Topology-keyed circuit sparsity patterns.
//!
//! The MNA stamp sequence is a pure function of circuit topology (see
//! [`crate::mna::JacobianSink`]), so a single value-free assembly walk
//! can record, once per topology, both the sparsity pattern of the
//! Jacobian and the mapping from each stamp call to its CSC value
//! position. Subsequent solves of *any* circuit sharing the topology
//! reuse the pattern, its fill-reducing ordering, and its symbolic
//! factorization — only the numeric stamping and (re)factorization run
//! per Newton iteration.
//!
//! Patterns are cached process-wide, keyed by the same FNV-1a topology
//! fingerprint the solver observatory stamps into every
//! [`crate::observe::SolveTrace`]. The cache holds *pure symbolic*
//! objects only — no per-solve numeric state — so sharing it across
//! threads cannot perturb solve trajectories or break the workspace's
//! bit-identical-for-any-thread-count invariant.

use crate::mna::{assemble_into, unknown_count, JacobianSink};
use crate::netlist::Circuit;
use crate::{observe, stats};
use pnc_linalg::sparse::{PatternBuilder, SparsityPattern, SymbolicLu};
use std::sync::{Arc, Mutex, OnceLock};

/// One circuit topology's reusable solve structure: the CSC sparsity
/// pattern, the stamp-call→value-position map, and the symbolic LU.
/// The topology fingerprint lives in the cache entry, not here.
#[derive(Debug)]
pub(crate) struct CircuitPattern {
    pattern: SparsityPattern,
    /// CSC value position of the k-th `add` call in assembly order.
    positions: Vec<usize>,
    symbolic: Arc<SymbolicLu>,
}

/// Recording sink: allocates a pattern slot per stamp call.
struct RecordSink {
    builder: PatternBuilder,
    slots: Vec<usize>,
}

impl JacobianSink for RecordSink {
    fn add(&mut self, row: usize, col: usize, _v: f64) {
        self.slots.push(self.builder.slot(row, col));
    }
}

/// Stamping sink: accumulates values into preallocated CSC positions,
/// consuming the recorded position list in assembly order.
struct StampSink<'a> {
    positions: &'a [usize],
    next: usize,
    values: &'a mut [f64],
}

impl JacobianSink for StampSink<'_> {
    fn add(&mut self, _row: usize, _col: usize, v: f64) {
        self.values[self.positions[self.next]] += v;
        self.next += 1;
    }
}

impl CircuitPattern {
    /// Records the pattern of `circuit` with one value-free assembly
    /// walk and runs the symbolic analysis.
    fn build(circuit: &Circuit) -> CircuitPattern {
        let n = unknown_count(circuit);
        let x = vec![0.0; n];
        let mut f = vec![0.0; n];
        let mut sink = RecordSink {
            builder: PatternBuilder::new(n),
            slots: Vec::new(),
        };
        assemble_into(circuit, &x, &mut sink, &mut f);
        let RecordSink { builder, slots } = sink;
        let pattern = builder.build();
        let positions = slots.iter().map(|&s| pattern.slot_position(s)).collect();
        let symbolic = Arc::new(SymbolicLu::analyze(&pattern));
        CircuitPattern {
            pattern,
            positions,
            symbolic,
        }
    }

    /// Matrix dimension (number of MNA unknowns).
    pub(crate) fn dim(&self) -> usize {
        self.pattern.dim()
    }

    /// Structural non-zero count of the Jacobian.
    pub(crate) fn nnz(&self) -> usize {
        self.pattern.nnz()
    }

    /// The shared symbolic factorization.
    pub(crate) fn symbolic(&self) -> &Arc<SymbolicLu> {
        &self.symbolic
    }

    /// Fresh zeroed CSC value buffer sized for this pattern.
    pub(crate) fn new_values(&self) -> Vec<f64> {
        self.pattern.new_values()
    }

    /// Stamps the Jacobian values and residual of `circuit` at guess
    /// `x` into preallocated buffers. `values` and `f` are zeroed here;
    /// callers reuse them across Newton iterations without clearing.
    ///
    /// # Panics
    ///
    /// Panics when the buffers do not match this pattern's shape or the
    /// circuit's topology differs from the one the pattern was built
    /// for.
    pub(crate) fn stamp(&self, circuit: &Circuit, x: &[f64], values: &mut [f64], f: &mut [f64]) {
        assert_eq!(values.len(), self.pattern.nnz(), "stamp: value buffer mismatch");
        for v in values.iter_mut() {
            *v = 0.0;
        }
        for r in f.iter_mut() {
            *r = 0.0;
        }
        let mut sink = StampSink {
            positions: &self.positions,
            next: 0,
            values,
        };
        assemble_into(circuit, x, &mut sink, f);
        assert_eq!(
            sink.next,
            self.positions.len(),
            "stamp: stamp-call count diverged from recorded topology"
        );
    }
}

// lint: allow(L003, reason = "process-wide cache of pure-topology symbolic objects; holds no per-solve numeric state, so sharing cannot perturb solve trajectories")
static PATTERN_CACHE: OnceLock<Mutex<Vec<(u64, Arc<CircuitPattern>)>>> = OnceLock::new();

/// Returns the cached pattern for the circuit's topology, building and
/// inserting it on first sight. Hits and misses feed the process-wide
/// solver counters.
pub(crate) fn cached_pattern(circuit: &Circuit) -> Arc<CircuitPattern> {
    let fp = observe::pattern_fingerprint(circuit);
    let n = unknown_count(circuit);
    let cache = PATTERN_CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some((_, p)) = guard
        .iter()
        .find(|(k, p)| *k == fp && p.dim() == n)
    {
        stats::record_pattern_hit();
        return Arc::clone(p);
    }
    stats::record_pattern_miss();
    let built = Arc::new(CircuitPattern::build(circuit));
    guard.push((fp, Arc::clone(&built)));
    built
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::assemble;

    fn inverter() -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.vsource(vin, Circuit::GROUND, 0.5);
        c.resistor(vdd, out, 100_000.0);
        c.egt(out, vin, Circuit::GROUND, 2e-4, 2e-5);
        c
    }

    #[test]
    fn stamped_values_match_dense_assembly() {
        let c = inverter();
        let pat = CircuitPattern::build(&c);
        let n = unknown_count(&c);
        let x: Vec<f64> = (0..n).map(|i| 0.1 * i as f64).collect();
        let mut vals = pat.new_values();
        let mut f = vec![0.0; n];
        pat.stamp(&c, &x, &mut vals, &mut f);

        let sys = assemble(&c, &x);
        let dense = pat.pattern.to_dense(&vals);
        for r in 0..n {
            for col in 0..n {
                let d = (dense[(r, col)] - sys.jacobian[(r, col)]).abs();
                assert!(d < 1e-15, "J[{r}][{col}] diverged by {d}");
            }
        }
        for (k, (a, b)) in f.iter().zip(&sys.residual).enumerate() {
            assert!((a - b).abs() < 1e-15, "f[{k}]: {a} vs {b}");
        }
    }

    #[test]
    fn stamp_reuses_buffers_without_manual_clearing() {
        let c = inverter();
        let pat = CircuitPattern::build(&c);
        let n = unknown_count(&c);
        let mut vals = pat.new_values();
        let mut f = vec![0.0; n];
        let x1 = vec![0.3; n];
        pat.stamp(&c, &x1, &mut vals, &mut f);
        let first = vals.clone();
        let x2 = vec![0.7; n];
        pat.stamp(&c, &x2, &mut vals, &mut f);
        pat.stamp(&c, &x1, &mut vals, &mut f);
        assert_eq!(vals, first, "re-stamping the same guess must be idempotent");
    }

    #[test]
    fn cache_hits_on_shared_topology() {
        // Two circuits with identical topology but different values
        // share one pattern object; a different topology gets its own.
        let a = inverter();
        let mut b = inverter();
        b.set_vsource(1, 0.9).unwrap();
        let pa = cached_pattern(&a);
        let pb = cached_pattern(&b);
        assert!(Arc::ptr_eq(&pa, &pb), "same topology must share the pattern");

        let mut other = Circuit::new();
        let p = other.node("p");
        other.vsource(p, Circuit::GROUND, 1.0);
        other.resistor(p, Circuit::GROUND, 50.0);
        let po = cached_pattern(&other);
        assert!(!Arc::ptr_eq(&pa, &po));
    }
}
