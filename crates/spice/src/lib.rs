//! # pnc-spice
//!
//! A compact, self-contained nonlinear DC circuit simulator — the
//! workspace's substitute for the printed process design kit (pPDK) and
//! the commercial SPICE runs the paper uses to characterize printed
//! activation circuits (Sec. III-A: "we run 10,000 SPICE simulations"
//! per activation function).
//!
//! The simulator implements:
//!
//! * **Modified nodal analysis (MNA)** over resistors, independent
//!   voltage sources, and inorganic N-type electrolyte-gated transistors
//!   (nEGTs) — the sub-1V device family the paper targets (Sec. II-A).
//! * An **EKV-style smooth compact model** for the nEGT ([`device`]):
//!   one C¹ expression covering sub-threshold, triode and saturation,
//!   chosen so Newton iterations converge from cold starts and power is
//!   smooth in the design variables `(W, L)` — the same property that
//!   motivates the paper's differentiable surrogate models.
//! * **Newton–Raphson** DC operating-point solving with step damping
//!   and supply ramping as a fallback ([`dc`]).
//! * **Element-wise power accounting** ([`power`]).
//! * Netlist builders for the paper's four printed activation circuits
//!   and the negation (inverter) circuit ([`af`]), each parameterized by
//!   the learnable design vector `q = [R, W, L]` from Fig. 3(c)–(f).
//!
//! # Example: a resistive divider
//!
//! ```
//! use pnc_spice::netlist::Circuit;
//! use pnc_spice::dc::solve_dc;
//!
//! let mut c = Circuit::new();
//! let vin = c.node("in");
//! let out = c.node("out");
//! c.vsource(vin, Circuit::GROUND, 1.0);
//! c.resistor(vin, out, 10_000.0);
//! c.resistor(out, Circuit::GROUND, 10_000.0);
//! let op = solve_dc(&c).unwrap();
//! assert!((op.voltage(out) - 0.5).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod af;
pub mod dc;
pub mod device;
pub mod error;
pub mod mna;
pub mod netlist;
pub mod observe;
pub(crate) mod pattern;
pub mod power;
pub mod stats;
pub mod transient;
pub mod variation;

pub use af::{AfDesign, AfKind};
pub use dc::{solve_dc, solve_dc_captured, solve_dc_traced, OperatingPoint, SolverBackend};
pub use device::EgtModel;
pub use error::SpiceError;
pub use netlist::{Circuit, NodeId};
pub use observe::SolveTrace;
pub use variation::VariationModel;
