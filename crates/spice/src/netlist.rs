//! Circuit netlists: nodes and elements.

use crate::device::EgtModel;
use crate::SpiceError;

/// Node identifier. Node 0 is always ground.
pub type NodeId = usize;

/// A circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor between two nodes.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (> 0).
        ohms: f64,
    },
    /// Ideal independent voltage source.
    VSource {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// EMF in volts.
        volts: f64,
    },
    /// Ideal voltage-controlled voltage source (used as an ideal
    /// inter-stage buffer in exported networks): enforces
    /// `V(plus) − V(minus) = gain · (V(ctrl_p) − V(ctrl_n))`.
    Vcvs {
        /// Positive output terminal.
        plus: NodeId,
        /// Negative output terminal.
        minus: NodeId,
        /// Positive controlling terminal (draws no current).
        ctrl_p: NodeId,
        /// Negative controlling terminal (draws no current).
        ctrl_n: NodeId,
        /// Voltage gain.
        gain: f64,
    },
    /// Linear capacitor (open in DC; integrated by the transient
    /// engine).
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (> 0).
        farads: f64,
    },
    /// Ideal independent current source: `amps` flows from `plus`
    /// through the source to `minus`.
    ISource {
        /// Terminal the current is drawn from.
        plus: NodeId,
        /// Terminal the current is injected into.
        minus: NodeId,
        /// Source current in amperes.
        amps: f64,
    },
    /// N-type electrolyte-gated transistor.
    Egt {
        /// Drain terminal.
        drain: NodeId,
        /// Gate terminal (draws no DC current).
        gate: NodeId,
        /// Source terminal.
        source: NodeId,
        /// Channel width in meters.
        w: f64,
        /// Channel length in meters.
        l: f64,
        /// Compact-model parameters.
        model: EgtModel,
    },
}

/// A DC circuit under construction.
///
/// Nodes are created with [`Circuit::node`] (named, for debuggability)
/// and elements with the builder methods. Ground is [`Circuit::GROUND`].
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    names: Vec<String>,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground node (reference, 0 V).
    pub const GROUND: NodeId = 0;

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            names: vec!["gnd".to_string()],
            elements: Vec::new(),
        }
    }

    /// Allocates a new node with a debug name.
    pub fn node(&mut self, name: &str) -> NodeId {
        self.names.push(name.to_string());
        self.names.len() - 1
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Name of a node (ground is `"gnd"`).
    ///
    /// # Panics
    ///
    /// Panics for an unknown node id.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node]
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of voltage sources (extra MNA unknowns).
    pub fn vsource_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. }))
            .count()
    }

    /// Number of branch-current unknowns (voltage sources + VCVS).
    pub fn branch_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. } | Element::Vcvs { .. }))
            .count()
    }

    /// Adds an ideal voltage-controlled voltage source. Returns the
    /// element index.
    ///
    /// # Panics
    ///
    /// Panics on unknown nodes.
    pub fn vcvs(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        ctrl_p: NodeId,
        ctrl_n: NodeId,
        // lint: dimensionless
        gain: f64,
    ) -> usize {
        self.check_node(plus);
        self.check_node(minus);
        self.check_node(ctrl_p);
        self.check_node(ctrl_n);
        self.elements.push(Element::Vcvs {
            plus,
            minus,
            ctrl_p,
            ctrl_n,
            gain,
        });
        self.elements.len() - 1
    }

    /// Adds a capacitor. Returns the element index.
    ///
    /// # Panics
    ///
    /// Panics on unknown nodes or non-positive capacitance.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> usize {
        self.check_node(a);
        self.check_node(b);
        assert!(farads > 0.0, "capacitor must have positive capacitance");
        self.elements.push(Element::Capacitor { a, b, farads });
        self.elements.len() - 1
    }

    /// Adds an ideal current source. Returns the element index.
    ///
    /// # Panics
    ///
    /// Panics on unknown nodes.
    pub fn isource(&mut self, plus: NodeId, minus: NodeId, amps: f64) -> usize {
        self.check_node(plus);
        self.check_node(minus);
        self.elements.push(Element::ISource { plus, minus, amps });
        self.elements.len() - 1
    }

    fn check_node(&self, node: NodeId) {
        assert!(
            node < self.names.len(),
            "node id {node} not created on this circuit"
        );
    }

    /// Adds a resistor. Returns the element index.
    ///
    /// # Panics
    ///
    /// Panics on unknown nodes or non-positive resistance.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> usize {
        self.check_node(a);
        self.check_node(b);
        assert!(ohms > 0.0, "resistor must have positive resistance");
        self.elements.push(Element::Resistor { a, b, ohms });
        self.elements.len() - 1
    }

    /// Adds an ideal voltage source. Returns the element index.
    ///
    /// # Panics
    ///
    /// Panics on unknown nodes.
    pub fn vsource(&mut self, plus: NodeId, minus: NodeId, volts: f64) -> usize {
        self.check_node(plus);
        self.check_node(minus);
        self.elements.push(Element::VSource { plus, minus, volts });
        self.elements.len() - 1
    }

    /// Adds an nEGT with the default compact model. Returns the element
    /// index.
    ///
    /// # Panics
    ///
    /// Panics on unknown nodes or non-positive geometry.
    // lint: allow(L004, reason = "only the W/L ratio enters the model; any consistent length unit works")
    pub fn egt(&mut self, drain: NodeId, gate: NodeId, source: NodeId, w: f64, l: f64) -> usize {
        self.egt_with_model(drain, gate, source, w, l, EgtModel::default())
    }

    /// Adds an nEGT with an explicit compact model. Returns the element
    /// index.
    ///
    /// # Panics
    ///
    /// Panics on unknown nodes or non-positive geometry.
    pub fn egt_with_model(
        &mut self,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        // lint: allow(L004, reason = "only the W/L ratio enters the model; any consistent length unit works")
        w: f64,
        // lint: allow(L004, reason = "only the W/L ratio enters the model; any consistent length unit works")
        l: f64,
        model: EgtModel,
    ) -> usize {
        self.check_node(drain);
        self.check_node(gate);
        self.check_node(source);
        assert!(w > 0.0 && l > 0.0, "EGT geometry must be positive");
        self.elements.push(Element::Egt {
            drain,
            gate,
            source,
            w,
            l,
            model,
        });
        self.elements.len() - 1
    }

    /// Replaces the EMF of an existing voltage source (used for DC
    /// sweeps and supply ramping).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidParameter`] if `index` does not
    /// refer to a voltage source.
    pub fn set_vsource(&mut self, index: usize, volts: f64) -> Result<(), SpiceError> {
        match self.elements.get_mut(index) {
            Some(Element::VSource { volts: v, .. }) => {
                *v = volts;
                Ok(())
            }
            _ => Err(SpiceError::InvalidParameter {
                message: format!("element {index} is not a voltage source"),
            }),
        }
    }

    /// EMF of a voltage source element.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidParameter`] if `index` does not
    /// refer to a voltage source.
    pub fn vsource_volts(&self, index: usize) -> Result<f64, SpiceError> {
        match self.elements.get(index) {
            Some(Element::VSource { volts, .. }) => Ok(*volts),
            _ => Err(SpiceError::InvalidParameter {
                message: format!("element {index} is not a voltage source"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_exists_by_default() {
        let c = Circuit::new();
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.node_name(Circuit::GROUND), "gnd");
    }

    #[test]
    fn nodes_get_sequential_ids() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(c.node_name(b), "b");
    }

    #[test]
    fn elements_are_recorded() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource(a, Circuit::GROUND, 1.0);
        c.resistor(a, Circuit::GROUND, 100.0);
        c.egt(a, a, Circuit::GROUND, 1e-4, 1e-5);
        assert_eq!(c.elements().len(), 3);
        assert_eq!(c.vsource_count(), 1);
    }

    #[test]
    fn set_vsource_updates_emf() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let idx = c.vsource(a, Circuit::GROUND, 1.0);
        c.set_vsource(idx, 0.25).unwrap();
        assert_eq!(c.vsource_volts(idx).unwrap(), 0.25);
    }

    #[test]
    fn set_vsource_rejects_non_source() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let idx = c.resistor(a, Circuit::GROUND, 100.0);
        assert!(c.set_vsource(idx, 1.0).is_err());
        assert!(c.vsource_volts(idx).is_err());
    }

    #[test]
    fn capacitor_and_isource_are_recorded() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor(a, Circuit::GROUND, 1e-9);
        c.isource(a, Circuit::GROUND, 1e-6);
        assert_eq!(c.elements().len(), 2);
        // Neither adds a branch unknown.
        assert_eq!(c.branch_count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive capacitance")]
    fn rejects_nonpositive_capacitance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor(a, Circuit::GROUND, 0.0);
    }

    #[test]
    fn vcvs_is_recorded_as_branch() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GROUND, 1.0);
        c.vcvs(b, Circuit::GROUND, a, Circuit::GROUND, 2.0);
        assert_eq!(c.vsource_count(), 1);
        assert_eq!(c.branch_count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive resistance")]
    fn rejects_negative_resistance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, Circuit::GROUND, -5.0);
    }

    #[test]
    #[should_panic(expected = "not created")]
    fn rejects_unknown_node() {
        let mut c = Circuit::new();
        c.resistor(0, 99, 100.0);
    }
}
