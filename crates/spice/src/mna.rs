//! Modified nodal analysis: assembling the Newton linear system.
//!
//! Unknown vector layout: `[v₁ … v_{n−1}, i_src₁ … i_src_m]` — node
//! voltages for every non-ground node followed by one branch current
//! per ideal voltage source.
//!
//! For nonlinear elements the assembly linearizes around the current
//! voltage guess, producing the Jacobian `J` and the residual `f` of the
//! KCL/branch equations; the DC solver then iterates `J Δx = −f`.

use crate::netlist::{Circuit, Element};
use pnc_linalg::Matrix;

/// Minimum conductance from every node to ground. Keeps the matrix
/// non-singular when a transistor region leaves a node weakly driven.
pub const GMIN: f64 = 1e-12;

/// Assembled Newton system at a voltage guess.
#[derive(Debug, Clone)]
pub struct NewtonSystem {
    /// Jacobian of the residual with respect to the unknowns.
    pub jacobian: Matrix,
    /// Residual vector `f(x)` (KCL sums in amperes, then source branch
    /// voltage mismatches in volts).
    pub residual: Vec<f64>,
}

/// Index of a node voltage in the unknown vector, or `None` for ground.
fn unknown_of(node: usize) -> Option<usize> {
    if node == Circuit::GROUND {
        None
    } else {
        Some(node - 1)
    }
}

/// Voltage of `node` under the guess `x` (ground is 0).
pub fn node_voltage(x: &[f64], node: usize) -> f64 {
    match unknown_of(node) {
        None => 0.0,
        Some(i) => x[i],
    }
}

/// Number of unknowns for a circuit.
pub fn unknown_count(circuit: &Circuit) -> usize {
    circuit.node_count() - 1 + circuit.branch_count()
}

/// Receives Jacobian stamps during assembly. The *sequence* of `add`
/// calls is a pure function of the circuit topology — every stamp site
/// fires unconditionally for a given element/terminal structure — so
/// the same assembly walk can record a sparsity pattern (value-free),
/// stamp a dense matrix, or write values into preallocated sparse
/// slots, and the three stay aligned by construction.
pub(crate) trait JacobianSink {
    /// Accumulates `v` at `(row, col)`.
    fn add(&mut self, row: usize, col: usize, v: f64);
}

/// Dense sink: stamps straight into a [`Matrix`].
struct DenseSink<'a>(&'a mut Matrix);

impl JacobianSink for DenseSink<'_> {
    fn add(&mut self, row: usize, col: usize, v: f64) {
        self.0[(row, col)] += v;
    }
}

/// Assembles the Jacobian and residual of the MNA equations at guess `x`.
///
/// # Panics
///
/// Panics when `x.len() != unknown_count(circuit)`.
pub fn assemble(circuit: &Circuit, x: &[f64]) -> NewtonSystem {
    let n = unknown_count(circuit);
    let mut j = Matrix::zeros(n, n);
    let mut f = vec![0.0; n];
    assemble_into(circuit, x, &mut DenseSink(&mut j), &mut f);
    NewtonSystem {
        jacobian: j,
        residual: f,
    }
}

/// Assembly walk shared by every backend: stamps the Jacobian through
/// `j` and accumulates the residual into `f` (which must be zeroed by
/// the caller).
///
/// # Panics
///
/// Panics when `x.len()` or `f.len()` differ from
/// `unknown_count(circuit)`.
pub(crate) fn assemble_into<S: JacobianSink>(circuit: &Circuit, x: &[f64], j: &mut S, f: &mut [f64]) {
    let n_nodes = circuit.node_count() - 1;
    let n = unknown_count(circuit);
    assert_eq!(x.len(), n, "assemble: guess length mismatch");
    assert_eq!(f.len(), n, "assemble: residual length mismatch");

    // GMIN from every non-ground node to ground.
    for i in 0..n_nodes {
        j.add(i, i, GMIN);
        f[i] += GMIN * x[i];
    }

    let mut src_idx = 0usize;
    for element in circuit.elements() {
        match *element {
            Element::Resistor { a, b, ohms } => {
                let g = 1.0 / ohms;
                let va = node_voltage(x, a);
                let vb = node_voltage(x, b);
                let i_ab = g * (va - vb);
                if let Some(ia) = unknown_of(a) {
                    f[ia] += i_ab;
                    j.add(ia, ia, g);
                    if let Some(ib) = unknown_of(b) {
                        j.add(ia, ib, -(g));
                    }
                }
                if let Some(ib) = unknown_of(b) {
                    f[ib] -= i_ab;
                    j.add(ib, ib, g);
                    if let Some(ia) = unknown_of(a) {
                        j.add(ib, ia, -(g));
                    }
                }
            }
            Element::Capacitor { .. } => {
                // Open circuit in DC; the transient engine replaces
                // capacitors with backward-Euler companion elements.
            }
            Element::ISource { plus, minus, amps } => {
                if let Some(ip) = unknown_of(plus) {
                    f[ip] += amps;
                }
                if let Some(im) = unknown_of(minus) {
                    f[im] -= amps;
                }
            }
            Element::Vcvs {
                plus,
                minus,
                ctrl_p,
                ctrl_n,
                gain,
            } => {
                let row = n_nodes + src_idx;
                let i_src = x[row];
                if let Some(ip) = unknown_of(plus) {
                    f[ip] += i_src;
                    j.add(ip, row, 1.0);
                    j.add(row, ip, 1.0);
                }
                if let Some(im) = unknown_of(minus) {
                    f[im] -= i_src;
                    j.add(im, row, -(1.0));
                    j.add(row, im, -(1.0));
                }
                // Branch equation: V_p − V_m − gain·(V_cp − V_cn) = 0.
                f[row] += node_voltage(x, plus)
                    - node_voltage(x, minus)
                    - gain * (node_voltage(x, ctrl_p) - node_voltage(x, ctrl_n));
                if let Some(cp) = unknown_of(ctrl_p) {
                    j.add(row, cp, -(gain));
                }
                if let Some(cn) = unknown_of(ctrl_n) {
                    j.add(row, cn, gain);
                }
                src_idx += 1;
            }
            Element::VSource { plus, minus, volts } => {
                let row = n_nodes + src_idx;
                let i_src = x[row];
                // Branch current leaves the + terminal into the circuit.
                if let Some(ip) = unknown_of(plus) {
                    f[ip] += i_src;
                    j.add(ip, row, 1.0);
                    j.add(row, ip, 1.0);
                }
                if let Some(im) = unknown_of(minus) {
                    f[im] -= i_src;
                    j.add(im, row, -(1.0));
                    j.add(row, im, -(1.0));
                }
                f[row] += node_voltage(x, plus) - node_voltage(x, minus) - volts;
                src_idx += 1;
            }
            Element::Egt {
                drain,
                gate,
                source,
                w,
                l,
                model,
            } => {
                let vg = node_voltage(x, gate);
                let vd = node_voltage(x, drain);
                let vs = node_voltage(x, source);
                let e = model.eval(vg, vd, vs, w, l);
                // Current I_D flows into the drain terminal and out of
                // the source terminal.
                if let Some(id_row) = unknown_of(drain) {
                    f[id_row] += e.id_amps;
                    if let Some(c) = unknown_of(gate) {
                        j.add(id_row, c, e.gm_siemens);
                    }
                    if let Some(c) = unknown_of(drain) {
                        j.add(id_row, c, e.gd_siemens);
                    }
                    if let Some(c) = unknown_of(source) {
                        j.add(id_row, c, e.gs_siemens);
                    }
                }
                if let Some(is_row) = unknown_of(source) {
                    f[is_row] -= e.id_amps;
                    if let Some(c) = unknown_of(gate) {
                        j.add(is_row, c, -(e.gm_siemens));
                    }
                    if let Some(c) = unknown_of(drain) {
                        j.add(is_row, c, -(e.gd_siemens));
                    }
                    if let Some(c) = unknown_of(source) {
                        j.add(is_row, c, -(e.gs_siemens));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divider_assembly_is_consistent() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vin, Circuit::GROUND, 1.0);
        c.resistor(vin, out, 1000.0);
        c.resistor(out, Circuit::GROUND, 1000.0);

        // At the true solution the residual vanishes.
        let x = vec![1.0, 0.5, -0.0005]; // v_in, v_out, i_src
        let sys = assemble(&c, &x);
        for (k, r) in sys.residual.iter().enumerate() {
            assert!(r.abs() < 1e-9, "residual[{k}] = {r}");
        }
    }

    #[test]
    fn jacobian_matches_finite_difference() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        let vdd = c.node("vdd");
        c.vsource(vin, Circuit::GROUND, 0.6);
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.resistor(vdd, out, 50_000.0);
        c.egt(out, vin, Circuit::GROUND, 1e-4, 2e-5);

        let x = vec![0.6, 0.4, 1.0, -1e-5, -2e-5];
        let sys = assemble(&c, &x);
        let h = 1e-7;
        for col in 0..x.len() {
            let mut xp = x.clone();
            xp[col] += h;
            let mut xm = x.clone();
            xm[col] -= h;
            let fp = assemble(&c, &xp).residual;
            let fm = assemble(&c, &xm).residual;
            for row in 0..x.len() {
                let num = (fp[row] - fm[row]) / (2.0 * h);
                let ana = sys.jacobian[(row, col)];
                assert!(
                    (num - ana).abs() < 1e-5 * ana.abs().max(1e-6),
                    "J[{row}][{col}]: analytic {ana} vs numeric {num}"
                );
            }
        }
    }

    #[test]
    fn unknown_count_includes_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GROUND, 1.0);
        c.vsource(b, Circuit::GROUND, 2.0);
        c.resistor(a, b, 10.0);
        assert_eq!(unknown_count(&c), 4);
    }
}
