//! Solver observatory: opt-in per-solve numerical observability.
//!
//! [`crate::stats`] answers "how much solver work happened"; this
//! module answers "what did the numerics look like while it happened".
//! When enabled (off by default — the only cost on the hot path is one
//! relaxed atomic load per solve plus a handful of thread-local
//! counter bumps), every `solve_dc_with` / `solve_dc_traced` call
//! records a [`SolveTrace`]:
//!
//! * the Newton residual trajectory (`‖f‖∞` per iteration) and the
//!   damped step sizes (`‖Δx‖∞` after damping),
//! * damping and supply-ramp fallback events (which iterations were
//!   damped, where each ramp stage began),
//! * a sparsity-pattern fingerprint — a stable FNV-1a hash of the MNA
//!   structure (element kinds + terminals + dimensions, values
//!   excluded) plus the Jacobian's nonzero count,
//! * a per-solve `cond1_estimate` of the Jacobian via the Hager/Higham
//!   1-norm estimator in [`pnc_linalg::cond`], reusing the LU factors
//!   the Newton step already computed,
//! * the captured inputs (elements, solver config, warm start) so the
//!   solve can be re-executed bit-for-bit by `pnc-cli solver replay`.
//!
//! Traces land in a seeded-deterministic reservoir ring buffer
//! (bounded memory no matter how many solves run) and, when a stream
//! is attached, as `solve_trace` JSONL lines. Aggregates — a log₁₀
//! condition-number histogram, a residual-reduction-rate histogram and
//! a max-condition high-water gauge — feed the Prometheus exposition
//! and the `HealthWatchdog` ill-conditioning probe.

use crate::dc::{SolverBackend, SolverConfig};
use crate::netlist::{Circuit, Element};
use crate::SpiceError;
use pnc_linalg::cond::cond1_estimate;
use pnc_linalg::decomp::Lu;
use pnc_linalg::Matrix;
use pnc_telemetry::json::{event_to_json, write_escaped, Json};
use pnc_telemetry::{Event, Level, StreamHistogram};
use std::cell::Cell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex};

/// Default ring-buffer capacity (traces kept in memory for
/// [`take_traces`]); the JSONL stream is unbounded.
pub const DEFAULT_RING_CAPACITY: usize = 256;

// lint: allow(L003, reason = "process-wide observatory on/off switch; one relaxed load per solve when off")
static ENABLED: AtomicBool = AtomicBool::new(false);
// lint: allow(L003, reason = "process-wide trace sequence number; read out once per run")
static SOLVE_SEQ: AtomicU64 = AtomicU64::new(0);
/// Max `cond1_estimate` seen, stored as `f64::to_bits` (bit patterns
/// of non-negative floats order like the floats themselves, so
/// `fetch_max` on the bits is a float max).
// lint: allow(L003, reason = "process-wide conditioning high-water gauge; watchdogs poll it to latch ill-conditioning")
static MAX_COND1_BITS: AtomicU64 = AtomicU64::new(0);

/// Per-solve `log₁₀(cond1_estimate)` distribution. Condition numbers
/// span 1..1e16, which would overflow the histogram's integer ticks if
/// recorded raw; decades fit comfortably at millitick resolution.
// lint: allow(L003, reason = "process-wide conditioning distribution, same lifecycle as the stats counters")
static COND1_LOG10: LazyLock<StreamHistogram> =
    LazyLock::new(|| StreamHistogram::with_ticks_per_unit(1e3));

/// Per-solve residual reduction rate in decades per iteration:
/// `(log₁₀ r_first − log₁₀ r_last) / (iterations − 1)` over the
/// recorded trajectory. Healthy damped Newton runs sit around 1–4;
/// values near zero mean the solver is grinding.
// lint: allow(L003, reason = "process-wide convergence-rate distribution, same lifecycle as the stats counters")
static REDUCTION_RATE: LazyLock<StreamHistogram> =
    LazyLock::new(|| StreamHistogram::with_ticks_per_unit(1e3));

struct Ring {
    seed: u64,
    capacity: usize,
    seen: u64,
    traces: Vec<SolveTrace>,
}

// lint: allow(L003, reason = "process-wide seeded trace reservoir; drained once per run by the orchestrator")
static RING: LazyLock<Mutex<Ring>> = LazyLock::new(|| {
    Mutex::new(Ring {
        seed: 0,
        capacity: DEFAULT_RING_CAPACITY,
        seen: 0,
        traces: Vec::new(),
    })
});

// lint: allow(L003, reason = "process-wide optional JSONL trace stream, attached once per run by the orchestrator")
static STREAM: LazyLock<Mutex<Option<BufWriter<File>>>> = LazyLock::new(|| Mutex::new(None));

thread_local! {
    /// Per-thread per-point accounting window (see [`point_window_take`]).
    // lint: allow(L003, reason = "per-thread accounting window; drained only by the sequential per-point compaction pass")
    static POINT_WINDOW: Cell<PointSolveStats> = const { Cell::new(PointSolveStats::zero()) };
}

/// SplitMix64 finalizer — the workspace's standard seed-derivation
/// mix, reused here so reservoir decisions are a pure function of
/// `(seed, arrival index)`.
fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Turns the observatory on: traces are recorded into a fresh
/// reservoir seeded with `seed` (capacity `capacity`, clamped to ≥ 1)
/// and aggregates start accumulating. Call [`reset`] first if a prior
/// window's data should not leak into this one.
pub fn enable(seed: u64, capacity: usize) {
    // lint: allow(L001, reason = "mutex poisoning only follows a recorder panic; nothing to recover")
    let mut ring = RING.lock().unwrap();
    ring.seed = seed;
    ring.capacity = capacity.max(1);
    ring.seen = 0;
    ring.traces.clear();
    drop(ring);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the observatory off (aggregates and the ring keep their
/// contents until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether solves are currently being traced.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Attaches a JSONL stream: every recorded trace is appended to
/// `path` as one `solve_trace` line. Replaces any previous stream.
///
/// # Errors
///
/// Propagates the underlying file-creation error.
pub fn stream_to(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    // lint: allow(L001, reason = "mutex poisoning only follows a recorder panic; nothing to recover")
    *STREAM.lock().unwrap() = Some(BufWriter::new(file));
    Ok(())
}

/// Flushes and detaches the JSONL stream (no-op when none is
/// attached).
pub fn close_stream() {
    // lint: allow(L001, reason = "mutex poisoning only follows a recorder panic; nothing to recover")
    if let Some(mut w) = STREAM.lock().unwrap().take() {
        let _ = w.flush();
    }
}

/// Drains the reservoir, returning the sampled traces sorted by
/// solve index. The reservoir's arrival counter restarts.
pub fn take_traces() -> Vec<SolveTrace> {
    // lint: allow(L001, reason = "mutex poisoning only follows a recorder panic; nothing to recover")
    let mut ring = RING.lock().unwrap();
    ring.seen = 0;
    let mut traces = std::mem::take(&mut ring.traces);
    drop(ring);
    traces.sort_by_key(|t| t.solve_index);
    traces
}

/// Total traces recorded (not just the reservoir survivors) since the
/// last [`enable`]/[`take_traces`].
pub fn traces_seen() -> u64 {
    // lint: allow(L001, reason = "mutex poisoning only follows a recorder panic; nothing to recover")
    RING.lock().unwrap().seen
}

/// High-water mark of `cond1_estimate` across all traced solves since
/// the last [`reset`] — the value the `HealthWatchdog`
/// ill-conditioning probe latches on.
pub fn max_cond1_estimate() -> f64 {
    f64::from_bits(MAX_COND1_BITS.load(Ordering::Relaxed))
}

/// Live handle onto the per-solve `log₁₀(cond1_estimate)` histogram
/// (clones share storage), for merging into a metrics registry.
pub fn cond1_log10_histogram() -> StreamHistogram {
    COND1_LOG10.clone()
}

/// Live handle onto the per-solve residual-reduction-rate histogram
/// (decades per iteration; clones share storage).
pub fn reduction_rate_histogram() -> StreamHistogram {
    REDUCTION_RATE.clone()
}

/// Turns the observatory off and clears every aggregate: ring,
/// histograms, conditioning gauge, sequence counter, and stream.
pub fn reset() {
    disable();
    close_stream();
    // lint: allow(L001, reason = "mutex poisoning only follows a recorder panic; nothing to recover")
    let mut ring = RING.lock().unwrap();
    ring.seen = 0;
    ring.traces.clear();
    drop(ring);
    COND1_LOG10.clear();
    REDUCTION_RATE.clear();
    MAX_COND1_BITS.store(0, Ordering::Relaxed);
    SOLVE_SEQ.store(0, Ordering::Relaxed);
}

/// Stable structural fingerprint of a circuit's MNA pattern: FNV-1a
/// over element kinds and terminal indices plus the node and branch
/// counts. Element *values* (ohms, volts, W/L) are excluded, so two
/// Sobol points of the same activation circuit share a fingerprint —
/// exactly the "one sparsity pattern across the sweep" claim the
/// hardness atlas quantifies.
pub fn pattern_fingerprint(circuit: &Circuit) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(circuit.node_count() as u64);
    eat(circuit.branch_count() as u64);
    for e in circuit.elements() {
        match e {
            Element::Resistor { a, b, .. } => {
                eat(0);
                eat(*a as u64);
                eat(*b as u64);
            }
            Element::VSource { plus, minus, .. } => {
                eat(1);
                eat(*plus as u64);
                eat(*minus as u64);
            }
            Element::Vcvs {
                plus,
                minus,
                ctrl_p,
                ctrl_n,
                ..
            } => {
                eat(2);
                eat(*plus as u64);
                eat(*minus as u64);
                eat(*ctrl_p as u64);
                eat(*ctrl_n as u64);
            }
            Element::Capacitor { a, b, .. } => {
                eat(3);
                eat(*a as u64);
                eat(*b as u64);
            }
            Element::ISource { plus, minus, .. } => {
                eat(4);
                eat(*plus as u64);
                eat(*minus as u64);
            }
            Element::Egt {
                drain,
                gate,
                source,
                ..
            } => {
                eat(5);
                eat(*drain as u64);
                eat(*gate as u64);
                eat(*source as u64);
            }
        }
    }
    h
}

/// Per-thread solver accounting over a window — the hardness atlas's
/// per-Sobol-point ledger. [`point_window_reset`] / [`point_window_take`]
/// bracket one characterization point inside a `par_map` closure; the
/// executor runs each closure on exactly one thread, so the window
/// sees precisely that point's solves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointSolveStats {
    /// DC solves in the window (including failures).
    pub solves: u64,
    /// Newton iterations spent across those solves.
    pub newton_iterations: u64,
    /// Solves that engaged the supply-ramp fallback.
    pub ramp_fallbacks: u64,
    /// Solves that returned an error.
    pub failures: u64,
    /// Largest `cond1_estimate` in the window. Populated only while
    /// the observatory is [`enable`]d (conditioning is estimated on
    /// traced solves only); 0.0 otherwise.
    pub max_cond1_estimate: f64, // lint: dimensionless
    /// Sparsity-pattern fingerprint of the solved circuits (0 until
    /// the first solve lands).
    pub fingerprint: u64,
    /// Whether more than one distinct fingerprint was seen.
    pub multi_fingerprint: bool,
}

impl PointSolveStats {
    const fn zero() -> Self {
        PointSolveStats {
            solves: 0,
            newton_iterations: 0,
            ramp_fallbacks: 0,
            failures: 0,
            max_cond1_estimate: 0.0,
            fingerprint: 0,
            multi_fingerprint: false,
        }
    }
}

impl Default for PointSolveStats {
    fn default() -> Self {
        Self::zero()
    }
}

/// Zeroes the calling thread's accounting window.
pub fn point_window_reset() {
    POINT_WINDOW.with(|w| w.set(PointSolveStats::zero()));
}

/// Reads and zeroes the calling thread's accounting window.
pub fn point_window_take() -> PointSolveStats {
    POINT_WINDOW.with(|w| w.replace(PointSolveStats::zero()))
}

/// Called by every solve (traced or not): a few thread-local counter
/// bumps plus one cheap structural hash.
pub(crate) fn record_point_solve(
    circuit: &Circuit,
    newton_iterations: u64,
    ramped: bool,
    failed: bool,
) {
    let fp = pattern_fingerprint(circuit);
    POINT_WINDOW.with(|w| {
        let mut s = w.get();
        s.solves += 1;
        s.newton_iterations += newton_iterations;
        s.ramp_fallbacks += u64::from(ramped);
        s.failures += u64::from(failed);
        if s.fingerprint == 0 {
            s.fingerprint = fp;
        } else if s.fingerprint != fp {
            s.multi_fingerprint = true;
        }
        w.set(s);
    });
}

/// Per-iteration capture state handed down into the Newton loop when
/// the observatory is enabled (or a replay forces capture).
#[derive(Debug, Default)]
pub(crate) struct AttemptCapture {
    residuals_amps: Vec<f64>,
    steps_volts: Vec<f64>,
    damped_steps: u64,
    ramp_marks: Vec<usize>,
    dim: usize,
    nnz: usize,
    cond1_estimate: f64,
    backend: SolverBackend,
}

impl AttemptCapture {
    pub(crate) fn new() -> Self {
        AttemptCapture::default()
    }

    /// Records the backend the solve resolved to (never `Auto`).
    pub(crate) fn set_backend(&mut self, backend: SolverBackend) {
        self.backend = backend;
    }

    /// Records one Newton iteration: the pre-step residual norm, the
    /// damped step size, and — from the factors the step already paid
    /// for — a refreshed conditioning estimate (last iteration wins,
    /// i.e. the estimate reported is the one at the accepted solution).
    pub(crate) fn record_iteration(
        &mut self,
        jacobian: &Matrix,
        lu: &Lu,
        max_resid: f64,
        step_volts: f64,
        damped: bool,
    ) {
        if self.dim == 0 {
            self.dim = jacobian.rows();
            let mut nnz = 0usize;
            for i in 0..jacobian.rows() {
                for j in 0..jacobian.cols() {
                    // lint: allow(L002, reason = "sparsity counting: only a bit-exact zero is a structural zero")
                    if jacobian[(i, j)] != 0.0 {
                        nnz += 1;
                    }
                }
            }
            self.nnz = nnz;
        }
        if let Ok(k) = cond1_estimate(jacobian, lu) {
            self.cond1_estimate = k;
        }
        self.residuals_amps.push(max_resid);
        self.steps_volts.push(step_volts);
        self.damped_steps += u64::from(damped);
    }

    /// [`Self::record_iteration`] for the sparse backend: dimension and
    /// nonzero count come from the circuit's sparsity pattern, and no
    /// conditioning estimate is refreshed (the Hager/Higham probe needs
    /// dense factors; 0.0 keeps its existing "never estimated" meaning,
    /// so downstream aggregates skip it rather than mis-read it).
    pub(crate) fn record_iteration_sparse(
        &mut self,
        dim: usize,
        nnz: usize,
        max_resid: f64,
        step_volts: f64,
        damped: bool,
    ) {
        if self.dim == 0 {
            self.dim = dim;
            self.nnz = nnz;
        }
        self.residuals_amps.push(max_resid);
        self.steps_volts.push(step_volts);
        self.damped_steps += u64::from(damped);
    }

    /// Marks the start of a supply-ramp stage at the current position
    /// in the residual trajectory.
    pub(crate) fn mark_ramp_stage(&mut self) {
        self.ramp_marks.push(self.residuals_amps.len());
    }

    /// Finalizes the capture into a [`SolveTrace`], snapshotting the
    /// inputs (elements, config, warm start) needed to replay it.
    pub(crate) fn into_trace(
        self,
        circuit: &Circuit,
        cfg: &SolverConfig,
        warm_start: Option<&[f64]>,
        result: &Result<(crate::dc::OperatingPoint, bool), SpiceError>,
    ) -> SolveTrace {
        let (converged, ramped, iterations) = match result {
            Ok((op, ramped)) => (true, *ramped, op.iterations() as u64),
            Err(SpiceError::NonConvergence { iterations, .. }) => (false, true, *iterations as u64),
            Err(_) => (false, false, 0),
        };
        SolveTrace {
            solve_index: 0,
            fingerprint: pattern_fingerprint(circuit),
            dim: self.dim,
            nnz: self.nnz,
            iterations,
            converged,
            ramped,
            damped_steps: self.damped_steps,
            cond1_estimate: self.cond1_estimate,
            residuals_amps: self.residuals_amps,
            steps_volts: self.steps_volts,
            ramp_marks: self.ramp_marks,
            node_count: circuit.node_count(),
            config: SolverConfig {
                backend: self.backend,
                ..*cfg
            },
            warm_start: warm_start.map(<[f64]>::to_vec),
            elements: circuit.elements().to_vec(),
        }
    }
}

/// One fully captured DC solve: trajectory, numerics, and the inputs
/// needed to re-execute it.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveTrace {
    /// Process-wide solve sequence number (assigned at record time;
    /// 0 for traces produced by direct capture, e.g. replays).
    pub solve_index: u64,
    /// Sparsity-pattern fingerprint (see [`pattern_fingerprint`]).
    pub fingerprint: u64,
    /// MNA system dimension (unknown count).
    pub dim: usize,
    /// Structural nonzeros in the Jacobian at the first iterate.
    pub nnz: usize,
    /// Total Newton iterations (attempts + ramp stages).
    pub iterations: u64,
    /// Whether the solve converged.
    pub converged: bool,
    /// Whether the supply-ramp fallback was engaged.
    pub ramped: bool,
    /// Iterations where step damping engaged (`scale < 1`).
    pub damped_steps: u64,
    /// Hager/Higham `κ₁` lower-bound estimate of the Jacobian at the
    /// last recorded iterate (0.0 if never estimated).
    pub cond1_estimate: f64, // lint: dimensionless
    /// `‖f‖∞` (amperes) at the start of each Newton iteration.
    pub residuals_amps: Vec<f64>,
    /// `‖Δx‖∞` (volts, post-damping) applied at each iteration.
    pub steps_volts: Vec<f64>,
    /// Indices into `residuals_amps` where each ramp stage began.
    pub ramp_marks: Vec<usize>,
    /// Node count (including ground) of the captured circuit.
    pub node_count: usize,
    /// Solver configuration the solve ran with.
    pub config: SolverConfig,
    /// Warm-start state, if one was supplied.
    pub warm_start: Option<Vec<f64>>,
    /// Captured circuit elements (replay rebuilds the netlist from
    /// these).
    pub elements: Vec<Element>,
}

fn push_f64_array(out: &mut String, key: &str, values: &[f64]) {
    out.push(',');
    write_escaped(out, key);
    out.push_str(":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if v.is_finite() {
            out.push_str(&format!("{v:?}"));
        } else {
            out.push_str("null");
        }
    }
    out.push(']');
}

fn element_to_json(e: &Element) -> String {
    let mut o = String::new();
    let field = |o: &mut String, k: &str, v: f64| {
        o.push(',');
        write_escaped(o, k);
        o.push(':');
        o.push_str(&format!("{v:?}"));
    };
    match e {
        Element::Resistor { a, b, ohms } => {
            o.push_str(&format!("{{\"kind\":\"resistor\",\"a\":{a},\"b\":{b}"));
            field(&mut o, "ohms", *ohms);
        }
        Element::VSource { plus, minus, volts } => {
            o.push_str(&format!(
                "{{\"kind\":\"vsource\",\"plus\":{plus},\"minus\":{minus}"
            ));
            field(&mut o, "volts", *volts);
        }
        Element::Vcvs {
            plus,
            minus,
            ctrl_p,
            ctrl_n,
            gain,
        } => {
            o.push_str(&format!(
                "{{\"kind\":\"vcvs\",\"plus\":{plus},\"minus\":{minus},\"ctrl_p\":{ctrl_p},\"ctrl_n\":{ctrl_n}"
            ));
            field(&mut o, "gain", *gain);
        }
        Element::Capacitor { a, b, farads } => {
            o.push_str(&format!("{{\"kind\":\"capacitor\",\"a\":{a},\"b\":{b}"));
            field(&mut o, "farads", *farads);
        }
        Element::ISource { plus, minus, amps } => {
            o.push_str(&format!(
                "{{\"kind\":\"isource\",\"plus\":{plus},\"minus\":{minus}"
            ));
            field(&mut o, "amps", *amps);
        }
        Element::Egt {
            drain,
            gate,
            source,
            w,
            l,
            model,
        } => {
            o.push_str(&format!(
                "{{\"kind\":\"egt\",\"drain\":{drain},\"gate\":{gate},\"source\":{source}"
            ));
            field(&mut o, "w", *w);
            field(&mut o, "l", *l);
            field(&mut o, "vth_volts", model.vth_volts);
            field(&mut o, "slope", model.slope);
            field(&mut o, "phi_t_volts", model.phi_t_volts);
            field(&mut o, "kp", model.kp);
        }
    }
    o.push('}');
    o
}

fn element_from_json(j: &Json) -> Option<Element> {
    let f = |k: &str| j.get(k).and_then(Json::as_f64);
    let n = |k: &str| f(k).map(|v| v as usize);
    match j.get("kind").and_then(Json::as_str)? {
        "resistor" => Some(Element::Resistor {
            a: n("a")?,
            b: n("b")?,
            ohms: f("ohms")?,
        }),
        "vsource" => Some(Element::VSource {
            plus: n("plus")?,
            minus: n("minus")?,
            volts: f("volts")?,
        }),
        "vcvs" => Some(Element::Vcvs {
            plus: n("plus")?,
            minus: n("minus")?,
            ctrl_p: n("ctrl_p")?,
            ctrl_n: n("ctrl_n")?,
            gain: f("gain")?,
        }),
        "capacitor" => Some(Element::Capacitor {
            a: n("a")?,
            b: n("b")?,
            farads: f("farads")?,
        }),
        "isource" => Some(Element::ISource {
            plus: n("plus")?,
            minus: n("minus")?,
            amps: f("amps")?,
        }),
        "egt" => Some(Element::Egt {
            drain: n("drain")?,
            gate: n("gate")?,
            source: n("source")?,
            w: f("w")?,
            l: f("l")?,
            model: crate::EgtModel {
                vth_volts: f("vth_volts")?,
                slope: f("slope")?,
                phi_t_volts: f("phi_t_volts")?,
                kp: f("kp")?,
            },
        }),
        _ => None,
    }
}

impl SolveTrace {
    /// Residual reduction rate over the recorded trajectory, in
    /// decades per iteration. Returns 0.0 for trajectories too short
    /// (or too degenerate) to measure.
    pub fn reduction_rate(&self) -> f64 {
        let (Some(&first), Some(&last)) = (self.residuals_amps.first(), self.residuals_amps.last())
        else {
            return 0.0;
        };
        if self.residuals_amps.len() < 2 || first <= 0.0 || last <= 0.0 {
            return 0.0;
        }
        (first.log10() - last.log10()) / (self.residuals_amps.len() - 1) as f64
    }

    /// Serializes the trace as one `solve_trace` JSONL line.
    pub fn to_jsonl(&self) -> String {
        // Scalars go through the Event serializer so the line shares
        // its shape (and schema-lint coverage) with every other event;
        // arrays are spliced on before the closing brace.
        let header = Event::new("solve_trace", Level::Debug)
            .with_u64("solve_index", self.solve_index)
            .with_str("fingerprint", format!("{:016x}", self.fingerprint))
            .with_u64("dim", self.dim as u64)
            .with_u64("nnz", self.nnz as u64)
            .with_u64("iterations", self.iterations)
            .with_bool("converged", self.converged)
            .with_bool("ramped", self.ramped)
            .with_u64("damped_steps", self.damped_steps)
            .with_f64("cond1_estimate", self.cond1_estimate)
            .with_u64("node_count", self.node_count as u64)
            .with_u64("max_iterations", self.config.max_iterations as u64)
            .with_f64("residual_tol_amps", self.config.residual_tol_amps)
            .with_f64("step_tol_volts", self.config.step_tol_volts)
            .with_f64("max_step_volts", self.config.max_step_volts)
            .with_u64("ramp_stages", self.config.ramp_stages as u64)
            .with_str("backend", self.config.backend.name());
        let mut out = event_to_json(&header, None);
        out.pop(); // strip '}' to splice the array fields
        push_f64_array(&mut out, "residuals_amps", &self.residuals_amps);
        push_f64_array(&mut out, "steps_volts", &self.steps_volts);
        out.push_str(",\"ramp_marks\":[");
        for (i, m) in self.ramp_marks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&m.to_string());
        }
        out.push(']');
        match &self.warm_start {
            Some(ws) => push_f64_array(&mut out, "warm_start", ws),
            None => out.push_str(",\"warm_start\":null"),
        }
        out.push_str(",\"elements\":[");
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&element_to_json(e));
        }
        out.push_str("]}");
        out
    }

    /// Parses a trace from a JSON value produced by [`SolveTrace::to_jsonl`].
    /// Returns `None` for lines that are not `solve_trace` events or
    /// that are missing fields.
    pub fn from_json(j: &Json) -> Option<SolveTrace> {
        if j.get("event").and_then(Json::as_str) != Some("solve_trace") {
            return None;
        }
        let f = |k: &str| j.get(k).and_then(Json::as_f64);
        let u = |k: &str| f(k).map(|v| v as u64);
        let b = |k: &str| j.get(k).and_then(Json::as_bool);
        let f64_arr = |k: &str| -> Option<Vec<f64>> {
            match j.get(k)? {
                Json::Arr(items) => items.iter().map(Json::as_f64).collect(),
                _ => None,
            }
        };
        let elements = match j.get("elements")? {
            Json::Arr(items) => items
                .iter()
                .map(element_from_json)
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        let warm_start = match j.get("warm_start")? {
            Json::Null => None,
            Json::Arr(items) => Some(items.iter().map(Json::as_f64).collect::<Option<Vec<_>>>()?),
            _ => return None,
        };
        Some(SolveTrace {
            solve_index: u("solve_index")?,
            fingerprint: u64::from_str_radix(j.get("fingerprint")?.as_str()?, 16).ok()?,
            dim: u("dim")? as usize,
            nnz: u("nnz")? as usize,
            iterations: u("iterations")?,
            converged: b("converged")?,
            ramped: b("ramped")?,
            damped_steps: u("damped_steps")?,
            cond1_estimate: f("cond1_estimate")?,
            residuals_amps: f64_arr("residuals_amps")?,
            steps_volts: f64_arr("steps_volts")?,
            ramp_marks: f64_arr("ramp_marks")?.iter().map(|&m| m as usize).collect(),
            node_count: u("node_count")? as usize,
            config: SolverConfig {
                max_iterations: u("max_iterations")? as usize,
                residual_tol_amps: f("residual_tol_amps")?,
                step_tol_volts: f("step_tol_volts")?,
                max_step_volts: f("max_step_volts")?,
                ramp_stages: u("ramp_stages")? as usize,
                // Traces predating the backend field all ran dense.
                backend: j
                    .get("backend")
                    .and_then(Json::as_str)
                    .and_then(SolverBackend::parse)
                    .unwrap_or(SolverBackend::Dense),
            },
            warm_start,
            elements,
        })
    }

    /// Rebuilds the captured netlist. Node names are synthetic
    /// (`n1`, `n2`, …) — MNA only cares about indices, so the rebuilt
    /// circuit solves identically to the recorded one.
    pub fn rebuild_circuit(&self) -> Circuit {
        let mut c = Circuit::new();
        for i in 1..self.node_count {
            c.node(&format!("n{i}"));
        }
        for e in &self.elements {
            match e {
                Element::Resistor { a, b, ohms } => {
                    c.resistor(*a, *b, *ohms);
                }
                Element::VSource { plus, minus, volts } => {
                    c.vsource(*plus, *minus, *volts);
                }
                Element::Vcvs {
                    plus,
                    minus,
                    ctrl_p,
                    ctrl_n,
                    gain,
                } => {
                    c.vcvs(*plus, *minus, *ctrl_p, *ctrl_n, *gain);
                }
                Element::Capacitor { a, b, farads } => {
                    c.capacitor(*a, *b, *farads);
                }
                Element::ISource { plus, minus, amps } => {
                    c.isource(*plus, *minus, *amps);
                }
                Element::Egt {
                    drain,
                    gate,
                    source,
                    w,
                    l,
                    model,
                } => {
                    c.egt_with_model(*drain, *gate, *source, *w, *l, *model);
                }
            }
        }
        c
    }
}

/// Records a finished trace: assigns its sequence number, feeds the
/// aggregates, appends to the JSONL stream (if attached), and offers
/// it to the seeded reservoir.
pub(crate) fn record_trace(mut trace: SolveTrace) {
    trace.solve_index = SOLVE_SEQ.fetch_add(1, Ordering::Relaxed);
    if trace.cond1_estimate > 0.0 {
        COND1_LOG10.record(trace.cond1_estimate.log10().max(0.0));
        MAX_COND1_BITS.fetch_max(trace.cond1_estimate.to_bits(), Ordering::Relaxed);
        POINT_WINDOW.with(|w| {
            let mut s = w.get();
            s.max_cond1_estimate = s.max_cond1_estimate.max(trace.cond1_estimate);
            w.set(s);
        });
    }
    let rate = trace.reduction_rate();
    if rate > 0.0 {
        REDUCTION_RATE.record(rate);
    }
    // lint: allow(L001, reason = "mutex poisoning only follows a recorder panic; nothing to recover")
    if let Some(w) = STREAM.lock().unwrap().as_mut() {
        let mut line = trace.to_jsonl();
        line.push('\n');
        let _ = w.write_all(line.as_bytes());
    }
    // lint: allow(L001, reason = "mutex poisoning only follows a recorder panic; nothing to recover")
    let mut ring = RING.lock().unwrap();
    ring.seen += 1;
    if ring.traces.len() < ring.capacity {
        ring.traces.push(trace);
    } else {
        // Reservoir sampling: trace k replaces a random survivor with
        // probability capacity/k, keyed off the seeded mix so the
        // decision is a pure function of (seed, arrival index).
        let slot = splitmix(ring.seed, ring.seen) % ring.seen;
        if (slot as usize) < ring.capacity {
            let idx = slot as usize;
            ring.traces[idx] = trace;
        }
    }
}

/// `Some(capture)` when the observatory is enabled, `None` otherwise —
/// the solver's single cheap check per solve.
pub(crate) fn capture_if_enabled() -> Option<AttemptCapture> {
    is_enabled().then(AttemptCapture::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("in");
        let b = c.node("out");
        c.vsource(a, Circuit::GROUND, 1.0);
        c.resistor(a, b, 2_000.0);
        c.resistor(b, Circuit::GROUND, 1_000.0);
        c
    }

    #[test]
    fn fingerprint_ignores_values_but_not_structure() {
        let c = divider();
        let mut same_structure = divider();
        same_structure.set_vsource(0, 0.25).unwrap();
        assert_eq!(
            pattern_fingerprint(&c),
            pattern_fingerprint(&same_structure)
        );

        let mut extra = divider();
        extra.resistor(1, Circuit::GROUND, 500.0);
        assert_ne!(pattern_fingerprint(&c), pattern_fingerprint(&extra));
    }

    #[test]
    fn trace_jsonl_round_trips() {
        let c = divider();
        let trace = SolveTrace {
            solve_index: 7,
            fingerprint: pattern_fingerprint(&c),
            dim: 3,
            nnz: 7,
            iterations: 2,
            converged: true,
            ramped: false,
            damped_steps: 1,
            cond1_estimate: 4.5e3,
            residuals_amps: vec![1e-3, 1e-9],
            steps_volts: vec![0.4, 1e-11],
            ramp_marks: vec![],
            node_count: c.node_count(),
            config: SolverConfig::default(),
            warm_start: Some(vec![0.9, 0.3, -1e-4]),
            elements: c.elements().to_vec(),
        };
        let line = trace.to_jsonl();
        let parsed = pnc_telemetry::json::parse(&line).expect("line parses");
        let back = SolveTrace::from_json(&parsed).expect("trace round-trips");
        assert_eq!(back, trace);
    }

    #[test]
    fn rebuilt_circuit_matches_the_original_elements() {
        let c = divider();
        let trace = SolveTrace {
            solve_index: 0,
            fingerprint: pattern_fingerprint(&c),
            dim: 3,
            nnz: 7,
            iterations: 1,
            converged: true,
            ramped: false,
            damped_steps: 0,
            cond1_estimate: 0.0,
            residuals_amps: vec![],
            steps_volts: vec![],
            ramp_marks: vec![],
            node_count: c.node_count(),
            config: SolverConfig::default(),
            warm_start: None,
            elements: c.elements().to_vec(),
        };
        let rebuilt = trace.rebuild_circuit();
        assert_eq!(rebuilt.elements(), c.elements());
        assert_eq!(rebuilt.node_count(), c.node_count());
        assert_eq!(pattern_fingerprint(&rebuilt), trace.fingerprint);
    }

    #[test]
    fn reduction_rate_measures_decades_per_iteration() {
        let mut t = SolveTrace {
            solve_index: 0,
            fingerprint: 0,
            dim: 0,
            nnz: 0,
            iterations: 3,
            converged: true,
            ramped: false,
            damped_steps: 0,
            cond1_estimate: 0.0,
            residuals_amps: vec![1e-3, 1e-6, 1e-9],
            steps_volts: vec![0.1, 0.01, 0.001],
            ramp_marks: vec![],
            node_count: 0,
            config: SolverConfig::default(),
            warm_start: None,
            elements: vec![],
        };
        assert!((t.reduction_rate() - 3.0).abs() < 1e-12);
        t.residuals_amps = vec![1e-3];
        assert_eq!(t.reduction_rate(), 0.0);
    }

    #[test]
    fn captured_replay_reproduces_the_trajectory_exactly() {
        // A nonlinear circuit exercises damping and a multi-iteration
        // trajectory; re-solving the rebuilt netlist with the recorded
        // config must walk the identical residual path bit for bit.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 1.0);
        c.vsource(vin, Circuit::GROUND, 0.6);
        c.resistor(vdd, out, 50_000.0);
        c.egt(out, vin, Circuit::GROUND, 1e-4, 2e-5);

        let cfg = SolverConfig::default();
        let (res, trace) = crate::dc::solve_dc_captured(&c, &cfg, None);
        let op = res.unwrap();
        assert!(trace.converged);
        assert_eq!(trace.iterations as usize, op.iterations());
        assert_eq!(trace.residuals_amps.len(), op.iterations());
        assert!(trace.cond1_estimate > 1.0);
        assert!(trace.dim > 0 && trace.nnz > 0);

        let rebuilt = trace.rebuild_circuit();
        let (res2, replayed) = crate::dc::solve_dc_captured(&rebuilt, &trace.config, None);
        assert!(res2.is_ok());
        assert_eq!(replayed.residuals_amps, trace.residuals_amps);
        assert_eq!(replayed.steps_volts, trace.steps_volts);
        assert_eq!(
            replayed.cond1_estimate.to_bits(),
            trace.cond1_estimate.to_bits()
        );
    }

    #[test]
    fn point_window_accumulates_and_takes() {
        point_window_reset();
        let c = divider();
        record_point_solve(&c, 5, false, false);
        record_point_solve(&c, 9, true, true);
        let s = point_window_take();
        assert_eq!(s.solves, 2);
        assert_eq!(s.newton_iterations, 14);
        assert_eq!(s.ramp_fallbacks, 1);
        assert_eq!(s.failures, 1);
        assert_eq!(s.fingerprint, pattern_fingerprint(&c));
        assert!(!s.multi_fingerprint);
        // The window is zero after take.
        assert_eq!(point_window_take(), PointSolveStats::zero());
    }
}
