//! Device counting: hard indicator counts for reporting, soft sigmoid
//! relaxations for gradients (paper Sec. III-B).
//!
//! * `N^AF` — one activation circuit per *output column* of a crossbar
//!   that has at least one active conductance (Eq. 2):
//!   `N^AF = Σ_n max_j 1{|θ_jn| > 0}`.
//! * `N^N` — one negation circuit per *input row* that feeds at least
//!   one negative weight (the inverted line is shared across the row):
//!   `N^N = Σ_j max_n 1{θ_jn < 0}`, counted over the true input rows
//!   only (the bias line connects to V_SS instead of an inverter when
//!   its weight is negative).
//!
//! The paper's relaxation replaces the indicator with a sigmoid. We
//! generalize it to `σ(k · (|θ| − τ))`: the paper's bare `σ(|θ|)` is
//! recovered at `k = 1, τ = 0`; nonzero `τ` centres the transition on
//! the pruning threshold and `k` controls its sharpness, which avoids
//! the `σ(0) = ½` floor contributing half a phantom device per column.

use pnc_autodiff::{Tape, Var};
use pnc_linalg::Matrix;

/// Soft/hard counting configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountConfig {
    /// Conductance magnitude below which a device counts as absent.
    // lint: dimensionless
    pub threshold: f64,
    /// Sigmoid steepness of the soft indicator.
    // lint: dimensionless
    pub steepness: f64,
}

impl Default for CountConfig {
    fn default() -> Self {
        CountConfig {
            threshold: 0.01,
            steepness: 400.0,
        }
    }
}

impl CountConfig {
    /// The paper's literal relaxation `σ(|θ|)` (Sec. III-B b).
    pub fn paper_literal() -> Self {
        CountConfig {
            threshold: 0.0,
            steepness: 1.0,
        }
    }
}

/// Differentiable activation-circuit count for one crossbar:
/// `Σ_n max_j σ(k(|θ_jn| − τ))`, a `1 × 1` node.
pub fn soft_af_count(tape: &mut Tape, theta: Var, cfg: &CountConfig) -> Var {
    let a = tape.abs(theta);
    let shifted = tape.add_scalar(a, -cfg.threshold);
    let scaled = tape.mul_scalar(shifted, cfg.steepness);
    let s = tape.sigmoid(scaled);
    let per_output = tape.col_max(s);
    tape.sum_all(per_output)
}

/// Differentiable negation-circuit count for one crossbar:
/// `Σ_j max_n σ(k(relu(−θ_jn) − τ))` over the first `inputs` rows.
pub fn soft_neg_count(tape: &mut Tape, theta: Var, inputs: usize, cfg: &CountConfig) -> Var {
    let (rows, cols) = tape.shape(theta);
    assert!(inputs <= rows, "soft_neg_count: inputs exceeds theta rows");
    let neg = tape.neg(theta);
    let mag = tape.relu(neg);
    let shifted = tape.add_scalar(mag, -cfg.threshold);
    let scaled = tape.mul_scalar(shifted, cfg.steepness);
    let s = tape.sigmoid(scaled);
    // Zero out the bias/ground rows before the row-max. Also push the
    // masked rows' sigmoid (≈σ(−kτ) ≥ 0 at θ=0) firmly to 0.
    let mut mask = Matrix::zeros(rows, cols);
    for j in 0..inputs {
        for n in 0..cols {
            mask[(j, n)] = 1.0;
        }
    }
    let masked = tape.mul_const(s, &mask);
    let per_input = tape.row_max(masked);
    tape.sum_all(per_input)
}

/// Hard activation-circuit count (indicator semantics, Eq. 2).
pub fn hard_af_count(theta_eff: &Matrix, cfg: &CountConfig) -> usize {
    (0..theta_eff.cols())
        .filter(|&n| (0..theta_eff.rows()).any(|j| theta_eff[(j, n)].abs() > cfg.threshold))
        .count()
}

/// Hard negation-circuit count over the first `inputs` rows.
pub fn hard_neg_count(theta_eff: &Matrix, inputs: usize, cfg: &CountConfig) -> usize {
    (0..inputs.min(theta_eff.rows()))
        .filter(|&j| (0..theta_eff.cols()).any(|n| theta_eff[(j, n)] < -cfg.threshold))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theta_example() -> Matrix {
        // 3 inputs + bias + gnd rows, 3 outputs.
        Matrix::from_rows(&[
            &[0.5, 0.0, 0.0],  // input 0: positive only
            &[-0.4, 0.0, 0.0], // input 1: negative weight → 1 neg circuit
            &[0.0, 0.0, 0.0],  // input 2: unused
            &[0.2, 0.0, 0.0],  // bias
            &[0.0, 0.0, 0.0],  // gnd
        ])
    }

    #[test]
    fn hard_af_counts_active_outputs() {
        let cfg = CountConfig::default();
        assert_eq!(hard_af_count(&theta_example(), &cfg), 1);
        let all = Matrix::filled(5, 3, 0.3);
        assert_eq!(hard_af_count(&all, &cfg), 3);
        assert_eq!(hard_af_count(&Matrix::zeros(5, 3), &cfg), 0);
    }

    #[test]
    fn hard_neg_counts_rows_with_negative_weights() {
        let cfg = CountConfig::default();
        assert_eq!(hard_neg_count(&theta_example(), 3, &cfg), 1);
        // Bias-row negativity is not counted.
        let mut t = Matrix::zeros(5, 2);
        t[(3, 0)] = -0.5;
        assert_eq!(hard_neg_count(&t, 3, &cfg), 0);
    }

    #[test]
    fn soft_counts_approach_hard_counts_when_sharp() {
        let theta = theta_example();
        let cfg = CountConfig {
            threshold: 0.01,
            steepness: 500.0,
        };
        let mut tape = Tape::new();
        let tv = tape.parameter(theta.clone());
        let saf = soft_af_count(&mut tape, tv, &cfg);
        let snn = soft_neg_count(&mut tape, tv, 3, &cfg);
        assert!(
            (tape.scalar(saf) - 1.0).abs() < 0.02,
            "{}",
            tape.scalar(saf)
        );
        assert!(
            (tape.scalar(snn) - 1.0).abs() < 0.02,
            "{}",
            tape.scalar(snn)
        );
    }

    #[test]
    fn paper_literal_config_matches_sigma_theta() {
        // k = 1, τ = 0: soft AF count is Σ_n max_j σ(|θ|).
        let theta = Matrix::from_rows(&[&[0.5], &[0.0], &[0.0]]);
        let cfg = CountConfig::paper_literal();
        let mut tape = Tape::new();
        let tv = tape.parameter(theta);
        let c = soft_af_count(&mut tape, tv, &cfg);
        let sigma = 1.0 / (1.0 + (-0.5f64).exp());
        assert!((tape.scalar(c) - sigma).abs() < 1e-12);
    }

    #[test]
    fn soft_count_gradient_flows_into_theta() {
        let theta = Matrix::from_rows(&[&[0.02, 0.3], &[0.01, -0.05], &[0.0, 0.0]]);
        let cfg = CountConfig {
            threshold: 0.05,
            steepness: 20.0,
        };
        let rep = pnc_autodiff::gradcheck::check_gradient(&theta, 1e-7, move |tape, p| {
            let saf = soft_af_count(tape, p, &cfg);
            let snn = soft_neg_count(tape, p, 2, &cfg);
            tape.add(saf, snn)
        });
        assert!(rep.passes(1e-5), "{rep:?}");
    }

    #[test]
    fn pruning_reduces_soft_count() {
        let cfg = CountConfig::default();
        let dense = Matrix::filled(4, 3, 0.5);
        let sparse = Matrix::from_fn(4, 3, |_, n| if n == 0 { 0.5 } else { 0.0 });
        let count_of = |m: &Matrix| {
            let mut tape = Tape::new();
            let tv = tape.parameter(m.clone());
            let c = soft_af_count(&mut tape, tv, &cfg);
            tape.scalar(c)
        };
        assert!(count_of(&dense) > count_of(&sparse) + 1.5);
    }
}
