//! # pnc-core
//!
//! The printed-neuromorphic-circuit (pNC) model — the substrate of the
//! paper's contribution. A pNC is a stack of printed neurons
//! (Sec. II-B): resistor **crossbars** computing normalized weighted
//! sums via Kirchhoff's law, **negation circuits** realizing negative
//! weights, and learnable printed **activation circuits**.
//!
//! The crate provides both halves of what power-constrained training
//! needs:
//!
//! * a **differentiable forward model** ([`network::PrintedNetwork`])
//!   whose parameters are the surrogate conductances `Θ` of every
//!   crossbar and the bounded activation design vectors `q`;
//! * a **differentiable power model** (Sec. III-B): the analytical
//!   crossbar power `𝒫^C`, surrogate activation power `N^AF · 𝒫^AF(q)`
//!   and negation power `N^N · 𝒫^N`, with the *soft* device counts
//!   `σ(k(|θ| − τ))` used in the backward pass and the *hard* indicator
//!   counts used for reporting — exactly the paper's split between
//!   optimization and final power estimation.
//!
//! Key conventions:
//!
//! * Surrogate conductances are unitless in `[−1, 1]`; `|θ|` maps to a
//!   physical conductance `|θ| · G_MAX` ([`crossbar::G_MAX`]).
//! * Signals are bipolar voltages in `[−1, 1]` (see `pnc-spice`).
//! * The sign of `θ` selects whether the corresponding resistor is fed
//!   by the input or its negation — `relu(θ)` and `relu(−θ)` split the
//!   conductance matrix without any indicator bookkeeping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod count;
pub mod crossbar;
pub mod error;
pub mod export;
pub mod network;
pub mod power;

pub use activation::LearnableActivation;
pub use count::CountConfig;
pub use error::CoreError;
pub use export::{export_network, ExportedNetwork};
pub use network::{NetworkConfig, PrintedNetwork};
pub use power::{LayerPower, PowerBreakdown, PowerNode};
