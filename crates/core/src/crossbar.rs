//! The resistor crossbar: normalized weighted sums and analytical power.
//!
//! A crossbar column computes (paper Sec. II-B1a)
//!
//! ```text
//! V_z^n = Σ_j (g_jn / G_n) · V_eff^j + g_bn / G_n,
//! G_n = Σ_j g_jn + g_bn + g_dn
//! ```
//!
//! where `V_eff^j` is the input voltage or its negation depending on the
//! sign of the surrogate conductance `θ_jn`. With the input matrix
//! augmented by a ones column (bias, `g_b` to V_DD = 1) and a zeros
//! column (`g_d` to ground) this becomes two matrix products:
//!
//! ```text
//! V_z = (X⁺ · relu(Θ) + neg(X⁺) · relu(−Θ)) / rowsum(|Θ|)
//! ```
//!
//! The analytical crossbar power (paper Sec. II-B1a) expands the square
//! `(V_eff − V_z)² ⊙ |Θ|` into three matrix products, so the whole
//! computation stays on the autodiff tape.

use crate::count::CountConfig;
use pnc_autodiff::{Tape, Var};
use pnc_linalg::Matrix;
use pnc_surrogate::NegationModel;

/// Physical conductance represented by `|θ| = 1`, in siemens. Printed
/// resistors down to 10 kΩ are comfortably inkjet-printable.
pub const G_MAX: f64 = 1.0e-4;

/// Guard added to crossbar denominators: represents the always-present
/// `g_d` leak path and keeps `V_z` finite when a column prunes to zero.
pub const DENOM_EPS: f64 = 1e-4;

/// Result of a crossbar forward pass on the tape.
#[derive(Debug, Clone, Copy)]
pub struct CrossbarOutput {
    /// Output voltages `V_z` (`batch × outputs`).
    pub vz: Var,
    /// Augmented input (`batch × (inputs + 2)`), reused by the power
    /// computation.
    pub x_aug: Var,
    /// Negated augmented input.
    pub x_neg: Var,
    /// `relu(Θ)` — conductances fed by the plain input.
    pub g_pos: Var,
    /// `relu(−Θ)` — conductances fed by the negated input.
    pub g_neg: Var,
    /// Row-summed `|Θ|` (`1 × outputs`), the normalization conductance.
    pub denom: Var,
}

/// Computes the crossbar forward pass.
///
/// `x` is a `batch × inputs` node of input voltages, `theta` the
/// `(inputs + 2) × outputs` surrogate conductance parameter, `neg` the
/// negation-circuit surrogate applied to the augmented inputs, and
/// `mask` an optional pruning mask multiplied into `|Θ|` (1 = keep).
pub fn forward(
    tape: &mut Tape,
    x: Var,
    theta: Var,
    neg: &NegationModel,
    mask: Option<&Matrix>,
) -> CrossbarOutput {
    let (_, inputs) = tape.shape(x);
    let (rows, _) = tape.shape(theta);
    assert_eq!(
        rows,
        inputs + 2,
        "crossbar: theta must have inputs + 2 rows (bias and ground)"
    );

    let theta = match mask {
        Some(m) => tape.mul_const(theta, m),
        None => theta,
    };
    let x_aug = tape.append_bias_cols(x);
    let x_neg = neg.eval_on_tape(tape, x_aug);

    let g_pos = tape.relu(theta);
    let ntheta = tape.neg(theta);
    let g_neg = tape.relu(ntheta);

    let num_pos = tape.matmul(x_aug, g_pos);
    let num_neg = tape.matmul(x_neg, g_neg);
    let numerator = tape.add(num_pos, num_neg);

    let abs_theta = tape.abs(theta);
    let denom_raw = tape.sum_rows(abs_theta);
    let denom = tape.add_scalar(denom_raw, DENOM_EPS);
    let vz = tape.div_row(numerator, denom);

    CrossbarOutput {
        vz,
        x_aug,
        x_neg,
        g_pos,
        g_neg,
        denom,
    }
}

/// Batch-mean crossbar power `𝒫^C` in watts as a `1 × 1` node.
///
/// Expands `Σ_{j,n} (V_eff − V_z)² |θ| · G_MAX` into
/// `Σ (X⁺² · g⁺ + X⁻² · g⁻) − 2 Σ V_z ⊙ Num + Σ V_z² ⊙ D`, averaged
/// over the batch.
pub fn power(tape: &mut Tape, out: &CrossbarOutput) -> Var {
    let batch = tape.shape(out.x_aug).0 as f64;

    // Term 1: Σ_j V_eff² |θ| — input-side energies.
    let xa_sq = tape.square(out.x_aug);
    let xn_sq = tape.square(out.x_neg);
    let t1_pos = tape.matmul(xa_sq, out.g_pos);
    let t1_neg = tape.matmul(xn_sq, out.g_neg);
    let t1 = tape.add(t1_pos, t1_neg); // batch × outputs

    // Term 2: −2 V_z ⊙ Num where Num = V_z ⊙ D (recovered from vz·denom).
    let num = tape.mul_row(out.vz, out.denom);
    let t2 = tape.mul(out.vz, num); // V_z ⊙ Num

    // Term 3: V_z² ⊙ D.
    let vz_sq = tape.square(out.vz);
    let t3 = tape.mul_row(vz_sq, out.denom);

    let minus2_t2 = tape.mul_scalar(t2, -2.0);
    let sum = tape.add(t1, minus2_t2);
    let sum = tape.add(sum, t3);
    let total = tape.sum_all(sum);
    // Mean over the batch, scaled to physical conductance.
    tape.mul_scalar(total, G_MAX / batch)
}

/// Plain (tape-free) reference implementation of the batch-mean crossbar
/// power, used by reporting and tests. `theta_eff` must already have any
/// pruning mask applied.
pub fn power_reference(x: &Matrix, theta_eff: &Matrix, neg: &NegationModel) -> f64 {
    power_reference_classes(x, theta_eff, neg).total_watts()
}

/// Batch-mean crossbar power split by device class, in watts.
///
/// The classes partition every dissipating element of a crossbar
/// column: resistors on the data-input rows, the bias resistor (row
/// `inputs`, tied to V_DD), the ground-row resistor (row `inputs + 1`,
/// tied to 0 V), and the always-present `g_d` leak path modelled by
/// [`DENOM_EPS`]. The class sums reconstruct [`power_reference`]
/// exactly (same loop, four accumulators).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CrossbarClassPower {
    /// Resistors on the data-input rows (`j < inputs`).
    pub input_watts: f64,
    /// The bias-row resistor (`j = inputs`, driven by V_DD = 1).
    pub bias_watts: f64,
    /// The ground-row resistor (`j = inputs + 1`, driven by 0 V).
    pub ground_watts: f64,
    /// The `DENOM_EPS` leak path: `V_z² · ε · G_MAX` per column.
    pub leak_watts: f64,
}

impl CrossbarClassPower {
    /// Total crossbar power: the sum of the four device classes.
    pub fn total_watts(&self) -> f64 {
        self.input_watts + self.bias_watts + self.ground_watts + self.leak_watts
    }
}

/// Computes [`power_reference`] with per-device-class attribution.
pub fn power_reference_classes(
    x: &Matrix,
    theta_eff: &Matrix,
    neg: &NegationModel,
) -> CrossbarClassPower {
    let batch = x.rows();
    let inputs = x.cols();
    let outputs = theta_eff.cols();
    assert_eq!(theta_eff.rows(), inputs + 2);

    let mut classes = CrossbarClassPower::default();
    for b in 0..batch {
        // Augmented inputs.
        let mut xa = vec![0.0; inputs + 2];
        xa[..inputs].copy_from_slice(x.row_slice(b));
        xa[inputs] = 1.0;
        xa[inputs + 1] = 0.0;
        let xn: Vec<f64> = xa.iter().map(|&v| neg.eval_scalar(v)).collect();

        for n in 0..outputs {
            // Output voltage of this column.
            let mut num = 0.0;
            let mut den = DENOM_EPS;
            for j in 0..inputs + 2 {
                let th = theta_eff[(j, n)];
                let veff = if th >= 0.0 { xa[j] } else { xn[j] };
                num += veff * th.abs();
                den += th.abs();
            }
            let vz = num / den;
            for j in 0..inputs + 2 {
                let th = theta_eff[(j, n)];
                // lint: allow(L002, reason = "pruned-entry fast path: only a bit-exact zero marks a removed resistor")
                if th == 0.0 {
                    continue;
                }
                let veff = if th >= 0.0 { xa[j] } else { xn[j] };
                let dv = veff - vz;
                let p = dv * dv * th.abs() * G_MAX;
                if j < inputs {
                    classes.input_watts += p;
                } else if j == inputs {
                    classes.bias_watts += p;
                } else {
                    classes.ground_watts += p;
                }
            }
            // The DENOM_EPS leak path dissipates V_z² · ε · G_MAX.
            classes.leak_watts += vz * vz * DENOM_EPS * G_MAX;
        }
    }
    let scale = 1.0 / batch as f64;
    classes.input_watts *= scale;
    classes.bias_watts *= scale;
    classes.ground_watts *= scale;
    classes.leak_watts *= scale;
    classes
}

/// Hard count of printed crossbar resistors: entries with
/// `|θ| > threshold` (the bias and ground resistors ride along in Θ).
pub fn resistor_count(theta_eff: &Matrix, cfg: &CountConfig) -> usize {
    theta_eff
        .as_slice()
        .iter()
        .filter(|&&t| t.abs() > cfg.threshold)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_linalg::rng as lrng;

    fn ideal_neg() -> NegationModel {
        NegationModel::ideal(1e-5)
    }

    #[test]
    fn positive_weights_form_weighted_average() {
        // With all-positive conductances and no bias, V_z is a convex
        // combination of inputs — check against a hand computation.
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[0.5, -0.5]]));
        // theta: rows = in1, in2, bias, gnd; single output.
        let theta = tape.parameter(Matrix::from_rows(&[&[0.3], &[0.1], &[0.0], &[0.0]]));
        let out = forward(&mut tape, x, theta, &ideal_neg(), None);
        let vz = tape.value(out.vz)[(0, 0)];
        let expect = (0.5 * 0.3 + (-0.5) * 0.1) / (0.4 + DENOM_EPS);
        assert!((vz - expect).abs() < 1e-12, "vz {vz} vs {expect}");
    }

    #[test]
    fn bias_conductance_pulls_toward_one() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[0.0]]));
        let theta = tape.parameter(Matrix::from_rows(&[&[0.0], &[0.5], &[0.0]]));
        let out = forward(&mut tape, x, theta, &ideal_neg(), None);
        let vz = tape.value(out.vz)[(0, 0)];
        // Only the bias conducts: V_z ≈ 1 · 0.5/(0.5 + ε).
        assert!((vz - 0.5 / (0.5 + DENOM_EPS)).abs() < 1e-12);
    }

    #[test]
    fn negative_theta_uses_negated_input() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[0.4]]));
        let theta = tape.parameter(Matrix::from_rows(&[&[-0.5], &[0.0], &[0.0]]));
        let neg = ideal_neg();
        let out = forward(&mut tape, x, theta, &neg, None);
        let vz = tape.value(out.vz)[(0, 0)];
        let expect = neg.eval_scalar(0.4) * 0.5 / (0.5 + DENOM_EPS);
        assert!((vz - expect).abs() < 1e-12, "vz {vz} vs {expect}");
        assert!(vz < 0.0, "negative weight must flip the sign");
    }

    #[test]
    fn grounded_column_outputs_near_zero() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[0.9]]));
        let theta = tape.parameter(Matrix::zeros(3, 1));
        let out = forward(&mut tape, x, theta, &ideal_neg(), None);
        assert_eq!(tape.value(out.vz)[(0, 0)], 0.0);
    }

    #[test]
    fn mask_prunes_conductances() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0]]));
        let theta = tape.parameter(Matrix::from_rows(&[&[0.5], &[0.5], &[0.0]]));
        let mask = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0]]);
        let out = forward(&mut tape, x, theta, &ideal_neg(), Some(&mask));
        let vz = tape.value(out.vz)[(0, 0)];
        // Bias row masked off: only the input conductance remains.
        assert!((vz - 0.5 / (0.5 + DENOM_EPS)).abs() < 1e-12);
    }

    #[test]
    fn tape_power_matches_reference() {
        let mut rng = lrng::seeded(21);
        let x = lrng::uniform_matrix(&mut rng, 6, 4, -0.8, 0.8);
        let theta_m = lrng::normal_matrix(&mut rng, 6, 3, 0.0, 0.4);
        let neg = ideal_neg();

        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let tv = tape.parameter(theta_m.clone());
        let out = forward(&mut tape, xv, tv, &neg, None);
        let p = power(&mut tape, &out);
        let tape_power = tape.scalar(p);
        let ref_power = power_reference(&x, &theta_m, &neg);
        assert!(
            (tape_power - ref_power).abs() < 1e-12 * ref_power.max(1e-12),
            "tape {tape_power:e} vs reference {ref_power:e}"
        );
    }

    #[test]
    fn power_is_nonnegative_and_scales_with_conductance() {
        let mut rng = lrng::seeded(22);
        let x = lrng::uniform_matrix(&mut rng, 8, 3, -0.8, 0.8);
        let neg = ideal_neg();
        let small = lrng::normal_matrix(&mut rng, 5, 2, 0.0, 0.1);
        let large = small.scale(5.0);
        let ps = power_reference(&x, &small, &neg);
        let pl = power_reference(&x, &large, &neg);
        assert!(ps >= 0.0);
        assert!(pl > ps, "more conductance must burn more power");
    }

    #[test]
    fn power_gradient_checks() {
        let mut rng = lrng::seeded(23);
        let x = lrng::uniform_matrix(&mut rng, 4, 3, -0.5, 0.5);
        let theta0 = lrng::normal_matrix(&mut rng, 5, 2, 0.1, 0.3);
        let neg = ideal_neg();
        let rep = pnc_autodiff::gradcheck::check_gradient(&theta0, 1e-6, move |tape, p| {
            let xv = tape.constant(x.clone());
            let out = forward(tape, xv, p, &neg, None);
            let pw = power(tape, &out);
            // Scale to O(1) for conditioning (power is ~1e-5 W).
            tape.mul_scalar(pw, 1e5)
        });
        assert!(rep.passes(1e-4), "{rep:?}");
    }

    #[test]
    fn forward_gradient_checks() {
        let mut rng = lrng::seeded(24);
        let x = lrng::uniform_matrix(&mut rng, 3, 2, -0.5, 0.5);
        let theta0 = lrng::normal_matrix(&mut rng, 4, 2, 0.05, 0.3);
        let neg = ideal_neg();
        let rep = pnc_autodiff::gradcheck::check_gradient(&theta0, 1e-6, move |tape, p| {
            let xv = tape.constant(x.clone());
            let out = forward(tape, xv, p, &neg, None);
            let sq = tape.square(out.vz);
            tape.sum_all(sq)
        });
        assert!(rep.passes(1e-5), "{rep:?}");
    }

    #[test]
    fn resistor_count_thresholds() {
        let theta = Matrix::from_rows(&[&[0.5, 0.005], &[-0.3, 0.0], &[0.0, 0.2]]);
        let cfg = CountConfig::default();
        assert_eq!(resistor_count(&theta, &cfg), 3);
    }
}
