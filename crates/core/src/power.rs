//! Power breakdown reporting and per-device attribution.
//!
//! [`PowerBreakdown`] keeps the flat totals the trainers constrain
//! against, and additionally records a per-layer decomposition so the
//! total can be attributed down a stable tree:
//!
//! ```text
//! network → layer<i> → {crossbar, activation, negation} → device class
//! ```
//!
//! Every interior node of the [`PowerNode`] tree is computed as the sum
//! of its children, and [`PowerNode::check_sum`] re-verifies the
//! invariant (children sum to parent within 1e-9 relative) so renderers
//! and diff tools can trust any persisted tree.

use crate::crossbar::CrossbarClassPower;

/// Relative tolerance of the children-sum-to-parent invariant.
pub const SUM_REL_TOL: f64 = 1e-9;

/// One layer's share of the hard power accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LayerPower {
    /// Crossbar dissipation split by device class.
    pub crossbar: CrossbarClassPower,
    /// Activation circuits: `N^AF · 𝒫^AF(q)`.
    pub activation_watts: f64,
    /// Negation circuits: `N^N · 𝒫^N`.
    pub negation_watts: f64,
    /// Activation circuits in this layer.
    pub af_circuits: usize,
    /// Negation circuits in this layer.
    pub neg_circuits: usize,
    /// Active crossbar resistors in this layer.
    pub resistors: usize,
}

impl LayerPower {
    /// Total power of this layer: crossbar + activation + negation.
    pub fn total_watts(&self) -> f64 {
        self.crossbar.total_watts() + self.activation_watts + self.negation_watts
    }
}

/// Hard (indicator-count) power breakdown of a printed network at a
/// given input distribution, in watts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Crossbar resistor dissipation `𝒫^C`.
    pub crossbar_watts: f64,
    /// Activation circuits: `Σ N^AF · 𝒫^AF(q)`.
    pub activation_watts: f64,
    /// Negation circuits: `Σ N^N · 𝒫^N`.
    pub negation_watts: f64,
    /// Total activation circuits across layers.
    pub af_circuits: usize,
    /// Total negation circuits across layers.
    pub neg_circuits: usize,
    /// Total active crossbar resistors across layers.
    pub resistors: usize,
    /// Per-layer decomposition; sums reconstruct the flat fields.
    pub layers: Vec<LayerPower>,
}

impl PowerBreakdown {
    /// Total power in watts.
    pub fn total(&self) -> f64 {
        self.crossbar_watts + self.activation_watts + self.negation_watts
    }

    /// Total power in milliwatts (the paper's reporting unit).
    pub fn total_mw(&self) -> f64 {
        self.total() * 1e3
    }

    /// Energy dissipated while the circuit operates for `seconds`
    /// seconds at this operating point, in joules.
    pub fn energy_joules(&self, seconds: f64) -> f64 {
        self.total() * seconds
    }

    /// Builds the attribution tree
    /// `network → layer<i> → stage → device class`.
    ///
    /// Labels are stable across runs (they depend only on layer count),
    /// so persisted trees can be diffed leaf-by-leaf. Every interior
    /// node's value is the sum of its children by construction.
    pub fn attribution(&self) -> PowerNode {
        let mut layers = Vec::with_capacity(self.layers.len());
        for (i, l) in self.layers.iter().enumerate() {
            let crossbar = PowerNode::parent(
                "crossbar",
                vec![
                    PowerNode::leaf("input-resistors", l.crossbar.input_watts),
                    PowerNode::leaf("bias-resistors", l.crossbar.bias_watts),
                    PowerNode::leaf("ground-resistors", l.crossbar.ground_watts),
                    PowerNode::leaf("eps-leak", l.crossbar.leak_watts),
                ],
            );
            let activation = PowerNode::parent(
                "activation",
                vec![PowerNode::leaf("af-circuits", l.activation_watts)],
            );
            let negation = PowerNode::parent(
                "negation",
                vec![PowerNode::leaf("neg-circuits", l.negation_watts)],
            );
            layers.push(PowerNode::parent(
                format!("layer{i}"),
                vec![crossbar, activation, negation],
            ));
        }
        PowerNode::parent("network", layers)
    }
}

/// A node of the power-attribution tree. Interior nodes carry the sum
/// of their children; leaves carry a single device-class contribution.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerNode {
    /// Stable label (`network`, `layer0`, `crossbar`, `eps-leak`, …).
    pub label: String,
    /// Power attributed to this subtree, in watts.
    pub watts: f64,
    /// Child nodes; empty for device-class leaves.
    pub children: Vec<PowerNode>,
}

impl PowerNode {
    /// A leaf node.
    pub fn leaf(label: impl Into<String>, watts: f64) -> PowerNode {
        PowerNode {
            label: label.into(),
            watts,
            children: Vec::new(),
        }
    }

    /// An interior node whose value is the exact sum of its children.
    pub fn parent(label: impl Into<String>, children: Vec<PowerNode>) -> PowerNode {
        let watts = children.iter().map(|c| c.watts).sum();
        PowerNode {
            label: label.into(),
            watts,
            children,
        }
    }

    /// Verifies the sum invariant on every interior node: children sum
    /// to the parent within [`SUM_REL_TOL`] relative (absolute floor
    /// 1e-18 W so all-zero trees pass).
    pub fn check_sum(&self) -> Result<(), String> {
        if !self.children.is_empty() {
            let sum: f64 = self.children.iter().map(|c| c.watts).sum();
            let tol = SUM_REL_TOL * self.watts.abs().max(1e-18);
            if (sum - self.watts).abs() > tol {
                return Err(format!(
                    "node '{}': children sum to {:e} W but parent holds {:e} W",
                    self.label, sum, self.watts
                ));
            }
            for c in &self.children {
                c.check_sum()?;
            }
        }
        Ok(())
    }

    /// Flattens the tree to `(path, watts)` leaves, paths joined with
    /// `/` (e.g. `network/layer0/crossbar/eps-leak`). Depth-first, so
    /// the order is deterministic and matches the render.
    pub fn leaves(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        self.collect_leaves("", &mut out);
        out
    }

    fn collect_leaves(&self, prefix: &str, out: &mut Vec<(String, f64)>) {
        let path = if prefix.is_empty() {
            self.label.clone()
        } else {
            format!("{prefix}/{}", self.label)
        };
        if self.children.is_empty() {
            out.push((path, self.watts));
        } else {
            for c in &self.children {
                c.collect_leaves(&path, out);
            }
        }
    }

    /// Flame-style indented text report. Each line shows the label, the
    /// subtree power in mW, and its share of the root. Deterministic:
    /// depends only on the tree contents.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let root_watts = self.watts;
        self.render_line(0, root_watts, &mut out);
        out
    }

    fn render_line(&self, depth: usize, root_watts: f64, out: &mut String) {
        let indent = "  ".repeat(depth);
        let share = if root_watts > 0.0 {
            100.0 * self.watts / root_watts
        } else {
            0.0
        };
        let label = format!("{indent}{}", self.label);
        out.push_str(&format!(
            "{label:<34} {:>12.6} mW {share:>6.1} %\n",
            self.watts * 1e3
        ));
        for c in &self.children {
            c.render_line(depth + 1, root_watts, out);
        }
    }

    /// Renders the tree as a JSON object
    /// `{"label": …, "watts": …, "children": […]}`. Numbers use Rust's
    /// shortest round-trippable scientific form, which is valid JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"label\":\"");
        // Labels are generated from a fixed vocabulary, but escape the
        // two JSON-significant characters anyway.
        for ch in self.label.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                _ => out.push(ch),
            }
        }
        out.push_str("\",\"watts\":");
        out.push_str(&format_watts_json(self.watts));
        out.push_str(",\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.write_json(out);
        }
        out.push_str("]}");
    }
}

/// Formats a watts value as a JSON number that round-trips through
/// `str::parse::<f64>` bit-exactly (non-finite values never occur in a
/// validated breakdown; they are clamped to 0 defensively).
fn format_watts_json(v: f64) -> String {
    // lint: allow(L002, reason = "exact-zero check picks the `0` spelling; any nonzero goes through {:e}")
    if !v.is_finite() || v == 0.0 {
        return "0".to_string();
    }
    // `{:e}` yields e.g. `1.985e-4` — shortest round-trippable form,
    // valid per the JSON number grammar.
    format!("{v:e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_breakdown() -> PowerBreakdown {
        let layer0 = LayerPower {
            crossbar: CrossbarClassPower {
                input_watts: 6e-5,
                bias_watts: 2e-5,
                ground_watts: 1.5e-5,
                leak_watts: 5e-6,
            },
            activation_watts: 1.2e-4,
            negation_watts: 3e-5,
            af_circuits: 4,
            neg_circuits: 2,
            resistors: 12,
        };
        let layer1 = LayerPower {
            crossbar: CrossbarClassPower {
                input_watts: 4e-5,
                bias_watts: 1e-5,
                ground_watts: 8e-6,
                leak_watts: 2e-6,
            },
            activation_watts: 8e-5,
            negation_watts: 2e-5,
            af_circuits: 2,
            neg_circuits: 1,
            resistors: 8,
        };
        PowerBreakdown {
            crossbar_watts: layer0.crossbar.total_watts() + layer1.crossbar.total_watts(),
            activation_watts: layer0.activation_watts + layer1.activation_watts,
            negation_watts: layer0.negation_watts + layer1.negation_watts,
            af_circuits: 6,
            neg_circuits: 3,
            resistors: 20,
            layers: vec![layer0, layer1],
        }
    }

    #[test]
    fn totals_add_up() {
        let b = PowerBreakdown {
            crossbar_watts: 1e-4,
            activation_watts: 2e-4,
            negation_watts: 5e-5,
            af_circuits: 6,
            neg_circuits: 3,
            resistors: 20,
            layers: Vec::new(),
        };
        assert!((b.total() - 3.5e-4).abs() < 1e-18);
        assert!((b.total_mw() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn default_is_zero() {
        let b = PowerBreakdown::default();
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.af_circuits, 0);
        assert!(b.layers.is_empty());
    }

    #[test]
    fn energy_is_power_times_time() {
        let b = PowerBreakdown {
            crossbar_watts: 1e-4,
            ..PowerBreakdown::default()
        };
        assert!((b.energy_joules(10.0) - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn attribution_tree_satisfies_sum_invariant() {
        let b = sample_breakdown();
        let tree = b.attribution();
        tree.check_sum().unwrap();
        assert!((tree.watts - b.total()).abs() <= SUM_REL_TOL * b.total());
    }

    #[test]
    fn attribution_labels_are_stable() {
        let tree = sample_breakdown().attribution();
        let paths: Vec<String> = tree.leaves().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths[0], "network/layer0/crossbar/input-resistors");
        assert_eq!(paths[3], "network/layer0/crossbar/eps-leak");
        assert_eq!(paths[4], "network/layer0/activation/af-circuits");
        assert_eq!(paths[5], "network/layer0/negation/neg-circuits");
        assert_eq!(paths[11], "network/layer1/negation/neg-circuits");
        assert_eq!(paths.len(), 12);
    }

    #[test]
    fn check_sum_rejects_tampered_parent() {
        let mut tree = sample_breakdown().attribution();
        tree.children[0].watts *= 1.5;
        assert!(tree.children[0].check_sum().is_err());
    }

    #[test]
    fn json_round_trips_watts_exactly() {
        let tree = sample_breakdown().attribution();
        let json = tree.to_json();
        // Spot-parse a leaf value back out of the rendered JSON.
        let needle = "\"label\":\"eps-leak\",\"watts\":";
        let at = json.find(needle).unwrap() + needle.len();
        let rest = &json[at..];
        let end = rest.find(',').unwrap();
        let parsed: f64 = rest[..end].parse().unwrap();
        assert_eq!(parsed, tree.leaves()[3].1);
    }

    #[test]
    fn render_text_is_deterministic_and_flame_shaped() {
        let tree = sample_breakdown().attribution();
        let a = tree.render_text();
        let b = tree.render_text();
        assert_eq!(a, b);
        assert!(a.starts_with("network"));
        assert!(a.contains("  layer0"));
        assert!(a.contains("    crossbar"));
        assert!(a.contains("      eps-leak"));
        assert_eq!(a.lines().count(), 21);
    }
}
