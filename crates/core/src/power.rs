//! Power breakdown reporting.

/// Hard (indicator-count) power breakdown of a printed network at a
/// given input distribution, in watts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Crossbar resistor dissipation `𝒫^C`.
    pub crossbar_watts: f64,
    /// Activation circuits: `Σ N^AF · 𝒫^AF(q)`.
    pub activation_watts: f64,
    /// Negation circuits: `Σ N^N · 𝒫^N`.
    pub negation_watts: f64,
    /// Total activation circuits across layers.
    pub af_circuits: usize,
    /// Total negation circuits across layers.
    pub neg_circuits: usize,
    /// Total active crossbar resistors across layers.
    pub resistors: usize,
}

impl PowerBreakdown {
    /// Total power in watts.
    pub fn total(&self) -> f64 {
        self.crossbar_watts + self.activation_watts + self.negation_watts
    }

    /// Total power in milliwatts (the paper's reporting unit).
    pub fn total_mw(&self) -> f64 {
        self.total() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let b = PowerBreakdown {
            crossbar_watts: 1e-4,
            activation_watts: 2e-4,
            negation_watts: 5e-5,
            af_circuits: 6,
            neg_circuits: 3,
            resistors: 20,
        };
        assert!((b.total() - 3.5e-4).abs() < 1e-18);
        assert!((b.total_mw() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn default_is_zero() {
        let b = PowerBreakdown::default();
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.af_circuits, 0);
    }
}
