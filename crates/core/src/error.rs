//! Error type for circuit-model construction.

use std::fmt;

/// Errors produced while building or evaluating a printed network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A layer topology was inconsistent (e.g. zero widths).
    InvalidTopology {
        /// Explanation of the problem.
        message: String,
    },
    /// Input data did not match the network's input width.
    InputWidthMismatch {
        /// Expected feature count.
        expected: usize,
        /// Received feature count.
        got: usize,
    },
    /// Surrogate models were missing for a required activation kind.
    MissingSurrogate {
        /// Name of the activation kind.
        kind: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidTopology { message } => {
                write!(f, "invalid network topology: {message}")
            }
            CoreError::InputWidthMismatch { expected, got } => {
                write!(f, "input width mismatch: expected {expected}, got {got}")
            }
            CoreError::MissingSurrogate { kind } => {
                write!(f, "no surrogate models loaded for {kind}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::InputWidthMismatch {
            expected: 4,
            got: 7,
        };
        assert!(e.to_string().contains("expected 4"));
    }
}
