//! Learnable printed activation functions.
//!
//! The paper's key modeling idea is that activation circuits are
//! *learnable hardware*: the design vector `q^AF = [R, W, L]` is trained
//! jointly with the crossbar conductances, changing both the AF's shape
//! (through the transfer surrogate) and its power (through the power
//! surrogate).
//!
//! [`LearnableActivation`] bundles the two surrogates for one activation
//! kind and owns the *bounded parameterization*: the raw trainable
//! parameter is an unconstrained vector `ρ`, mapped into the feasible
//! design space `ℚ^AF` through a log-space sigmoid
//!
//! ```text
//! q_i = exp( ln lo_i + σ(ρ_i) · (ln hi_i − ln lo_i) )
//! ```
//!
//! so every gradient step keeps `q` printable by construction — no
//! projection needed.

use pnc_autodiff::{Tape, Var};
use pnc_linalg::Matrix;
use pnc_spice::AfKind;
use pnc_surrogate::{
    fit_negation, fit_transfer_with, NegationModel, PowerSurrogate, PowerSurrogateConfig,
    SurrogateError, TransferModel,
};
use pnc_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::Rng;

/// Fidelity settings for fitting the surrogate bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateFidelity {
    /// Power-surrogate settings.
    pub power: PowerSurrogateConfig,
    /// Transfer-surrogate sample count.
    pub transfer_samples: usize,
    /// Grid points per transfer sweep.
    pub transfer_grid: usize,
}

impl Default for SurrogateFidelity {
    fn default() -> Self {
        SurrogateFidelity {
            power: PowerSurrogateConfig::default(),
            transfer_samples: 96,
            transfer_grid: 17,
        }
    }
}

impl SurrogateFidelity {
    /// Fast preset for unit tests.
    pub fn smoke() -> Self {
        SurrogateFidelity {
            power: PowerSurrogateConfig::smoke(),
            transfer_samples: 48,
            transfer_grid: 11,
        }
    }

    /// The paper's full fidelity (10,000 Sobol samples, 15-layer MLP).
    pub fn paper() -> Self {
        SurrogateFidelity {
            power: PowerSurrogateConfig::paper(),
            transfer_samples: 256,
            transfer_grid: 21,
        }
    }
}

/// A learnable activation: transfer + power surrogates + bounded
/// design-space parameterization.
#[derive(Debug, Clone)]
pub struct LearnableActivation {
    kind: AfKind,
    transfer: TransferModel,
    power: PowerSurrogate,
    log_lo: Vec<f64>,
    log_span: Vec<f64>,
}

impl LearnableActivation {
    /// Fits the surrogate pair for `kind` at the given fidelity.
    ///
    /// # Errors
    ///
    /// Propagates surrogate fitting failures.
    pub fn fit(kind: AfKind, fidelity: &SurrogateFidelity) -> Result<Self, SurrogateError> {
        Self::fit_with(kind, fidelity, &Telemetry::disabled())
    }

    /// Like [`LearnableActivation::fit`] but streams characterization
    /// and surrogate-training telemetry (Sobol progress, MLP loss
    /// curves, fit summaries) to a sink.
    ///
    /// # Errors
    ///
    /// Propagates surrogate fitting failures.
    pub fn fit_with(
        kind: AfKind,
        fidelity: &SurrogateFidelity,
        tel: &Telemetry,
    ) -> Result<Self, SurrogateError> {
        let span = tel.span("activation_fit");
        let transfer =
            fit_transfer_with(kind, fidelity.transfer_samples, fidelity.transfer_grid, tel)?;
        let power = PowerSurrogate::fit_with(kind, &fidelity.power, tel)?;
        drop(span);
        Ok(Self::from_parts(kind, transfer, power))
    }

    /// Builds from already-fitted surrogates.
    ///
    /// # Panics
    ///
    /// Panics when the surrogates belong to a different kind.
    pub fn from_parts(kind: AfKind, transfer: TransferModel, power: PowerSurrogate) -> Self {
        assert_eq!(transfer.kind(), kind, "transfer surrogate kind mismatch");
        assert_eq!(power.kind(), kind, "power surrogate kind mismatch");
        let bounds = kind.bounds();
        LearnableActivation {
            kind,
            transfer,
            power,
            log_lo: bounds.iter().map(|&(lo, _)| lo.ln()).collect(),
            log_span: bounds.iter().map(|&(lo, hi)| hi.ln() - lo.ln()).collect(),
        }
    }

    /// The activation kind.
    pub fn kind(&self) -> AfKind {
        self.kind
    }

    /// The underlying transfer surrogate.
    pub fn transfer(&self) -> &TransferModel {
        &self.transfer
    }

    /// The underlying power surrogate.
    pub fn power_surrogate(&self) -> &PowerSurrogate {
        &self.power
    }

    /// Dimensionality of the design vector.
    pub fn design_dim(&self) -> usize {
        self.kind.dim()
    }

    /// Random initial `ρ` near the centre of the design space.
    pub fn initial_rho(&self, rng: &mut StdRng) -> Matrix {
        Matrix::from_fn(1, self.design_dim(), |_, _| rng.gen_range(-0.5..0.5))
    }

    /// Maps unconstrained `ρ` to the physical design vector `q`.
    ///
    /// # Panics
    ///
    /// Panics when `rho` is not `1 × design_dim`.
    pub fn q_from_rho(&self, rho: &Matrix) -> Vec<f64> {
        assert_eq!(rho.shape(), (1, self.design_dim()), "rho shape mismatch");
        rho.as_slice()
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let s = 1.0 / (1.0 + (-r).exp());
                (self.log_lo[i] + s * self.log_span[i]).exp()
            })
            .collect()
    }

    /// Maps `ρ` to `q` on the tape (differentiably).
    pub fn q_on_tape(&self, tape: &mut Tape, rho: Var) -> Var {
        assert_eq!(
            tape.shape(rho),
            (1, self.design_dim()),
            "q_on_tape: rho must be 1 × {}",
            self.design_dim()
        );
        let s = tape.sigmoid(rho);
        let span = tape.constant(Matrix::from_vec(
            1,
            self.log_span.len(),
            self.log_span.clone(),
        ));
        let lo = tape.constant(Matrix::from_vec(1, self.log_lo.len(), self.log_lo.clone()));
        let scaled = tape.mul_row(s, span);
        let logq = tape.add_row(scaled, lo);
        tape.exp(logq)
    }

    /// Applies the activation to pre-activation voltages `v` with the
    /// design given by `rho`; both participate in gradients.
    pub fn apply_on_tape(&self, tape: &mut Tape, v: Var, rho: Var) -> Var {
        let q = self.q_on_tape(tape, rho);
        self.transfer.eval_on_tape(tape, v, q)
    }

    /// Surrogate power of one activation circuit at the design `rho`,
    /// in watts (`1 × 1` node).
    pub fn power_on_tape(&self, tape: &mut Tape, rho: Var) -> Var {
        let q = self.q_on_tape(tape, rho);
        self.power.predict_on_tape(tape, q)
    }

    /// Plain activation evaluation.
    pub fn eval(&self, v: &Matrix, rho: &Matrix) -> Matrix {
        let q = self.q_from_rho(rho);
        self.transfer.eval(v, &q)
    }

    /// Plain per-circuit power in watts.
    pub fn power_value(&self, rho: &Matrix) -> f64 {
        self.power.predict(&self.q_from_rho(rho))
    }

    /// Printed-device count of one activation circuit of this kind
    /// (transistors + resistors, per the Fig. 3 schematics as built in
    /// `pnc-spice`).
    pub fn devices_per_circuit(&self) -> usize {
        devices_per_af(self.kind)
    }
}

/// Printed-device count per activation circuit.
pub fn devices_per_af(kind: AfKind) -> usize {
    match kind {
        AfKind::PRelu => 2,        // 1 EGT + 1 R
        AfKind::PClippedRelu => 4, // 2 EGT + 2 R
        AfKind::PSigmoid => 6,     // 2 EGT + 4 R (degenerated stages)
        AfKind::PTanh => 5,        // 2 EGT + 3 R
    }
}

/// Printed-device count of one negation circuit (1 EGT + 2 R).
pub const DEVICES_PER_NEGATION: usize = 3;

/// Fits the shared negation surrogate at a grid fidelity.
///
/// # Errors
///
/// Propagates simulation/fit failures.
pub fn fit_negation_model(grid_points: usize) -> Result<NegationModel, SurrogateError> {
    fit_negation(grid_points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_linalg::rng as lrng;

    fn smoke_activation(kind: AfKind) -> LearnableActivation {
        LearnableActivation::fit(kind, &SurrogateFidelity::smoke()).unwrap()
    }

    #[test]
    fn q_stays_in_bounds_for_extreme_rho() {
        let act = smoke_activation(AfKind::PRelu);
        let bounds = AfKind::PRelu.bounds();
        for r in [-50.0, -1.0, 0.0, 1.0, 50.0] {
            let rho = Matrix::filled(1, 3, r);
            let q = act.q_from_rho(&rho);
            for (i, (&qi, &(lo, hi))) in q.iter().zip(&bounds).enumerate() {
                assert!(
                    qi >= lo * 0.999 && qi <= hi * 1.001,
                    "q[{i}] = {qi:e} outside [{lo:e}, {hi:e}] at rho = {r}"
                );
            }
        }
    }

    #[test]
    fn rho_zero_is_log_midpoint() {
        let act = smoke_activation(AfKind::PRelu);
        let q = act.q_from_rho(&Matrix::zeros(1, 3));
        let bounds = AfKind::PRelu.bounds();
        for (qi, (lo, hi)) in q.iter().zip(bounds) {
            assert!((qi.ln() - (lo * hi).sqrt().ln()).abs() < 1e-9);
        }
    }

    #[test]
    fn q_on_tape_matches_plain() {
        let act = smoke_activation(AfKind::PRelu);
        let rho = Matrix::from_rows(&[&[0.3, -0.7, 1.2]]);
        let plain = act.q_from_rho(&rho);
        let mut tape = Tape::new();
        let rv = tape.parameter(rho);
        let q = act.q_on_tape(&mut tape, rv);
        for (i, &p) in plain.iter().enumerate() {
            assert!((tape.value(q)[(0, i)] - p).abs() < 1e-9 * p);
        }
    }

    #[test]
    fn activation_output_depends_on_rho() {
        let act = smoke_activation(AfKind::PTanh);
        let v = Matrix::row(&[-0.5, 0.0, 0.5]);
        let a = act.eval(&v, &Matrix::filled(1, 6, -2.0));
        let b = act.eval(&v, &Matrix::filled(1, 6, 2.0));
        let diff = (&a - &b).max_abs();
        assert!(
            diff > 1e-3,
            "design change should move the transfer: {diff}"
        );
    }

    #[test]
    fn power_depends_on_rho_and_is_positive() {
        let act = smoke_activation(AfKind::PRelu);
        let low = act.power_value(&Matrix::filled(1, 3, -3.0));
        let high = act.power_value(&Matrix::filled(1, 3, 3.0));
        assert!(low > 0.0 && high > 0.0);
        assert!(
            (low / high).max(high / low) > 1.5,
            "power should vary across the design space: {low:e} vs {high:e}"
        );
    }

    #[test]
    fn end_to_end_gradient_through_activation_and_power() {
        let act = smoke_activation(AfKind::PTanh);
        let mut rng = lrng::seeded(31);
        let v = lrng::uniform_matrix(&mut rng, 3, 2, -0.5, 0.5);
        let rho0 = act.initial_rho(&mut rng);
        let rep = pnc_autodiff::gradcheck::check_gradient(&rho0, 1e-4, move |tape, p| {
            let vv = tape.constant(v.clone());
            let out = act.apply_on_tape(tape, vv, p);
            let sq = tape.square(out);
            let loss = tape.sum_all(sq);
            let pw = act.power_on_tape(tape, p);
            let pw_scaled = tape.mul_scalar(pw, 1e4);
            tape.add(loss, pw_scaled)
        });
        assert!(rep.max_rel_err < 1e-2, "{rep:?}");
    }

    #[test]
    fn device_counts_match_schematics() {
        assert_eq!(devices_per_af(AfKind::PRelu), 2);
        assert_eq!(devices_per_af(AfKind::PClippedRelu), 4);
        assert_eq!(devices_per_af(AfKind::PSigmoid), 6);
        assert_eq!(devices_per_af(AfKind::PTanh), 5);
        assert_eq!(DEVICES_PER_NEGATION, 3);
    }
}
