//! Multi-layer printed neuromorphic networks.
//!
//! A [`PrintedNetwork`] stacks crossbar + activation layers with the
//! paper's fixed experimental topology (`#inputs-3-#outputs`) as the
//! default. It owns:
//!
//! * per-layer surrogate conductance matrices `Θ` (crossbar weights),
//! * per-layer unconstrained activation parameters `ρ` (mapped into the
//!   design space by [`LearnableActivation`]),
//! * optional pruning masks `m^C` / `m^N` produced by
//!   [`PrintedNetwork::build_masks`] for the paper's fine-tuning phase.
//!
//! Everything needed by a training step happens on a caller-provided
//! [`Tape`] through [`PrintedNetwork::bind`]: parameters are registered,
//! the forward pass yields logits, and the power model yields a single
//! differentiable scalar in watts.

use crate::activation::{devices_per_af, LearnableActivation, DEVICES_PER_NEGATION};
use crate::count::{self, CountConfig};
use crate::crossbar;
use crate::power::{LayerPower, PowerBreakdown};
use crate::CoreError;
use pnc_autodiff::{Gradients, Tape, Var};
use pnc_linalg::{rng as lrng, Matrix};
use pnc_surrogate::NegationModel;
use rand::rngs::StdRng;

/// Network construction settings.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Hidden layer widths; the paper always uses `[3]`.
    pub hidden: Vec<usize>,
    /// Multiplier applied to output voltages before softmax — output
    /// swings are well below ±1 V, so unscaled voltages make gradients
    /// needlessly small. Monotone, so hardware argmax is unchanged.
    // lint: dimensionless
    pub logit_scale: f64,
    /// Standard deviation of the initial surrogate conductances.
    // lint: dimensionless
    pub theta_init_std: f64,
    /// Device-count relaxation settings.
    pub count: CountConfig,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            hidden: vec![3],
            logit_scale: 5.0,
            theta_init_std: 0.25,
            count: CountConfig::default(),
        }
    }
}

/// One crossbar + activation layer.
#[derive(Debug, Clone)]
struct Layer {
    /// `(inputs + 2) × outputs` surrogate conductances.
    theta: Matrix,
    /// `1 × q_dim` unconstrained activation design parameters.
    rho: Matrix,
    /// Optional pruning mask over `theta` (1 = keep).
    mask: Option<Matrix>,
}

/// Tape handles for one bound layer.
#[derive(Debug, Clone, Copy)]
pub struct BoundLayer {
    /// Parameter node for `Θ`.
    pub theta: Var,
    /// Parameter node for `ρ`.
    pub rho: Var,
}

/// A network bound to a tape for one training step.
#[derive(Debug)]
pub struct BoundNetwork {
    /// Per-layer parameter handles, in layer order.
    pub layers: Vec<BoundLayer>,
    /// Network output (logits) node.
    pub logits: Var,
    /// Differentiable total power (watts).
    pub power: Var,
}

impl BoundNetwork {
    /// Flattens the parameter handles in the canonical order used by
    /// [`PrintedNetwork::param_values`].
    pub fn param_vars(&self) -> Vec<Var> {
        let mut out = Vec::with_capacity(self.layers.len() * 2);
        for l in &self.layers {
            out.push(l.theta);
        }
        for l in &self.layers {
            out.push(l.rho);
        }
        out
    }

    /// Extracts gradients aligned with [`BoundNetwork::param_vars`].
    pub fn param_grads(&self, grads: &Gradients) -> Vec<Option<Matrix>> {
        self.param_vars()
            .iter()
            .map(|&v| grads.get(v).cloned())
            .collect()
    }
}

/// A printed neuromorphic network with learnable activation circuits.
#[derive(Debug, Clone)]
pub struct PrintedNetwork {
    cfg: NetworkConfig,
    inputs: usize,
    outputs: usize,
    layers: Vec<Layer>,
    activation: LearnableActivation,
    negation: NegationModel,
    freeze_designs: bool,
}

impl PrintedNetwork {
    /// Creates a randomly initialized network.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidTopology`] when any width is zero.
    pub fn new(
        inputs: usize,
        outputs: usize,
        cfg: NetworkConfig,
        activation: LearnableActivation,
        negation: NegationModel,
        rng: &mut StdRng,
    ) -> Result<Self, CoreError> {
        if inputs == 0 || outputs == 0 || cfg.hidden.contains(&0) {
            return Err(CoreError::InvalidTopology {
                message: format!(
                    "widths must be positive: inputs {inputs}, hidden {:?}, outputs {outputs}",
                    cfg.hidden
                ),
            });
        }
        let mut widths = vec![inputs];
        widths.extend_from_slice(&cfg.hidden);
        widths.push(outputs);

        let layers = widths
            .windows(2)
            .map(|w| Layer {
                theta: lrng::normal_matrix(rng, w[0] + 2, w[1], 0.0, cfg.theta_init_std),
                rho: activation.initial_rho(rng),
                mask: None,
            })
            .collect();

        Ok(PrintedNetwork {
            cfg,
            inputs,
            outputs,
            layers,
            activation,
            negation,
            freeze_designs: false,
        })
    }

    /// Freezes (or unfreezes) the activation design vectors `ρ`: when
    /// frozen, [`PrintedNetwork::bind`] registers them as constants so
    /// no gradient reaches them and optimizers leave them untouched.
    /// Used to model baselines that predate learnable activation
    /// hardware (e.g. the penalty baseline of Zhao et al., ICCAD'23).
    pub fn set_freeze_designs(&mut self, freeze: bool) {
        self.freeze_designs = freeze;
    }

    /// Whether activation designs are currently frozen.
    pub fn designs_frozen(&self) -> bool {
        self.freeze_designs
    }

    /// Input feature count.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output class count.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The shared activation model.
    pub fn activation(&self) -> &LearnableActivation {
        &self.activation
    }

    /// The negation-circuit surrogate.
    pub fn negation(&self) -> &NegationModel {
        &self.negation
    }

    /// Construction settings.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Parameter plumbing
    // ------------------------------------------------------------------

    /// Snapshot of all trainable parameters: `[Θ₀ … Θ_L, ρ₀ … ρ_L]`.
    pub fn param_values(&self) -> Vec<Matrix> {
        let mut out: Vec<Matrix> = self.layers.iter().map(|l| l.theta.clone()).collect();
        out.extend(self.layers.iter().map(|l| l.rho.clone()));
        out
    }

    /// Writes back parameters in [`PrintedNetwork::param_values`] order.
    ///
    /// # Panics
    ///
    /// Panics on count or shape mismatch.
    pub fn set_param_values(&mut self, values: &[Matrix]) {
        let l = self.layers.len();
        assert_eq!(values.len(), 2 * l, "expected {} parameter matrices", 2 * l);
        for (i, layer) in self.layers.iter_mut().enumerate() {
            assert_eq!(values[i].shape(), layer.theta.shape(), "theta {i} shape");
            layer.theta = values[i].clone();
        }
        for (i, layer) in self.layers.iter_mut().enumerate() {
            assert_eq!(values[l + i].shape(), layer.rho.shape(), "rho {i} shape");
            layer.rho = values[l + i].clone();
        }
    }

    /// Effective conductances of layer `i` (mask applied).
    pub fn theta_effective(&self, i: usize) -> Matrix {
        let l = &self.layers[i];
        match &l.mask {
            Some(m) => l.theta.hadamard(m),
            None => l.theta.clone(),
        }
    }

    /// The activation design vector of layer `i` in physical units.
    pub fn layer_design(&self, i: usize) -> Vec<f64> {
        self.activation.q_from_rho(&self.layers[i].rho)
    }

    // ------------------------------------------------------------------
    // Tape binding: forward + power
    // ------------------------------------------------------------------

    /// Registers all parameters on `tape`, runs the forward pass on
    /// input `x` and assembles the differentiable power model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InputWidthMismatch`] when `x` has the wrong
    /// number of columns.
    pub fn bind(&self, tape: &mut Tape, x: &Matrix) -> Result<BoundNetwork, CoreError> {
        if x.cols() != self.inputs {
            return Err(CoreError::InputWidthMismatch {
                expected: self.inputs,
                got: x.cols(),
            });
        }
        let mut bound_layers = Vec::with_capacity(self.layers.len());
        let mut h = tape.constant(x.clone());
        let mut power_terms: Vec<Var> = Vec::new();

        for (i, layer) in self.layers.iter().enumerate() {
            let theta = tape.parameter(layer.theta.clone());
            let rho = if self.freeze_designs {
                tape.constant(layer.rho.clone())
            } else {
                tape.parameter(layer.rho.clone())
            };
            bound_layers.push(BoundLayer { theta, rho });

            let out = crossbar::forward(tape, h, theta, &self.negation, layer.mask.as_ref());
            // Activation on every neuron, including the output layer
            // (each printed neuron ends in an activation circuit).
            h = self.activation.apply_on_tape(tape, out.vz, rho);

            // Power: crossbar + soft-counted activation and negation
            // circuits. The soft counts see the *masked* theta.
            let masked_theta = match &layer.mask {
                Some(m) => tape.mul_const(theta, m),
                None => theta,
            };
            let p_cross = crossbar::power(tape, &out);
            let n_af = count::soft_af_count(tape, masked_theta, &self.cfg.count);
            let n_neg =
                count::soft_neg_count(tape, masked_theta, self.layer_inputs(i), &self.cfg.count);
            let p_af_each = self.activation.power_on_tape(tape, rho);
            let p_af = tape.mul(n_af, p_af_each);
            let p_neg = tape.mul_scalar(n_neg, self.negation.mean_power_watts);
            let sum1 = tape.add(p_cross, p_af);
            power_terms.push(tape.add(sum1, p_neg));
        }

        let logits = tape.mul_scalar(h, self.cfg.logit_scale);
        let mut power = power_terms[0];
        for &t in &power_terms[1..] {
            power = tape.add(power, t);
        }

        Ok(BoundNetwork {
            layers: bound_layers,
            logits,
            power,
        })
    }

    fn layer_inputs(&self, i: usize) -> usize {
        self.layers[i].theta.rows() - 2
    }

    /// Validates that `x` matches the network's input width.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InputWidthMismatch`] on a column-count
    /// mismatch.
    pub fn validate_input(&self, x: &Matrix) -> Result<(), CoreError> {
        if x.cols() != self.inputs {
            return Err(CoreError::InputWidthMismatch {
                expected: self.inputs,
                got: x.cols(),
            });
        }
        Ok(())
    }

    /// Plain forward pass returning logits.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InputWidthMismatch`] when `x` has the wrong
    /// number of columns.
    pub fn predict(&self, x: &Matrix) -> Result<Matrix, CoreError> {
        let mut tape = Tape::new();
        let bound = self.bind(&mut tape, x)?;
        Ok(tape.value(bound.logits).clone())
    }

    /// Classification accuracy on `(x, labels)`, in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InputWidthMismatch`] when `x` has the wrong
    /// number of columns.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> Result<f64, CoreError> {
        Ok(pnc_autodiff::functional::accuracy(
            &self.predict(x)?,
            labels,
        ))
    }

    // ------------------------------------------------------------------
    // Hard (reporting) power and device counts
    // ------------------------------------------------------------------

    /// Power report with indicator (hard) device counts — the paper's
    /// "final power estimation" semantics.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InputWidthMismatch`] when `x` has the wrong
    /// number of columns.
    pub fn power_report(&self, x: &Matrix) -> Result<PowerBreakdown, CoreError> {
        let mut report = PowerBreakdown::default();
        self.validate_input(x)?;

        // Layer-by-layer hard accounting on the plain values.
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let theta_eff = self.theta_effective(i);
            let classes = crossbar::power_reference_classes(&h, &theta_eff, &self.negation);
            let n_af = count::hard_af_count(&theta_eff, &self.cfg.count);
            let n_neg = count::hard_neg_count(&theta_eff, self.layer_inputs(i), &self.cfg.count);
            let p_af = self.activation.power_value(&layer.rho);
            let resistors = crossbar::resistor_count(&theta_eff, &self.cfg.count);

            let layer_power = LayerPower {
                crossbar: classes,
                activation_watts: n_af as f64 * p_af,
                negation_watts: n_neg as f64 * self.negation.mean_power_watts,
                af_circuits: n_af,
                neg_circuits: n_neg,
                resistors,
            };
            report.crossbar_watts += layer_power.crossbar.total_watts();
            report.activation_watts += layer_power.activation_watts;
            report.negation_watts += layer_power.negation_watts;
            report.af_circuits += n_af;
            report.neg_circuits += n_neg;
            report.resistors += resistors;
            report.layers.push(layer_power);

            // Propagate voltages for the next layer's crossbar power.
            h = self.forward_layer_plain(&h, i);
        }
        Ok(report)
    }

    fn forward_layer_plain(&self, x: &Matrix, i: usize) -> Matrix {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let theta = tape.parameter(self.layers[i].theta.clone());
        let out = crossbar::forward(
            &mut tape,
            xv,
            theta,
            &self.negation,
            self.layers[i].mask.as_ref(),
        );
        let rho = tape.parameter(self.layers[i].rho.clone());
        let act = self.activation.apply_on_tape(&mut tape, out.vz, rho);
        tape.value(act).clone()
    }

    /// Total printed-device count with indicator semantics (Table I's
    /// `#Dev`): crossbar resistors + activation circuits + negation
    /// circuits, weighted by devices per circuit.
    pub fn device_count(&self) -> usize {
        let mut devices = 0usize;
        for i in 0..self.layers.len() {
            let theta_eff = self.theta_effective(i);
            devices += crossbar::resistor_count(&theta_eff, &self.cfg.count);
            devices += count::hard_af_count(&theta_eff, &self.cfg.count)
                * devices_per_af(self.activation.kind());
            devices += count::hard_neg_count(&theta_eff, self.layer_inputs(i), &self.cfg.count)
                * DEVICES_PER_NEGATION;
        }
        devices
    }

    // ------------------------------------------------------------------
    // Pruning masks (fine-tuning phase, Sec. IV-A1)
    // ------------------------------------------------------------------

    /// Builds pruning masks from the current parameters: `m^C` zeroes
    /// conductances with `|θ| ≤ τ`; `m^N` additionally zeroes the
    /// negative entries of input rows whose total negative conductance
    /// is below `2τ` (dropping a barely-used negation circuit). Returns
    /// the number of pruned entries.
    pub fn build_masks(&mut self) -> usize {
        let tau = self.cfg.count.threshold;
        let mut pruned = 0usize;
        for i in 0..self.layers.len() {
            let inputs = self.layer_inputs(i);
            let theta = self.layers[i].theta.clone();
            let mut mask = Matrix::ones(theta.rows(), theta.cols());
            for j in 0..theta.rows() {
                for n in 0..theta.cols() {
                    if theta[(j, n)].abs() <= tau {
                        mask[(j, n)] = 0.0;
                        pruned += 1;
                    }
                }
            }
            // m^N: rows whose negation circuit is not worth printing.
            for j in 0..inputs {
                let neg_total: f64 = (0..theta.cols()).map(|n| (-theta[(j, n)]).max(0.0)).sum();
                if neg_total > 0.0 && neg_total < 2.0 * tau {
                    for n in 0..theta.cols() {
                        // lint: allow(L002, reason = "mask entries are assigned exactly 0.0 or 1.0")
                        if theta[(j, n)] < 0.0 && mask[(j, n)] != 0.0 {
                            mask[(j, n)] = 0.0;
                            pruned += 1;
                        }
                    }
                }
            }
            self.layers[i].mask = Some(mask);
        }
        pruned
    }

    /// Drops all pruning masks.
    pub fn clear_masks(&mut self) {
        for layer in &mut self.layers {
            layer.mask = None;
        }
    }

    /// Whether any pruning mask is active.
    pub fn has_masks(&self) -> bool {
        self.layers.iter().any(|l| l.mask.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::SurrogateFidelity;
    use pnc_spice::AfKind;
    use std::sync::OnceLock;

    /// Shared smoke-fidelity activation so the test battery fits one
    /// SPICE+fit cycle.
    fn smoke_parts() -> &'static (LearnableActivation, NegationModel) {
        static CELL: OnceLock<(LearnableActivation, NegationModel)> = OnceLock::new();
        CELL.get_or_init(|| {
            let act = LearnableActivation::fit(AfKind::PTanh, &SurrogateFidelity::smoke()).unwrap();
            let neg = crate::activation::fit_negation_model(9).unwrap();
            (act, neg)
        })
    }

    fn small_network(seed: u64) -> PrintedNetwork {
        let (act, neg) = smoke_parts().clone();
        let mut rng = lrng::seeded(seed);
        PrintedNetwork::new(4, 3, NetworkConfig::default(), act, neg, &mut rng).unwrap()
    }

    #[test]
    fn rejects_zero_widths() {
        let (act, neg) = smoke_parts().clone();
        let mut rng = lrng::seeded(1);
        assert!(PrintedNetwork::new(0, 3, NetworkConfig::default(), act, neg, &mut rng).is_err());
    }

    #[test]
    fn topology_matches_paper_default() {
        let net = small_network(2);
        assert_eq!(net.layer_count(), 2); // in-3-out
        assert_eq!(net.inputs(), 4);
        assert_eq!(net.outputs(), 3);
    }

    #[test]
    fn predict_shape_and_finiteness() {
        let net = small_network(3);
        let x = lrng::uniform_matrix(&mut lrng::seeded(4), 7, 4, -0.8, 0.8);
        let logits = net.predict(&x).unwrap();
        assert_eq!(logits.shape(), (7, 3));
        assert!(logits.all_finite());
    }

    #[test]
    fn bind_rejects_wrong_width() {
        let net = small_network(5);
        let mut tape = Tape::new();
        let x = Matrix::zeros(2, 9);
        assert!(matches!(
            net.bind(&mut tape, &x),
            Err(CoreError::InputWidthMismatch {
                expected: 4,
                got: 9
            })
        ));
    }

    #[test]
    fn power_is_positive_and_tape_close_to_hard_report() {
        let net = small_network(6);
        let x = lrng::uniform_matrix(&mut lrng::seeded(7), 10, 4, -0.8, 0.8);
        let mut tape = Tape::new();
        let bound = net.bind(&mut tape, &x).unwrap();
        let soft_power = tape.scalar(bound.power);
        let hard = net.power_report(&x).unwrap();
        assert!(soft_power > 0.0);
        assert!(hard.total() > 0.0);
        // Soft counts ≈ hard counts for a dense random init, so the two
        // power estimates should be within a factor ~2.
        let ratio = soft_power / hard.total();
        assert!(
            (0.5..2.0).contains(&ratio),
            "soft {soft_power:e} vs hard {:e}",
            hard.total()
        );
    }

    #[test]
    fn param_roundtrip() {
        let mut net = small_network(8);
        let values = net.param_values();
        assert_eq!(values.len(), 4); // 2 thetas + 2 rhos
        let mut perturbed = values.clone();
        perturbed[0] = perturbed[0].shift(0.1);
        net.set_param_values(&perturbed);
        assert!(net.param_values()[0].approx_eq(&perturbed[0], 1e-15));
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let net = small_network(9);
        let x = lrng::uniform_matrix(&mut lrng::seeded(10), 6, 4, -0.8, 0.8);
        let labels = vec![0, 1, 2, 0, 1, 2];
        let mut tape = Tape::new();
        let bound = net.bind(&mut tape, &x).unwrap();
        let ce = tape.softmax_cross_entropy(bound.logits, &labels);
        let pw_scaled = tape.mul_scalar(bound.power, 1e3);
        let loss = tape.add(ce, pw_scaled);
        let grads = tape.backward(loss);
        for (k, g) in bound.param_grads(&grads).iter().enumerate() {
            let g = g
                .as_ref()
                .unwrap_or_else(|| panic!("no grad for param {k}"));
            assert!(g.all_finite(), "param {k} grad not finite");
            assert!(g.max_abs() > 0.0, "param {k} grad identically zero");
        }
    }

    #[test]
    fn masks_prune_and_reduce_power() {
        let mut net = small_network(11);
        let x = lrng::uniform_matrix(&mut lrng::seeded(12), 8, 4, -0.8, 0.8);
        // Shrink some weights below threshold so pruning has targets.
        let mut values = net.param_values();
        for v in values[0].as_mut_slice().iter_mut().take(6) {
            *v *= 0.001;
        }
        net.set_param_values(&values);
        let before = net.power_report(&x).unwrap().total();
        let pruned = net.build_masks();
        assert!(pruned >= 6, "expected prunable entries, got {pruned}");
        assert!(net.has_masks());
        let after = net.power_report(&x).unwrap().total();
        assert!(after <= before + 1e-12, "pruning must not add power");
        net.clear_masks();
        assert!(!net.has_masks());
    }

    #[test]
    fn device_count_is_consistent() {
        let net = small_network(13);
        let x = Matrix::zeros(1, 4);
        let devices = net.device_count();
        let report = net.power_report(&x).unwrap();
        // Sanity: every counted AF contributes its device cost.
        assert!(devices >= report.af_circuits * devices_per_af(AfKind::PTanh));
        assert!(devices > 0);
    }

    #[test]
    fn deeper_topologies_work() {
        let (act, neg) = smoke_parts().clone();
        let mut rng = lrng::seeded(31);
        let net = PrintedNetwork::new(
            6,
            2,
            NetworkConfig {
                hidden: vec![5, 4],
                ..NetworkConfig::default()
            },
            act,
            neg,
            &mut rng,
        )
        .unwrap();
        assert_eq!(net.layer_count(), 3);
        let x = lrng::uniform_matrix(&mut lrng::seeded(32), 4, 6, -0.8, 0.8);
        let logits = net.predict(&x).unwrap();
        assert_eq!(logits.shape(), (4, 2));
        assert!(logits.all_finite());
        // Gradients flow through all six parameter matrices.
        let mut tape = Tape::new();
        let bound = net.bind(&mut tape, &x).unwrap();
        let loss = tape.softmax_cross_entropy(bound.logits, &[0, 1, 0, 1]);
        let pw = tape.mul_scalar(bound.power, 1e3);
        let total = tape.add(loss, pw);
        let grads = tape.backward(total);
        for (k, g) in bound.param_grads(&grads).iter().enumerate() {
            assert!(g.is_some(), "param {k} missing gradient");
        }
    }

    #[test]
    fn seeded_construction_is_reproducible() {
        let a = small_network(20);
        let b = small_network(20);
        assert_eq!(a.param_values()[0], b.param_values()[0]);
        let c = small_network(21);
        assert_ne!(a.param_values()[0], c.param_values()[0]);
    }
}
