//! Transistor-level netlist export of trained printed networks.
//!
//! This is the "compiler backend" a downstream user needs: a trained
//! [`PrintedNetwork`] is lowered to the complete analog circuit that
//! would be inkjet-printed — crossbar resistors (one per surviving
//! conductance, `R = 1/(|θ|·G_MAX)`), one shared negation inverter per
//! input line that feeds any negative weight, and one activation
//! circuit per active output, all between the ±1 V rails.
//!
//! Two consumers:
//!
//! * [`ExportedNetwork::to_spice_string`] — a SPICE-flavoured text
//!   netlist for external tools and for the lab notebook.
//! * [`ExportedNetwork::simulate`] — full-circuit DC inference with the
//!   in-repo solver, used to **cross-validate the differentiable
//!   abstraction against the transistor-level circuit** (see the
//!   `model_fidelity` integration test and experiment). The abstract
//!   model ignores inter-stage loading (activation outputs are assumed
//!   ideal voltage sources); the exported circuit does not, so the
//!   agreement between the two quantifies that abstraction gap.

use crate::count::CountConfig;
use crate::crossbar::G_MAX;
use crate::network::PrintedNetwork;
use crate::CoreError;
use pnc_linalg::Matrix;
use pnc_spice::af::{attach_negation, VDD, VSS};
use pnc_spice::dc::{solve_dc_with, SolverConfig};
use pnc_spice::netlist::{Circuit, Element};
use pnc_spice::power::total_power;
use pnc_spice::variation::VariationModel;
use pnc_spice::{NodeId, SpiceError};

/// Lowering options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportConfig {
    /// Insert ideal unity-gain buffers between stages (after every
    /// activation output that feeds another crossbar, and after every
    /// negation output). The differentiable training abstraction treats
    /// stage outputs as ideal voltage sources; buffering makes the
    /// lowered circuit match that assumption. Disable to study the
    /// unbuffered inter-stage loading gap.
    pub buffered_stages: bool,
}

impl Default for ExportConfig {
    fn default() -> Self {
        ExportConfig {
            buffered_stages: true,
        }
    }
}

/// A lowered, printable circuit with handles for simulation.
#[derive(Debug, Clone)]
pub struct ExportedNetwork {
    circuit: Circuit,
    input_sources: Vec<usize>,
    output_nodes: Vec<NodeId>,
    stats: ExportStats,
}

/// Device statistics of an exported circuit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportStats {
    /// Crossbar resistors printed.
    pub crossbar_resistors: usize,
    /// Negation inverters printed.
    pub negation_circuits: usize,
    /// Activation circuits printed.
    pub activation_circuits: usize,
    /// Total transistors in the netlist.
    pub transistors: usize,
    /// Total resistors in the netlist.
    pub resistors: usize,
}

impl ExportedNetwork {
    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Export statistics.
    pub fn stats(&self) -> ExportStats {
        self.stats
    }

    /// Output node per class.
    pub fn output_nodes(&self) -> &[NodeId] {
        &self.output_nodes
    }

    /// Runs full-circuit DC inference for one feature vector, returning
    /// the output-node voltages (hardware argmax = predicted class).
    ///
    /// # Errors
    ///
    /// Propagates DC convergence failures.
    ///
    /// # Panics
    ///
    /// Panics when `features.len()` differs from the network input
    /// count.
    pub fn simulate(&self, features: &[f64]) -> Result<Vec<f64>, SpiceError> {
        assert_eq!(
            features.len(),
            self.input_sources.len(),
            "simulate: expected {} features",
            self.input_sources.len()
        );
        let mut c = self.circuit.clone();
        for (&src, &v) in self.input_sources.iter().zip(features) {
            c.set_vsource(src, v)?;
        }
        let cfg = SolverConfig {
            max_iterations: 300,
            ..SolverConfig::default()
        };
        let op = solve_dc_with(&c, &cfg, None)?;
        Ok(self.output_nodes.iter().map(|&n| op.voltage(n)).collect())
    }

    /// Batch inference: argmax class per row of `x`.
    ///
    /// # Errors
    ///
    /// Propagates the first DC failure.
    pub fn classify(&self, x: &Matrix) -> Result<Vec<usize>, SpiceError> {
        let mut out = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let v = self.simulate(x.row_slice(i))?;
            let mut best = 0usize;
            for (k, &val) in v.iter().enumerate() {
                if val > v[best] {
                    best = k;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Runs inference inside an explicit circuit (used by the Monte
    /// Carlo variation analysis, where the circuit is a perturbed copy
    /// of [`ExportedNetwork::circuit`]).
    fn simulate_in(
        &self,
        circuit: &Circuit,
        features: &[f64],
    ) -> Result<(Vec<f64>, f64), SpiceError> {
        let mut c = circuit.clone();
        for (&src, &v) in self.input_sources.iter().zip(features) {
            c.set_vsource(src, v)?;
        }
        let cfg = SolverConfig {
            max_iterations: 300,
            ..SolverConfig::default()
        };
        let op = solve_dc_with(&c, &cfg, None)?;
        let outs = self.output_nodes.iter().map(|&n| op.voltage(n)).collect();
        Ok((outs, total_power(&c, &op)))
    }

    /// Monte Carlo robustness under printing variation: fabricates
    /// `prints` perturbed copies of the circuit and evaluates each on
    /// `(x, labels)`. Returns per-print accuracies and mean powers.
    ///
    /// Print `p` perturbs from its own RNG seeded with
    /// `derive_seed(seed, p)` rather than one shared stream advanced in
    /// loop order, so the prints are independent trials and the report
    /// is bit-identical for any executor thread count (trials fan out
    /// over [`pnc_parallel::ExecutorHandle`]).
    ///
    /// Prints whose DC analysis fails to converge on any sample are
    /// reported with `NaN` accuracy (rare; counted by the caller as
    /// yield loss).
    ///
    /// # Panics
    ///
    /// Panics when `labels.len() != x.rows()`.
    pub fn monte_carlo(
        &self,
        x: &Matrix,
        labels: &[usize],
        variation: &VariationModel,
        prints: usize,
        seed: u64,
    ) -> MonteCarloReport {
        assert_eq!(x.rows(), labels.len(), "monte_carlo: label count");
        let trials: Vec<usize> = (0..prints).collect();
        let per_print: Vec<(f64, f64)> =
            pnc_parallel::ExecutorHandle::get().par_map(&trials, |_, &p| {
                let mut rng = pnc_linalg::rng::seeded(pnc_parallel::derive_seed(seed, p as u64));
                let varied = variation.sample(&self.circuit, &mut rng);
                let mut correct = 0usize;
                let mut power_acc = 0.0;
                for (i, &label) in labels.iter().enumerate() {
                    match self.simulate_in(&varied, x.row_slice(i)) {
                        Ok((outs, pw)) => {
                            let mut best = 0usize;
                            for (k, &v) in outs.iter().enumerate() {
                                if v > outs[best] {
                                    best = k;
                                }
                            }
                            correct += usize::from(best == label);
                            power_acc += pw;
                        }
                        Err(_) => return (f64::NAN, f64::NAN),
                    }
                }
                (
                    correct as f64 / x.rows() as f64,
                    power_acc / x.rows() as f64,
                )
            });
        MonteCarloReport {
            accuracies: per_print.iter().map(|&(a, _)| a).collect(),
            powers_watts: per_print.iter().map(|&(_, p)| p).collect(),
        }
    }

    /// Renders a SPICE-flavoured text netlist. nEGTs are emitted as
    /// `M<idx> drain gate source egt_n W=<w> L=<l>` cards referencing
    /// an `egt_n` model the header documents.
    pub fn to_spice_string(&self) -> String {
        let mut s = String::new();
        s.push_str("* pNC netlist exported by the pnc workspace\n");
        s.push_str("* supplies: VDD=+1V, VSS=-1V; model egt_n: EKV-style printed nEGT\n");
        s.push_str(&format!(
            "* devices: {} R, {} EGT ({} crossbar R, {} negation cells, {} activation circuits)\n",
            self.stats.resistors,
            self.stats.transistors,
            self.stats.crossbar_resistors,
            self.stats.negation_circuits,
            self.stats.activation_circuits,
        ));
        let name = |n: NodeId| -> String {
            if n == Circuit::GROUND {
                "0".to_string()
            } else {
                format!("n{n}_{}", self.circuit.node_name(n))
            }
        };
        let mut r_idx = 0usize;
        let mut v_idx = 0usize;
        let mut m_idx = 0usize;
        for e in self.circuit.elements() {
            match *e {
                Element::Resistor { a, b, ohms } => {
                    r_idx += 1;
                    s.push_str(&format!("R{r_idx} {} {} {ohms:.1}\n", name(a), name(b)));
                }
                Element::VSource { plus, minus, volts } => {
                    v_idx += 1;
                    s.push_str(&format!(
                        "V{v_idx} {} {} DC {volts:.6}\n",
                        name(plus),
                        name(minus)
                    ));
                }
                Element::Capacitor { a, b, farads } => {
                    r_idx += 1;
                    s.push_str(&format!("C{r_idx} {} {} {farads:.3e}\n", name(a), name(b)));
                }
                Element::ISource { plus, minus, amps } => {
                    v_idx += 1;
                    s.push_str(&format!(
                        "I{v_idx} {} {} DC {amps:.6e}\n",
                        name(plus),
                        name(minus)
                    ));
                }
                Element::Vcvs {
                    plus,
                    minus,
                    ctrl_p,
                    ctrl_n,
                    gain,
                } => {
                    v_idx += 1;
                    s.push_str(&format!(
                        "E{v_idx} {} {} {} {} {gain:.6}\n",
                        name(plus),
                        name(minus),
                        name(ctrl_p),
                        name(ctrl_n)
                    ));
                }
                Element::Egt {
                    drain,
                    gate,
                    source,
                    w,
                    l,
                    ..
                } => {
                    m_idx += 1;
                    s.push_str(&format!(
                        "M{m_idx} {} {} {} egt_n W={w:.3e} L={l:.3e}\n",
                        name(drain),
                        name(gate),
                        name(source)
                    ));
                }
            }
        }
        s.push_str(".end\n");
        s
    }
}

/// Monte Carlo variation-analysis results.
#[derive(Debug, Clone)]
pub struct MonteCarloReport {
    /// Classification accuracy of each simulated print (`NaN` = the
    /// print failed to simulate).
    pub accuracies: Vec<f64>,
    /// Mean power of each print over the evaluation inputs, watts.
    pub powers_watts: Vec<f64>,
}

impl MonteCarloReport {
    /// Mean accuracy over successfully simulated prints.
    pub fn mean_accuracy(&self) -> f64 {
        let ok: Vec<f64> = self
            .accuracies
            .iter()
            .copied()
            .filter(|a| a.is_finite())
            .collect();
        ok.iter().sum::<f64>() / ok.len().max(1) as f64
    }

    /// Standard deviation of accuracy over successful prints.
    pub fn std_accuracy(&self) -> f64 {
        let ok: Vec<f64> = self
            .accuracies
            .iter()
            .copied()
            .filter(|a| a.is_finite())
            .collect();
        let m = ok.iter().sum::<f64>() / ok.len().max(1) as f64;
        (ok.iter().map(|a| (a - m) * (a - m)).sum::<f64>() / ok.len().max(1) as f64).sqrt()
    }

    /// Worst-print accuracy.
    pub fn min_accuracy(&self) -> f64 {
        self.accuracies
            .iter()
            .copied()
            .filter(|a| a.is_finite())
            .fold(f64::INFINITY, f64::min)
    }

    /// Fraction of prints that simulated successfully.
    pub fn yield_rate(&self) -> f64 {
        let ok = self.accuracies.iter().filter(|a| a.is_finite()).count();
        ok as f64 / self.accuracies.len().max(1) as f64
    }

    /// Mean power across successful prints, watts.
    pub fn mean_power(&self) -> f64 {
        let ok: Vec<f64> = self
            .powers_watts
            .iter()
            .copied()
            .filter(|p| p.is_finite())
            .collect();
        ok.iter().sum::<f64>() / ok.len().max(1) as f64
    }
}

/// Lowers a trained network to its printable circuit.
///
/// Conductances with `|θ| ≤ cfg.count.threshold` (or masked entries)
/// are not printed; input lines whose weights are all positive get no
/// negation inverter; output columns with no surviving conductance get
/// no activation circuit (their node floats at 0 via a ground tie).
///
/// # Errors
///
/// Returns [`CoreError::InvalidTopology`] if the network has no layers
/// (cannot happen through the public constructor).
pub fn export_network(net: &PrintedNetwork) -> Result<ExportedNetwork, CoreError> {
    export_network_with(net, &ExportConfig::default())
}

/// Lowers a trained network with explicit options (see
/// [`ExportConfig`]).
///
/// # Errors
///
/// Same conditions as [`export_network`].
pub fn export_network_with(
    net: &PrintedNetwork,
    options: &ExportConfig,
) -> Result<ExportedNetwork, CoreError> {
    if net.layer_count() == 0 {
        return Err(CoreError::InvalidTopology {
            message: "network has no layers".to_string(),
        });
    }
    let cfg: CountConfig = net.config().count;
    let tau = cfg.threshold;
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vss = c.node("vss");
    c.vsource(vdd, Circuit::GROUND, VDD);
    c.vsource(vss, Circuit::GROUND, VSS);

    let mut stats = ExportStats::default();

    // Input lines driven by ideal sensor sources.
    let mut lines: Vec<NodeId> = Vec::with_capacity(net.inputs());
    let mut input_sources = Vec::with_capacity(net.inputs());
    for j in 0..net.inputs() {
        let n = c.node(&format!("in{j}"));
        input_sources.push(c.vsource(n, Circuit::GROUND, 0.0));
        lines.push(n);
    }

    for layer in 0..net.layer_count() {
        let theta = net.theta_effective(layer);
        let inputs = theta.rows() - 2;
        let outputs = theta.cols();
        debug_assert_eq!(inputs, lines.len(), "layer width chain");

        // Shared negation inverter per input line that needs one.
        let mut neg_lines: Vec<Option<NodeId>> = vec![None; inputs];
        for (j, slot) in neg_lines.iter_mut().enumerate() {
            let needs = (0..outputs).any(|n| theta[(j, n)] < -tau);
            if needs {
                let raw = attach_negation(&mut c, vdd, vss, lines[j]);
                let out = if options.buffered_stages {
                    let b = c.node("neg_buf");
                    c.vcvs(b, Circuit::GROUND, raw, Circuit::GROUND, 1.0);
                    b
                } else {
                    raw
                };
                *slot = Some(out);
                stats.negation_circuits += 1;
            }
        }

        let mut next_lines = Vec::with_capacity(outputs);
        for n in 0..outputs {
            let z = c.node(&format!("l{layer}z{n}"));
            let mut any = false;
            for j in 0..inputs + 2 {
                let th = theta[(j, n)];
                if th.abs() <= tau {
                    continue;
                }
                any = true;
                stats.crossbar_resistors += 1;
                let ohms = 1.0 / (th.abs() * G_MAX);
                let from = if j < inputs {
                    if th >= 0.0 {
                        lines[j]
                    } else {
                        // lint: allow(L001, reason = "lowering allocates a negation line for every input that has a negative weight")
                        neg_lines[j].expect("negation cell exists for negative weight")
                    }
                } else if j == inputs {
                    // Bias row: V_DD when positive, V_SS when negative
                    // (no inverter needed for a rail).
                    if th >= 0.0 {
                        vdd
                    } else {
                        vss
                    }
                } else {
                    // Ground row: 0 V either way.
                    Circuit::GROUND
                };
                c.resistor(from, z, ohms);
            }
            if !any {
                // Fully pruned column: tie to ground so the node is
                // well-defined (nothing downstream reads a signal).
                c.resistor(z, Circuit::GROUND, 1.0e9);
            } else {
                stats.activation_circuits += 1;
            }
            let q = net.layer_design(layer);
            let mut out = if any {
                net.activation().kind().attach(&mut c, &q, vdd, vss, z)
            } else {
                z
            };
            // Buffer activation outputs that drive another crossbar
            // (the final layer's outputs are read by an ideal sense
            // stage and need no buffer).
            if options.buffered_stages && layer + 1 < net.layer_count() && any {
                let b = c.node("af_buf");
                c.vcvs(b, Circuit::GROUND, out, Circuit::GROUND, 1.0);
                out = b;
            }
            next_lines.push(out);
        }
        lines = next_lines;
    }

    for e in c.elements() {
        match e {
            Element::Resistor { .. } => stats.resistors += 1,
            Element::Egt { .. } => stats.transistors += 1,
            Element::VSource { .. }
            | Element::Vcvs { .. }
            | Element::Capacitor { .. }
            | Element::ISource { .. } => {}
        }
    }

    Ok(ExportedNetwork {
        circuit: c,
        input_sources,
        output_nodes: lines,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{LearnableActivation, SurrogateFidelity};
    use crate::network::NetworkConfig;
    use pnc_linalg::rng as lrng;
    use pnc_spice::AfKind;
    use pnc_surrogate::NegationModel;
    use std::sync::OnceLock;

    fn parts() -> &'static (LearnableActivation, NegationModel) {
        static CELL: OnceLock<(LearnableActivation, NegationModel)> = OnceLock::new();
        CELL.get_or_init(|| {
            let act = LearnableActivation::fit(AfKind::PTanh, &SurrogateFidelity::smoke()).unwrap();
            let neg = crate::activation::fit_negation_model(9).unwrap();
            (act, neg)
        })
    }

    fn net(seed: u64) -> PrintedNetwork {
        let (act, negm) = parts().clone();
        let mut rng = lrng::seeded(seed);
        PrintedNetwork::new(4, 3, NetworkConfig::default(), act, negm, &mut rng).unwrap()
    }

    #[test]
    fn export_produces_consistent_stats() {
        let network = net(41);
        let exported = export_network(&network).unwrap();
        let stats = exported.stats();
        assert!(stats.crossbar_resistors > 0);
        assert!(stats.activation_circuits > 0);
        assert!(stats.transistors > 0);
        // Device-count consistency against the abstract model.
        let report = network.power_report(&Matrix::zeros(1, 4)).unwrap();
        assert_eq!(stats.activation_circuits, report.af_circuits);
        assert_eq!(stats.negation_circuits, report.neg_circuits);
        assert_eq!(stats.crossbar_resistors, report.resistors);
    }

    #[test]
    fn spice_string_has_cards_for_every_element() {
        let exported = export_network(&net(43)).unwrap();
        let text = exported.to_spice_string();
        assert!(text.starts_with("* pNC netlist"));
        assert!(text.trim_end().ends_with(".end"));
        let r_cards = text.lines().filter(|l| l.starts_with('R')).count();
        let m_cards = text.lines().filter(|l| l.starts_with('M')).count();
        assert_eq!(r_cards, exported.stats().resistors);
        assert_eq!(m_cards, exported.stats().transistors);
    }

    #[test]
    fn full_circuit_inference_converges_and_is_bounded() {
        let exported = export_network(&net(47)).unwrap();
        let v = exported.simulate(&[0.3, -0.2, 0.5, -0.6]).unwrap();
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| x.is_finite() && x.abs() <= 1.2), "{v:?}");
    }

    #[test]
    fn abstract_and_circuit_outputs_correlate() {
        // The differentiable abstraction ignores inter-stage loading, so
        // outputs differ in value — but they should vary together.
        let network = net(53);
        let exported = export_network(&network).unwrap();
        let mut rng = lrng::seeded(3);
        let x = lrng::uniform_matrix(&mut rng, 12, 4, -0.7, 0.7);
        let abstract_logits = network.predict(&x).unwrap();

        let mut pairs_abs = Vec::new();
        let mut pairs_cir = Vec::new();
        for i in 0..x.rows() {
            let sim = exported.simulate(x.row_slice(i)).unwrap();
            for k in 0..3 {
                // predict() scales by logit_scale; undo for comparison.
                pairs_abs.push(abstract_logits[(i, k)] / network.config().logit_scale);
                pairs_cir.push(sim[k]);
            }
        }
        let corr = pnc_linalg::stats::pearson(&pairs_abs, &pairs_cir);
        assert!(
            corr > 0.6,
            "abstract vs circuit outputs should correlate strongly: r = {corr}"
        );
    }

    #[test]
    fn buffered_export_matches_abstraction_better() {
        let network = net(71);
        let buffered = export_network_with(
            &network,
            &ExportConfig {
                buffered_stages: true,
            },
        )
        .unwrap();
        let unbuffered = export_network_with(
            &network,
            &ExportConfig {
                buffered_stages: false,
            },
        )
        .unwrap();
        let mut rng = lrng::seeded(5);
        let x = lrng::uniform_matrix(&mut rng, 10, 4, -0.6, 0.6);
        let scale = network.config().logit_scale;
        let rmse_of = |exported: &ExportedNetwork| -> f64 {
            let mut sse = 0.0;
            let mut n = 0usize;
            let logits = network.predict(&x).unwrap();
            for i in 0..x.rows() {
                let sim = exported.simulate(x.row_slice(i)).unwrap();
                for k in 0..sim.len() {
                    let a = logits[(i, k)] / scale;
                    sse += (a - sim[k]).powi(2);
                    n += 1;
                }
            }
            (sse / n as f64).sqrt()
        };
        let rb = rmse_of(&buffered);
        let ru = rmse_of(&unbuffered);
        // At smoke fidelity the residual is dominated by surrogate fit
        // error, which buffering cannot reduce — allow a small relative
        // margin so the comparison tests loading, not fit noise.
        assert!(
            rb <= ru * 1.15 + 1e-12,
            "buffering should not hurt agreement: buffered {rb} vs unbuffered {ru}"
        );
        // Residual error is the stacked surrogate error (transfer +
        // negation fits) of the smoke fidelity, not loading.
        assert!(
            rb < 0.35,
            "buffered export should track the abstraction: {rb}"
        );
    }

    #[test]
    fn monte_carlo_reports_spread_and_yield() {
        let network = net(61);
        let exported = export_network(&network).unwrap();
        let mut rng = lrng::seeded(9);
        let x = lrng::uniform_matrix(&mut rng, 8, 4, -0.6, 0.6);
        let labels = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let report = exported.monte_carlo(&x, &labels, &VariationModel::default(), 10, 7);
        assert_eq!(report.accuracies.len(), 10);
        assert!(report.yield_rate() > 0.8, "yield {}", report.yield_rate());
        assert!(report.mean_accuracy() >= 0.0 && report.mean_accuracy() <= 1.0);
        assert!(report.mean_power() > 0.0);
        // Looser process → at least as much accuracy spread.
        let loose = exported.monte_carlo(&x, &labels, &VariationModel::loose(), 10, 7);
        assert!(loose.std_accuracy() + 1e-9 >= report.std_accuracy() * 0.2);
    }

    #[test]
    fn pruned_network_exports_fewer_devices() {
        let mut network = net(59);
        let full = export_network(&network).unwrap().stats();
        let mut values = network.param_values();
        for v in values[0].as_mut_slice().iter_mut().take(8) {
            *v *= 1e-4;
        }
        network.set_param_values(&values);
        network.build_masks();
        let pruned = export_network(&network).unwrap().stats();
        assert!(
            pruned.crossbar_resistors < full.crossbar_resistors,
            "{pruned:?} vs {full:?}"
        );
    }
}
