//! Property tests for power attribution: on any network and input,
//! the attribution tree's children sum to their parent on every node
//! (within `SUM_REL_TOL` relative) and the root equals the scalar
//! total the trainer optimizes against. This is the conservation law
//! the `runs power` audit relies on — if a stage were dropped or
//! double-counted the tree would silently lie, so the invariant is
//! pinned across random topologies, seeds, and input batches.

use pnc_core::activation::{fit_negation_model, SurrogateFidelity};
use pnc_core::{LearnableActivation, NetworkConfig, PrintedNetwork};
use pnc_linalg::rng as lrng;
use pnc_spice::AfKind;
use pnc_surrogate::NegationModel;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared smoke-fidelity activation/negation fit: the SPICE sweep
/// and MLP fit dominate wall-clock, and the invariant under test does
/// not depend on fit quality.
fn smoke_parts() -> &'static (LearnableActivation, NegationModel) {
    static CELL: OnceLock<(LearnableActivation, NegationModel)> = OnceLock::new();
    CELL.get_or_init(|| {
        let act = LearnableActivation::fit(AfKind::PTanh, &SurrogateFidelity::smoke()).unwrap();
        let neg = fit_negation_model(9).unwrap();
        (act, neg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn attribution_children_sum_to_parents_everywhere(
        seed in 0u64..1_000,
        inputs in 2usize..6,
        outputs in 2usize..5,
        rows in 1usize..9,
        data_seed in 0u64..1_000,
        span in 0.1f64..0.95,
    ) {
        let (act, neg) = smoke_parts().clone();
        let mut rng = lrng::seeded(seed);
        let net = PrintedNetwork::new(inputs, outputs, NetworkConfig::default(), act, neg, &mut rng)
            .unwrap();
        let x = lrng::uniform_matrix(&mut lrng::seeded(data_seed), rows, inputs, -span, span);

        let breakdown = net.power_report(&x).unwrap();
        let tree = breakdown.attribution();

        prop_assert!(tree.check_sum().is_ok(), "{:?}", tree.check_sum());
        let total = breakdown.total();
        prop_assert!(total > 0.0);
        prop_assert!(
            (tree.watts - total).abs() <= pnc_core::power::SUM_REL_TOL * total,
            "root {} vs total {}",
            tree.watts,
            total
        );
        // Leaves alone must also reconstruct the total: no power may
        // live only on an interior node.
        let leaf_sum: f64 = tree.leaves().iter().map(|(_, w)| w).sum();
        prop_assert!(
            (leaf_sum - total).abs() <= 64.0 * pnc_core::power::SUM_REL_TOL * total,
            "leaf sum {leaf_sum} vs total {total}"
        );
    }
}
