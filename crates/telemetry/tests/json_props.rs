//! Property tests for the hand-rolled JSON layer: serialized events
//! must re-parse and match themselves (`event_to_json` → `parse` →
//! `json_matches_event`), and the parser must reject malformed input
//! with `None` rather than panicking.

use pnc_telemetry::json::{event_to_json, json_matches_event, parse, Json};
use pnc_telemetry::{Event, Level};
use proptest::prelude::*;

/// Field keys ([`Event`] keys are `&'static str`, so generated events
/// draw from a fixed palette).
const KEYS: [&str; 8] = ["epoch", "loss", "note", "k", "power", "flag", "n", "detail"];

/// Characters chosen to stress escaping: quotes, backslashes, control
/// characters, multi-byte UTF-8 (2-, 3- and 4-byte), JSON structural
/// bytes.
const CHARS: [char; 18] = [
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{08}', '\u{0c}', '\u{01}', 'é', '✓',
    '😀', '{', '[',
];

fn text() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..CHARS.len(), 0..16)
        .prop_map(|ix| ix.into_iter().map(|i| CHARS[i]).collect())
}

/// One generated field: key index, variant selector, numeric payload,
/// string payload.
fn field() -> impl Strategy<Value = (usize, usize, i64, String)> {
    (
        0usize..KEYS.len(),
        0usize..6,
        -1_000_000_000i64..1_000_000_000,
        text(),
    )
}

fn build_event(fields: &[(usize, usize, i64, String)]) -> Event {
    let mut e = Event::new("generated", Level::Info);
    // JSON objects are last-wins on duplicate keys, so repeated keys
    // cannot round-trip by construction; keep the first of each.
    let mut used = [false; KEYS.len()];
    for (ki, variant, num, s) in fields {
        if std::mem::replace(&mut used[*ki], true) {
            continue;
        }
        let key = KEYS[*ki];
        e = match variant {
            0 => e.with_i64(key, *num),
            1 => e.with_u64(key, num.unsigned_abs()),
            // Dyadic rational: exactly representable, so the
            // round-trip comparison is bit-exact by construction.
            2 => e.with_f64(key, *num as f64 / 1024.0),
            3 => e.with_bool(key, *num % 2 == 0),
            4 => e.with_f64(key, f64::NAN), // serializes as null
            _ => e.with_str(key, s.clone()),
        };
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serialize → parse → match must hold for arbitrary field soups,
    /// including hostile strings and non-finite floats.
    #[test]
    fn events_round_trip(fields in proptest::collection::vec(field(), 0..10),
                         ts in 0.0..=2_000_000_000.0f64) {
        let event = build_event(&fields);
        let line = event_to_json(&event, Some(ts));
        prop_assert!(!line.contains('\n'), "JSONL must stay single-line: {line}");
        let parsed = parse(&line);
        prop_assert!(parsed.is_some(), "round-trip parse failed: {line}");
        let parsed = parsed.unwrap();
        prop_assert!(json_matches_event(&parsed, &event), "mismatch: {line}");
    }

    /// The parser never panics on arbitrary input — worst case it
    /// returns `None`.
    #[test]
    fn parser_survives_arbitrary_soup(s in text()) {
        let _ = parse(&s);
    }

    /// Truncating valid JSON anywhere must yield `None`, not a panic
    /// or a bogus success (a strict prefix of a JSON document is never
    /// itself a complete document).
    #[test]
    fn truncated_documents_are_rejected(fields in proptest::collection::vec(field(), 1..6),
                                        cut in 0.01..=0.99f64) {
        let line = event_to_json(&build_event(&fields), None);
        let mut at = ((line.len() as f64) * cut) as usize;
        while !line.is_char_boundary(at) {
            at -= 1;
        }
        if at > 0 && at < line.len() {
            prop_assert_eq!(parse(&line[..at]), None, "truncated at {}: {}", at, line);
        }
    }
}

#[test]
fn unicode_escapes_round_trip() {
    let v = parse("\"\\u00e9 \\u2713 \\ud83d\\ude00\"").expect("escapes parse");
    assert_eq!(v.as_str(), Some("é ✓ 😀"));
    // Escaped and literal encodings of the same text are equal.
    assert_eq!(parse("\"\\u00e9\""), parse("\"é\""));
    // Lone or reversed surrogate halves are malformed.
    assert_eq!(parse("\"\\ud83d\""), None);
    assert_eq!(parse("\"\\ude00\\ud83d\""), None);
}

#[test]
fn nested_arrays_parse() {
    let v = parse("[[1,[2,[3]]],[],[[\"x\"]]]").expect("nested arrays");
    let Json::Arr(outer) = &v else {
        panic!("not an array: {v:?}");
    };
    assert_eq!(outer.len(), 3);
    assert_eq!(outer[1], Json::Arr(Vec::new()));
}

#[test]
fn malformed_inputs_return_none_without_panicking() {
    for bad in [
        "",
        "   ",
        "{",
        "}",
        "[",
        "]",
        "{]",
        "[}",
        "{\"a\"}",
        "{\"a\":1,}",
        "[1 2]",
        "truefalse",
        "0x10",
        "1.2.3",
        "\"\\q\"",
        "\"\\u12\"",
        "{\"a\":1}}",
        "\u{0}",
    ] {
        assert_eq!(parse(bad), None, "accepted malformed input {bad:?}");
    }
}

#[test]
fn deep_nesting_returns_none_without_panicking() {
    let deep = format!("{}0{}", "[".repeat(200_000), "]".repeat(200_000));
    assert_eq!(parse(&deep), None);
}
