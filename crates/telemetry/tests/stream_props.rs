//! Property tests for the streamed histogram (`telemetry::stream`):
//! merging must be associative and commutative, and the summary of a
//! merged set must be bit-identical regardless of how the samples were
//! sharded across recorders or in what order the shards were merged —
//! the invariant behind the `--threads 1` vs `--threads 4` determinism
//! gate.

use pnc_telemetry::stream::StreamHistogram;
use proptest::prelude::*;

/// Collapses a summary into raw bits so equality checks catch even
/// sign-of-zero / NaN-payload differences, not just numeric equality.
fn bits(h: &StreamHistogram) -> (u64, [u64; 6]) {
    let s = h.summary();
    (
        s.count,
        [
            s.min.to_bits(),
            s.max.to_bits(),
            s.mean.to_bits(),
            s.p50.to_bits(),
            s.p95.to_bits(),
            s.p99.to_bits(),
        ],
    )
}

/// Records every sample into a fresh histogram at unit resolution.
fn recorded(samples: &[f64]) -> StreamHistogram {
    let h = StreamHistogram::with_ticks_per_unit(1.0);
    for &v in samples {
        h.record(v);
    }
    h
}

/// Merges `parts` into a fresh histogram, left to right.
fn merged(parts: &[&StreamHistogram]) -> StreamHistogram {
    let out = StreamHistogram::with_ticks_per_unit(1.0);
    for p in parts {
        out.merge_from(p);
    }
    out
}

/// Sample values: mostly plausible latencies, with a few hostile
/// entries (negative, NaN, infinite, huge) that `record` must drop or
/// saturate identically on every recorder.
fn sample() -> impl Strategy<Value = f64> {
    (0usize..8, 0.0..50_000.0f64).prop_map(|(kind, v)| match kind {
        0 => -v,            // dropped
        1 => f64::NAN,      // dropped
        2 => f64::INFINITY, // dropped
        3 => 1.0e18,        // saturates into the top bucket
        _ => v,
    })
}

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(sample(), 0..200)
}

/// Deterministic Fisher–Yates driven by a generated seed (the shim has
/// no shuffle strategy).
fn shuffled<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed >> 33
    };
    for i in (1..out.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merge is commutative: `a ⊕ b` and `b ⊕ a` summarize to the same
    /// bits.
    #[test]
    fn merge_is_commutative(xs in samples(), ys in samples()) {
        let (a, b) = (recorded(&xs), recorded(&ys));
        prop_assert_eq!(bits(&merged(&[&a, &b])), bits(&merged(&[&b, &a])));
    }

    /// Merge is associative: `(a ⊕ b) ⊕ c` equals `a ⊕ (b ⊕ c)`.
    #[test]
    fn merge_is_associative(xs in samples(), ys in samples(), zs in samples()) {
        let (a, b, c) = (recorded(&xs), recorded(&ys), recorded(&zs));
        let left = merged(&[&merged(&[&a, &b]), &c]);
        let right = merged(&[&a, &merged(&[&b, &c])]);
        prop_assert_eq!(bits(&left), bits(&right));
    }

    /// The `--threads 1` vs `--threads 4` gate in miniature: one
    /// recorder taking every sample in order must summarize
    /// bit-identically to four recorders fed round-robin (arbitrary
    /// per-sample shard assignment) whose shards are merged in an
    /// arbitrary order.
    #[test]
    fn sharded_recording_is_bit_identical(
        xs in samples(),
        shards in proptest::collection::vec(0usize..4, 0..200),
        seed in 0u64..u64::MAX,
    ) {
        let sequential = recorded(&xs);

        let workers: Vec<StreamHistogram> =
            (0..4).map(|_| StreamHistogram::with_ticks_per_unit(1.0)).collect();
        for (i, &v) in xs.iter().enumerate() {
            let w = shards.get(i).copied().unwrap_or(i % 4);
            workers[w].record(v);
        }
        let order = shuffled(&[0usize, 1, 2, 3], seed);
        let refs: Vec<&StreamHistogram> = order.iter().map(|&i| &workers[i]).collect();
        let parallel = merged(&refs);

        prop_assert_eq!(bits(&sequential), bits(&parallel));
    }

    /// Recording order within one histogram is irrelevant too: a
    /// shuffled replay of the same samples gives the same bits.
    #[test]
    fn recording_order_is_irrelevant(xs in samples(), seed in 0u64..u64::MAX) {
        let shuffled_xs = shuffled(&xs, seed);
        prop_assert_eq!(bits(&recorded(&xs)), bits(&recorded(&shuffled_xs)));
    }
}
