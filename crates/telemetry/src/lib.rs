//! # pnc-telemetry
//!
//! Structured instrumentation for the pNC training/simulation stack —
//! std-only, no external dependencies.
//!
//! The crate is organized around four ideas:
//!
//! * **Events** ([`Event`]): named, leveled records with typed
//!   key/value fields — one epoch, one augmented-Lagrangian outer
//!   iteration, one DC solve.
//! * **Sinks** ([`Sink`]): pluggable event consumers.
//!   [`ConsoleSink`] renders level-filtered human-readable lines,
//!   [`JsonlSink`] writes one self-describing JSON object per line for
//!   machine analysis (`jq`-able), [`MemorySink`] buffers events for
//!   tests, and [`MultiSink`] fans out to several sinks at once.
//! * **A cheap handle** ([`Telemetry`]): the object that gets threaded
//!   through the stack. A disabled handle is a `None` — emitting
//!   through it costs one branch and never constructs the event, so
//!   instrumented hot paths run at full speed when nobody listens.
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`], [`Span`]):
//!   aggregation primitives for quantities too hot to emit one event
//!   each — Newton iterations, epoch durations — with percentile
//!   summaries (p50/p95/p99) that can be flushed as a single event.
//! * **Profiling** ([`Profiler`], [`ScopedSpan`]): hierarchical
//!   wall-clock span trees with per-name call/total/self aggregation
//!   ([`ProfileReport`]) and Chrome trace-event export ([`trace`]),
//!   attachable to a [`Telemetry`] handle so one opt-in at the top of
//!   a run profiles the whole stack.
//! * **Run registry** ([`registry`]): crash-safe per-run directories
//!   (`manifest.json` + `metrics.jsonl` + `summary.json`) and
//!   field-by-field cross-run diffs with a noise floor
//!   ([`diff_runs`]).
//!
//! # Example
//!
//! ```
//! use pnc_telemetry::{Event, Level, MemorySink, Telemetry};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let tel = Telemetry::with_sink(sink.clone());
//! tel.emit(|| {
//!     Event::new("epoch", Level::Info)
//!         .with_u64("epoch", 1)
//!         .with_f64("loss", 0.73)
//! });
//! assert_eq!(sink.events().len(), 1);
//!
//! let off = Telemetry::disabled();
//! off.emit(|| unreachable!("disabled handles never build events"));
//! ```

// `deny` rather than `forbid`: the allocation-accounting module needs
// exactly one scoped `#[allow(unsafe_code)]` for its `GlobalAlloc`
// impl (the trait is unsafe by signature); everything else stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
mod event;
pub mod json;
mod metrics;
pub mod profile;
pub mod registry;
mod sink;
pub mod stream;
pub mod trace;
pub mod trend;

pub use alloc::{AllocSnapshot, CountingAllocator};
pub use event::{Event, Level, Value};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, PercentileError};
pub use profile::{PhaseStat, ProfileReport, Profiler, ScopedSpan, SpanRecord};
pub use registry::{
    diff_runs, ExitStatus, RunDiff, RunHandle, RunManifest, RunRecord, RunRegistry, RunSummary,
};
pub use sink::{ConsoleSink, JsonlSink, MemorySink, MultiSink, NullSink, Sink};
pub use stream::{MetricsHandle, MetricsRegistry, StreamHistogram};
pub use trend::{TrendConfig, TrendReport, TrendSeries};

use std::sync::Arc;
use std::time::Instant;

/// A cheap, cloneable handle to an optional sink. This is the type to
/// thread through APIs: `Telemetry::disabled()` makes every emit a
/// single branch, so instrumentation can stay unconditionally wired.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn Sink>>,
    profiler: Profiler,
    metrics: MetricsHandle,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Telemetry {
    /// A handle that drops everything without constructing it.
    pub fn disabled() -> Self {
        Telemetry {
            sink: None,
            profiler: Profiler::disabled(),
            metrics: MetricsHandle::disabled(),
        }
    }

    /// A handle that forwards every event to `sink`.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        Telemetry {
            sink: Some(sink),
            profiler: Profiler::disabled(),
            metrics: MetricsHandle::disabled(),
        }
    }

    /// Attaches a profiling session to this handle. Code that already
    /// receives a `Telemetry` (the SPICE solver, surrogate fits) opens
    /// scopes through [`Telemetry::profiler`], so one attachment at
    /// the top of a run profiles the whole stack.
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// The attached profiler (disabled by default: scopes are inert).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Attaches a streaming-metrics registry to this handle; code that
    /// already receives a `Telemetry` reaches named histograms through
    /// [`Telemetry::metrics`], so one attachment at the top of a run
    /// collects metrics from the whole stack.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = MetricsHandle::new(registry);
        self
    }

    /// The attached metrics handle (disabled by default: its
    /// histograms are inert).
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event built by `build` — the closure runs only when a
    /// sink is attached, so field formatting is free when disabled.
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.emit(&build());
        }
    }

    /// Emits an already-built event.
    pub fn emit_event(&self, event: Event) {
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
    }

    /// Starts a wall-clock span; [`Span::finish`] (or drop) emits a
    /// `"span"` event with the duration in milliseconds.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            tel: self.clone(),
            name,
            started: Instant::now(),
            finished: false,
        }
    }

    /// Asks the attached sink (if any) to flush buffered output.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

/// A plain monotonic wall-clock timer. This is the *only* sanctioned
/// way to read elapsed time outside `pnc-telemetry` (lint rule L007
/// bans raw `std::time::Instant::now()` elsewhere), so every timing
/// measurement flows through a type the observability layer owns and
/// can account for.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed time since start (or the last [`Stopwatch::lap_ms`]).
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Elapsed milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Elapsed whole nanoseconds, saturating.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Returns the elapsed milliseconds and restarts the timer — the
    /// between-ticks pattern (per-epoch durations).
    pub fn lap_ms(&mut self) -> f64 {
        let now = Instant::now();
        let ms = now.duration_since(self.started).as_secs_f64() * 1e3;
        self.started = now;
        ms
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// A wall-clock timer that reports its duration as an event. Created
/// by [`Telemetry::span`].
#[derive(Debug)]
pub struct Span {
    tel: Telemetry,
    name: &'static str,
    started: Instant,
    finished: bool,
}

impl Span {
    /// Elapsed time so far, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Ends the span now and emits the timing event.
    pub fn finish(mut self) {
        self.emit();
    }

    fn emit(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let ms = self.elapsed_ms();
        let name = self.name;
        self.tel.emit(|| {
            Event::new("span", Level::Debug)
                .with_str("span", name)
                .with_f64("duration_ms", ms)
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_builds_events() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        tel.emit(|| panic!("must not be called"));
    }

    #[test]
    fn enabled_handle_forwards_events() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        assert!(tel.enabled());
        tel.emit(|| Event::new("x", Level::Info).with_u64("k", 3));
        tel.emit_event(Event::new("y", Level::Warn));
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "x");
        assert_eq!(events[1].level, Level::Warn);
    }

    #[test]
    fn spans_emit_durations() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        {
            let _span = tel.span("work");
        }
        tel.span("explicit").finish();
        let events = sink.events();
        assert_eq!(events.len(), 2);
        for e in &events {
            assert_eq!(e.name, "span");
            let ms = e.get_f64("duration_ms").expect("duration field");
            assert!(ms >= 0.0);
        }
        assert_eq!(events[0].get_str("span"), Some("work"));
        assert_eq!(events[1].get_str("span"), Some("explicit"));
    }

    #[test]
    fn profiler_attaches_to_telemetry() {
        let tel = Telemetry::disabled();
        assert!(!tel.profiler().is_enabled());
        let prof = Profiler::enabled();
        let tel = tel.with_profiler(prof.clone());
        {
            let _scope = tel.profiler().scope("attached");
        }
        assert_eq!(prof.span_count(), 1);
        assert_eq!(prof.spans()[0].name, "attached");
    }

    #[test]
    fn stopwatch_measures_and_laps() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(sw.elapsed_ms() >= 1.0);
        assert!(sw.elapsed_ns() >= 1_000_000);
        let lap = sw.lap_ms();
        assert!(lap >= 1.0);
        // After a lap, the clock restarted.
        assert!(sw.elapsed_ms() <= lap + 1000.0);
    }

    #[test]
    fn metrics_registry_attaches_to_telemetry() {
        let tel = Telemetry::disabled();
        assert!(!tel.metrics().is_enabled());
        assert!(!tel.metrics().histogram("x").is_enabled());
        let reg = Arc::new(MetricsRegistry::new());
        let tel = tel.with_metrics(Arc::clone(&reg));
        tel.metrics().histogram("x").record(1.0);
        assert_eq!(reg.histogram("x").count(), 1);
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let tel2 = tel.clone();
        tel2.emit(|| Event::new("from_clone", Level::Info));
        assert_eq!(sink.events().len(), 1);
    }
}
