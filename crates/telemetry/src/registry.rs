//! Run registry: crash-safe persistent run directories.
//!
//! Every train/characterize/experiment invocation can claim a run
//! directory under a registry root (conventionally `runs/`):
//!
//! ```text
//! runs/<run-id>/
//!   manifest.json    CLI args, resolved config, dataset, seed,
//!                    git SHA, timestamps, exit status
//!   metrics.jsonl    append-only event stream (the JSONL sink)
//!   summary.json     final metrics, written on completion/abort
//!   postmortem.md    written only when a watchdog aborts the run
//! ```
//!
//! The manifest is written *at start* (status `running`) and rewritten
//! atomically (temp file + rename) on every mutation, so a crashed or
//! killed run still leaves a readable record of what it was. The
//! metrics stream reuses [`JsonlSink`], which flushes per event for the
//! same reason.
//!
//! [`diff_runs`] compares two persisted runs field by field and flags
//! real deltas against a noise floor — the run-level analogue of the
//! bench harness's `perf_snapshot --compare`. Wall-clock times are
//! reported but never flagged (timing is noise); configuration and
//! metric drift is.

use crate::json::{parse, write_escaped, Json};
use crate::sink::JsonlSink;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Bumped when the on-disk layout changes incompatibly.
pub const FORMAT_VERSION: u64 = 1;

/// Relative delta below which a numeric difference between two runs is
/// considered noise by [`diff_runs`]. Seed-identical runs are
/// deterministic, so the default floor is tight.
pub const DEFAULT_NOISE_FLOOR: f64 = 1e-6;

/// How a run ended (or hasn't yet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitStatus {
    /// The run is (or was, if the process died) in flight.
    Running,
    /// The run finished normally.
    Completed,
    /// The run was aborted; the payload names why (e.g. a watchdog
    /// diagnosis like `non_finite`).
    Aborted(String),
}

impl ExitStatus {
    /// Stable lower-case tag used in JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExitStatus::Running => "running",
            ExitStatus::Completed => "completed",
            ExitStatus::Aborted(_) => "aborted",
        }
    }

    fn from_json(status: Option<&str>, reason: Option<&str>) -> Option<ExitStatus> {
        match status? {
            "running" => Some(ExitStatus::Running),
            "completed" => Some(ExitStatus::Completed),
            "aborted" => Some(ExitStatus::Aborted(reason.unwrap_or("unknown").to_string())),
            _ => None,
        }
    }
}

/// Everything needed to identify, reproduce and audit one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Unique directory name under the registry root.
    pub run_id: String,
    /// CLI subcommand (`train`, `characterize`, …).
    pub command: String,
    /// Raw CLI arguments after the subcommand, in order.
    pub args: Vec<String>,
    /// Dataset identifier, when the run is bound to one.
    pub dataset: Option<String>,
    /// RNG seed actually used (network init + data split).
    pub seed: Option<u64>,
    /// Git commit SHA of the working tree, when resolvable.
    pub git_sha: Option<String>,
    /// Unix timestamp (fractional seconds) when the run started.
    pub started_unix_secs: f64,
    /// Unix timestamp when the run ended; `None` while running (or if
    /// the process died).
    pub ended_unix_secs: Option<f64>,
    /// Exit status.
    pub status: ExitStatus,
    /// Resolved configuration knobs (stringified key → value).
    pub config: BTreeMap<String, String>,
}

impl RunManifest {
    /// Renders the manifest as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        push_kv_u64(&mut out, "format_version", FORMAT_VERSION, true);
        push_kv_str(&mut out, "run_id", &self.run_id, true);
        push_kv_str(&mut out, "command", &self.command, true);
        out.push_str("  \"args\": [");
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_escaped(&mut out, a);
        }
        out.push_str("],\n");
        push_kv_opt_str(&mut out, "dataset", self.dataset.as_deref(), true);
        push_kv_opt_u64(&mut out, "seed", self.seed, true);
        push_kv_opt_str(&mut out, "git_sha", self.git_sha.as_deref(), true);
        push_kv_f64(&mut out, "started_unix_secs", self.started_unix_secs, true);
        push_kv_opt_f64(&mut out, "ended_unix_secs", self.ended_unix_secs, true);
        push_kv_str(&mut out, "status", self.status.as_str(), true);
        if let ExitStatus::Aborted(reason) = &self.status {
            push_kv_str(&mut out, "abort_reason", reason, true);
        }
        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_escaped(&mut out, k);
            out.push_str(": ");
            write_escaped(&mut out, v);
        }
        if !self.config.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a manifest previously written by [`RunManifest::to_json`].
    /// Returns `None` on malformed input or an unknown format version.
    pub fn from_json(text: &str) -> Option<RunManifest> {
        let json = parse(text)?;
        if json.get("format_version").and_then(Json::as_f64) != Some(FORMAT_VERSION as f64) {
            return None;
        }
        let args = match json.get("args")? {
            Json::Arr(items) => items
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        let mut config = BTreeMap::new();
        if let Some(Json::Obj(map)) = json.get("config") {
            for (k, v) in map {
                config.insert(k.clone(), v.as_str()?.to_string());
            }
        }
        Some(RunManifest {
            run_id: json.get("run_id")?.as_str()?.to_string(),
            command: json.get("command")?.as_str()?.to_string(),
            args,
            dataset: opt_str(&json, "dataset"),
            seed: json.get("seed").and_then(Json::as_f64).map(|v| v as u64),
            git_sha: opt_str(&json, "git_sha"),
            started_unix_secs: json.get("started_unix_secs")?.as_f64()?,
            ended_unix_secs: json.get("ended_unix_secs").and_then(Json::as_f64),
            status: ExitStatus::from_json(
                json.get("status").and_then(Json::as_str),
                json.get("abort_reason").and_then(Json::as_str),
            )?,
            config,
        })
    }
}

/// One surrogate-vs-SPICE power spot check recorded by the fidelity
/// monitor (see `pnc-train`): the surrogate-modelled circuit power
/// re-evaluated through the SPICE path at a training checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityRecord {
    /// Global epoch counter at the check (spans outer iterations).
    pub epoch: u64,
    /// Cadence that triggered the check: `"epoch"` or `"final"`.
    pub label: String,
    /// Surrogate-path circuit power, watts.
    pub surrogate_watts: f64,
    /// SPICE-path circuit power, watts.
    pub spice_watts: f64,
    /// `|surrogate − spice|`, watts.
    pub abs_err_watts: f64,
    /// Absolute error relative to the SPICE value.
    pub rel_err: f64,
}

/// Final rollup written when a run completes or aborts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// How the run ended.
    pub status: ExitStatus,
    /// Total run wall clock, milliseconds.
    pub wall_clock_ms: f64,
    /// Named scalar results (final accuracy, power vs. budget, device
    /// counts, …). Non-finite values serialize as `null` and read back
    /// as NaN.
    pub metrics: BTreeMap<String, f64>,
    /// Named boolean results (feasible, rescued, …).
    pub flags: BTreeMap<String, bool>,
    /// Surrogate-fidelity spot checks, in the order they ran. Empty
    /// when the run did not enable the fidelity monitor.
    pub fidelity: Vec<FidelityRecord>,
}

impl RunSummary {
    /// Renders the summary as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        push_kv_u64(&mut out, "format_version", FORMAT_VERSION, true);
        push_kv_str(&mut out, "status", self.status.as_str(), true);
        if let ExitStatus::Aborted(reason) = &self.status {
            push_kv_str(&mut out, "abort_reason", reason, true);
        }
        push_kv_f64(&mut out, "wall_clock_ms", self.wall_clock_ms, true);
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_escaped(&mut out, k);
            out.push_str(": ");
            push_f64(&mut out, *v);
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"flags\": {");
        for (i, (k, v)) in self.flags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_escaped(&mut out, k);
            out.push_str(if *v { ": true" } else { ": false" });
        }
        if !self.flags.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"fidelity\": [");
        for (i, f) in self.fidelity.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"epoch\": ");
            out.push_str(&f.epoch.to_string());
            out.push_str(", \"label\": ");
            write_escaped(&mut out, &f.label);
            out.push_str(", \"surrogate_watts\": ");
            push_f64(&mut out, f.surrogate_watts);
            out.push_str(", \"spice_watts\": ");
            push_f64(&mut out, f.spice_watts);
            out.push_str(", \"abs_err_watts\": ");
            push_f64(&mut out, f.abs_err_watts);
            out.push_str(", \"rel_err\": ");
            push_f64(&mut out, f.rel_err);
            out.push('}');
        }
        if !self.fidelity.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a summary previously written by [`RunSummary::to_json`].
    pub fn from_json(text: &str) -> Option<RunSummary> {
        let json = parse(text)?;
        if json.get("format_version").and_then(Json::as_f64) != Some(FORMAT_VERSION as f64) {
            return None;
        }
        let mut metrics = BTreeMap::new();
        if let Some(Json::Obj(map)) = json.get("metrics") {
            for (k, v) in map {
                let value = match v {
                    Json::Num(x) => *x,
                    Json::Null => f64::NAN,
                    _ => return None,
                };
                metrics.insert(k.clone(), value);
            }
        }
        let mut flags = BTreeMap::new();
        if let Some(Json::Obj(map)) = json.get("flags") {
            for (k, v) in map {
                flags.insert(k.clone(), v.as_bool()?);
            }
        }
        // Optional: summaries written before the fidelity monitor
        // existed parse back with an empty check list.
        let mut fidelity = Vec::new();
        if let Some(Json::Arr(items)) = json.get("fidelity") {
            for item in items {
                fidelity.push(FidelityRecord {
                    epoch: item.get("epoch")?.as_f64()? as u64,
                    label: item.get("label")?.as_str()?.to_string(),
                    surrogate_watts: item.get("surrogate_watts")?.as_f64()?,
                    spice_watts: item.get("spice_watts")?.as_f64()?,
                    abs_err_watts: item.get("abs_err_watts")?.as_f64()?,
                    rel_err: item.get("rel_err")?.as_f64()?,
                });
            }
        }
        Some(RunSummary {
            status: ExitStatus::from_json(
                json.get("status").and_then(Json::as_str),
                json.get("abort_reason").and_then(Json::as_str),
            )?,
            wall_clock_ms: json.get("wall_clock_ms")?.as_f64()?,
            metrics,
            flags,
            fidelity,
        })
    }
}

/// A fully loaded run: its manifest plus the summary, when one was
/// written.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The run's manifest.
    pub manifest: RunManifest,
    /// The run's summary; `None` when the process died before writing
    /// one.
    pub summary: Option<RunSummary>,
}

/// The registry root (conventionally `runs/`): creates, lists and
/// loads run directories.
#[derive(Debug, Clone)]
pub struct RunRegistry {
    root: PathBuf,
}

impl RunRegistry {
    /// A registry rooted at `root`. The directory is created lazily by
    /// [`RunRegistry::create`].
    pub fn new(root: impl Into<PathBuf>) -> Self {
        RunRegistry { root: root.into() }
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory a given run id maps to.
    pub fn run_dir(&self, run_id: &str) -> PathBuf {
        self.root.join(run_id)
    }

    /// Claims a fresh run directory and writes the initial manifest
    /// (status `running`). `args` are the raw CLI arguments after the
    /// subcommand.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable root, …).
    pub fn create(&self, command: &str, args: &[String]) -> io::Result<RunHandle> {
        fs::create_dir_all(&self.root)?;
        let started = now_unix_secs();
        let base = format!("{}-{command}", started as u64);
        // Claim via create_dir: it fails if the id is taken, so two
        // runs in the same second get distinct suffixes.
        let (run_id, dir) = {
            let mut n = 0u32;
            loop {
                let candidate = if n == 0 {
                    base.clone()
                } else {
                    format!("{base}-{n}")
                };
                let dir = self.root.join(&candidate);
                match fs::create_dir(&dir) {
                    Ok(()) => break (candidate, dir),
                    Err(e) if e.kind() == io::ErrorKind::AlreadyExists && n < 10_000 => n += 1,
                    Err(e) => return Err(e),
                }
            }
        };
        let manifest = RunManifest {
            run_id,
            command: command.to_string(),
            args: args.to_vec(),
            dataset: None,
            seed: None,
            git_sha: read_git_sha(Path::new(".")),
            started_unix_secs: started,
            ended_unix_secs: None,
            status: ExitStatus::Running,
            config: BTreeMap::new(),
        };
        write_atomic(&dir.join("manifest.json"), &manifest.to_json())?;
        let metrics = Arc::new(JsonlSink::create(dir.join("metrics.jsonl"))?);
        Ok(RunHandle {
            dir,
            manifest,
            metrics,
            started: Instant::now(),
        })
    }

    /// Loads every run's manifest, oldest first.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; unreadable or malformed run
    /// directories are skipped, not fatal (a registry survives partial
    /// damage).
    pub fn list(&self) -> io::Result<Vec<RunManifest>> {
        let mut runs = Vec::new();
        let entries = match fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(runs),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let manifest_path = entry.path().join("manifest.json");
            let Ok(text) = fs::read_to_string(&manifest_path) else {
                continue;
            };
            if let Some(m) = RunManifest::from_json(&text) {
                runs.push(m);
            }
        }
        runs.sort_by(|a, b| {
            a.started_unix_secs
                .total_cmp(&b.started_unix_secs)
                .then_with(|| a.run_id.cmp(&b.run_id))
        });
        Ok(runs)
    }

    /// Loads one run's manifest and (if present) summary.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::NotFound`] for unknown ids and
    /// [`io::ErrorKind::InvalidData`] for malformed files.
    pub fn load(&self, run_id: &str) -> io::Result<RunRecord> {
        let dir = self.run_dir(run_id);
        let text = fs::read_to_string(dir.join("manifest.json"))?;
        let manifest = RunManifest::from_json(&text).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed manifest for run {run_id}"),
            )
        })?;
        let summary = match fs::read_to_string(dir.join("summary.json")) {
            Ok(text) => Some(RunSummary::from_json(&text).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed summary for run {run_id}"),
                )
            })?),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        Ok(RunRecord { manifest, summary })
    }
}

/// A live run: owns the directory and keeps the manifest current on
/// disk. Consume with [`RunHandle::finish`] or [`RunHandle::abort`];
/// dropping without either leaves status `running` on disk — exactly
/// what a crashed run should look like.
#[derive(Debug)]
pub struct RunHandle {
    dir: PathBuf,
    manifest: RunManifest,
    metrics: Arc<JsonlSink>,
    started: Instant,
}

impl RunHandle {
    /// This run's id (the directory name).
    pub fn run_id(&self) -> &str {
        &self.manifest.run_id
    }

    /// This run's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current manifest.
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// The append-only `metrics.jsonl` sink; clone it into a
    /// `MultiSink` so the run directory receives every event the
    /// console/log sinks do.
    pub fn metrics_sink(&self) -> Arc<JsonlSink> {
        Arc::clone(&self.metrics)
    }

    /// Records the dataset id and rewrites the manifest.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the atomic rewrite.
    pub fn set_dataset(&mut self, dataset: &str) -> io::Result<()> {
        self.manifest.dataset = Some(dataset.to_string());
        self.persist()
    }

    /// Records the RNG seed and rewrites the manifest.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the atomic rewrite.
    pub fn set_seed(&mut self, seed: u64) -> io::Result<()> {
        self.manifest.seed = Some(seed);
        self.persist()
    }

    /// Records one resolved configuration knob and rewrites the
    /// manifest.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the atomic rewrite.
    pub fn set_config(&mut self, key: &str, value: impl ToString) -> io::Result<()> {
        self.manifest
            .config
            .insert(key.to_string(), value.to_string());
        self.persist()
    }

    /// Writes `postmortem.md` into the run directory and returns its
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_postmortem(&self, markdown: &str) -> io::Result<PathBuf> {
        let path = self.dir.join("postmortem.md");
        write_atomic(&path, markdown)?;
        Ok(path)
    }

    /// Marks the run completed: writes `summary.json` and the final
    /// manifest, and returns the summary.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish(
        self,
        metrics: BTreeMap<String, f64>,
        flags: BTreeMap<String, bool>,
    ) -> io::Result<RunSummary> {
        self.seal(ExitStatus::Completed, metrics, flags, Vec::new())
    }

    /// Like [`RunHandle::finish`], additionally recording the
    /// surrogate-fidelity spot checks gathered during the run.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish_with_fidelity(
        self,
        metrics: BTreeMap<String, f64>,
        flags: BTreeMap<String, bool>,
        fidelity: Vec<FidelityRecord>,
    ) -> io::Result<RunSummary> {
        self.seal(ExitStatus::Completed, metrics, flags, fidelity)
    }

    /// Marks the run aborted with `reason` (e.g. a watchdog diagnosis
    /// name): writes `summary.json` and the final manifest.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn abort(
        self,
        reason: &str,
        metrics: BTreeMap<String, f64>,
        flags: BTreeMap<String, bool>,
    ) -> io::Result<RunSummary> {
        self.seal(
            ExitStatus::Aborted(reason.to_string()),
            metrics,
            flags,
            Vec::new(),
        )
    }

    fn seal(
        mut self,
        status: ExitStatus,
        metrics: BTreeMap<String, f64>,
        flags: BTreeMap<String, bool>,
        fidelity: Vec<FidelityRecord>,
    ) -> io::Result<RunSummary> {
        use crate::sink::Sink as _;
        self.metrics.flush();
        self.manifest.status = status.clone();
        self.manifest.ended_unix_secs = Some(now_unix_secs());
        self.persist()?;
        let summary = RunSummary {
            status,
            wall_clock_ms: self.started.elapsed().as_secs_f64() * 1e3,
            metrics,
            flags,
            fidelity,
        };
        write_atomic(&self.dir.join("summary.json"), &summary.to_json())?;
        Ok(summary)
    }

    fn persist(&self) -> io::Result<()> {
        write_atomic(&self.dir.join("manifest.json"), &self.manifest.to_json())
    }
}

/// One compared field in a [`RunDiff`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Dotted field name (`seed`, `config.budget_mw`,
    /// `metrics.test_accuracy`, …).
    pub key: String,
    /// Rendered value from run A.
    pub a: String,
    /// Rendered value from run B.
    pub b: String,
    /// Numeric delta `b − a`, when both sides are numeric.
    pub delta: Option<f64>,
    /// Whether the difference is real (above the noise floor for
    /// numerics; any mismatch for identity/config fields). Timing
    /// fields are never flagged.
    pub flagged: bool,
}

/// Field-by-field comparison of two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDiff {
    /// Run A's id.
    pub a_id: String,
    /// Run B's id.
    pub b_id: String,
    /// Compared fields, identity first, then config, then summary.
    pub rows: Vec<DiffRow>,
}

impl RunDiff {
    /// Rows whose difference is above the noise floor.
    pub fn flagged(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| r.flagged)
    }

    /// Number of flagged rows.
    pub fn flagged_count(&self) -> usize {
        self.flagged().count()
    }

    /// Renders the diff as a markdown table. Flagged rows carry a `!!`
    /// marker; a trailing line states the verdict.
    pub fn render_markdown(&self) -> String {
        let mut out = format!("# Run diff: `{}` vs `{}`\n\n", self.a_id, self.b_id);
        out.push_str("| field | A | B | delta | |\n|---|---|---|---|---|\n");
        for row in &self.rows {
            let delta = row.delta.map_or_else(String::new, |d| format!("{d:+.6e}"));
            let mark = if row.flagged { "!!" } else { "" };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                row.key, row.a, row.b, delta, mark
            ));
        }
        let n = self.flagged_count();
        if n == 0 {
            out.push_str("\nNo differences above the noise floor.\n");
        } else {
            out.push_str(&format!(
                "\n{n} difference{} above the noise floor.\n",
                if n == 1 { "" } else { "s" }
            ));
        }
        out
    }
}

/// Compares two runs. Identity fields (`command`, `dataset`, `seed`,
/// `config.*`, `status`) flag on any mismatch; numeric summary metrics
/// flag when the relative delta exceeds `noise_floor`
/// (dimensionless); wall-clock, timestamp, and execution-only fields
/// (`config.threads` — the executor is deterministic, so thread count
/// can only change timing, and the CI determinism gate diffs runs
/// *across* thread counts) are reported but never flagged.
pub fn diff_runs(a: &RunRecord, b: &RunRecord, noise_floor: f64) -> RunDiff {
    let mut rows = Vec::new();
    let exact = |key: &str, a: String, b: String, rows: &mut Vec<DiffRow>| {
        let flagged = a != b;
        rows.push(DiffRow {
            key: key.to_string(),
            a,
            b,
            delta: None,
            flagged,
        });
    };
    let opt = |v: &Option<String>| v.clone().unwrap_or_else(|| "—".to_string());

    let (ma, mb) = (&a.manifest, &b.manifest);
    exact("command", ma.command.clone(), mb.command.clone(), &mut rows);
    exact("dataset", opt(&ma.dataset), opt(&mb.dataset), &mut rows);
    exact(
        "seed",
        ma.seed.map_or_else(|| "—".into(), |s| s.to_string()),
        mb.seed.map_or_else(|| "—".into(), |s| s.to_string()),
        &mut rows,
    );
    exact("git_sha", opt(&ma.git_sha), opt(&mb.git_sha), &mut rows);
    exact(
        "status",
        ma.status.as_str().to_string(),
        mb.status.as_str().to_string(),
        &mut rows,
    );
    for key in union_keys(ma.config.keys(), mb.config.keys()) {
        let get =
            |m: &BTreeMap<String, String>| m.get(&key).cloned().unwrap_or_else(|| "—".to_string());
        if key == "threads" {
            rows.push(DiffRow {
                key: "config.threads".to_string(),
                a: get(&ma.config),
                b: get(&mb.config),
                delta: None,
                flagged: false,
            });
        } else {
            exact(
                &format!("config.{key}"),
                get(&ma.config),
                get(&mb.config),
                &mut rows,
            );
        }
    }

    let (sa, sb) = (&a.summary, &b.summary);
    match (sa, sb) {
        (Some(sa), Some(sb)) => {
            // Wall clock: reported, never flagged — two identical runs
            // still take different amounts of time.
            rows.push(DiffRow {
                key: "wall_clock_ms".to_string(),
                a: format!("{:.1}", sa.wall_clock_ms),
                b: format!("{:.1}", sb.wall_clock_ms),
                delta: Some(sb.wall_clock_ms - sa.wall_clock_ms),
                flagged: false,
            });
            for key in union_keys(sa.metrics.keys(), sb.metrics.keys()) {
                let va = sa.metrics.get(&key).copied();
                let vb = sb.metrics.get(&key).copied();
                let (delta, flagged) = match (va, vb) {
                    (Some(x), Some(y)) => {
                        let d = y - x;
                        let scale = x.abs().max(y.abs());
                        let same_nan = x.is_nan() && y.is_nan();
                        let real = !same_nan
                            && (d.is_nan() || (scale > 0.0 && d.abs() / scale > noise_floor));
                        (Some(d), real)
                    }
                    _ => (None, true), // metric present on one side only
                };
                let fmt =
                    |v: Option<f64>| v.map_or_else(|| "—".to_string(), |x| format!("{x:.6e}"));
                rows.push(DiffRow {
                    key: format!("metrics.{key}"),
                    a: fmt(va),
                    b: fmt(vb),
                    delta,
                    flagged,
                });
            }
            for key in union_keys(sa.flags.keys(), sb.flags.keys()) {
                let get = |m: &BTreeMap<String, bool>| {
                    m.get(&key)
                        .map_or_else(|| "—".to_string(), |b| b.to_string())
                };
                exact(
                    &format!("flags.{key}"),
                    get(&sa.flags),
                    get(&sb.flags),
                    &mut rows,
                );
            }
        }
        (None, None) => {}
        _ => exact(
            "summary",
            if sa.is_some() { "present" } else { "missing" }.to_string(),
            if sb.is_some() { "present" } else { "missing" }.to_string(),
            &mut rows,
        ),
    }

    RunDiff {
        a_id: a.manifest.run_id.clone(),
        b_id: b.manifest.run_id.clone(),
        rows,
    }
}

fn opt_str(json: &Json, key: &str) -> Option<String> {
    json.get(key).and_then(Json::as_str).map(str::to_string)
}

fn union_keys<'k>(
    a: impl Iterator<Item = &'k String>,
    b: impl Iterator<Item = &'k String>,
) -> Vec<String> {
    let mut keys: Vec<String> = a.chain(b).cloned().collect();
    keys.sort();
    keys.dedup();
    keys
}

/// Resolves the current git commit SHA by walking up from `start` to
/// the nearest `.git` and reading `HEAD` (following one level of
/// `ref:` indirection, including packed refs). Returns `None` outside
/// a repository — run records must work without git.
pub fn read_git_sha(start: &Path) -> Option<String> {
    let start = start.canonicalize().ok()?;
    for dir in start.ancestors() {
        let git = dir.join(".git");
        if !git.is_dir() {
            continue;
        }
        let head = fs::read_to_string(git.join("HEAD")).ok()?;
        let head = head.trim();
        if let Some(refname) = head.strip_prefix("ref: ") {
            if let Ok(sha) = fs::read_to_string(git.join(refname)) {
                return Some(sha.trim().to_string());
            }
            // Packed refs: lines of "<sha> <refname>".
            let packed = fs::read_to_string(git.join("packed-refs")).ok()?;
            return packed.lines().find_map(|line| {
                let (sha, name) = line.split_once(' ')?;
                (name == refname).then(|| sha.to_string())
            });
        }
        return Some(head.to_string());
    }
    None
}

/// Crash-safe file write: temp file in the same directory, then
/// rename. Readers never observe a half-written manifest.
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

fn now_unix_secs() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn push_kv_str(out: &mut String, key: &str, v: &str, comma: bool) {
    out.push_str("  ");
    write_escaped(out, key);
    out.push_str(": ");
    write_escaped(out, v);
    out.push_str(if comma { ",\n" } else { "\n" });
}

fn push_kv_opt_str(out: &mut String, key: &str, v: Option<&str>, comma: bool) {
    match v {
        Some(v) => push_kv_str(out, key, v, comma),
        None => {
            out.push_str("  ");
            write_escaped(out, key);
            out.push_str(": null");
            out.push_str(if comma { ",\n" } else { "\n" });
        }
    }
}

fn push_kv_u64(out: &mut String, key: &str, v: u64, comma: bool) {
    out.push_str("  ");
    write_escaped(out, key);
    out.push_str(": ");
    out.push_str(&v.to_string());
    out.push_str(if comma { ",\n" } else { "\n" });
}

fn push_kv_opt_u64(out: &mut String, key: &str, v: Option<u64>, comma: bool) {
    match v {
        Some(v) => push_kv_u64(out, key, v, comma),
        None => push_kv_opt_str(out, key, None, comma),
    }
}

fn push_kv_f64(out: &mut String, key: &str, v: f64, comma: bool) {
    out.push_str("  ");
    write_escaped(out, key);
    out.push_str(": ");
    push_f64(out, v);
    out.push_str(if comma { ",\n" } else { "\n" });
}

fn push_kv_opt_f64(out: &mut String, key: &str, v: Option<f64>, comma: bool) {
    match v {
        Some(v) => push_kv_f64(out, key, v, comma),
        None => push_kv_opt_str(out, key, None, comma),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Level, Sink};

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pnc-registry-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_manifest() -> RunManifest {
        RunManifest {
            run_id: "1722-train".to_string(),
            command: "train".to_string(),
            args: vec!["--data".into(), "iris".into(), "--seed".into(), "7".into()],
            dataset: Some("iris".to_string()),
            seed: Some(7),
            git_sha: Some("deadbeef".to_string()),
            started_unix_secs: 1_722_000_000.25,
            ended_unix_secs: Some(1_722_000_031.5),
            status: ExitStatus::Aborted("non_finite".to_string()),
            config: BTreeMap::from([
                ("budget_mw".to_string(), "0.45".to_string()),
                ("mu".to_string(), "2".to_string()),
            ]),
        }
    }

    fn sample_summary() -> RunSummary {
        RunSummary {
            status: ExitStatus::Completed,
            wall_clock_ms: 1234.5,
            metrics: BTreeMap::from([
                ("test_accuracy".to_string(), 0.91),
                ("power_mw".to_string(), 0.42),
                ("budget_gap".to_string(), f64::NAN),
            ]),
            flags: BTreeMap::from([("feasible".to_string(), true)]),
            fidelity: vec![FidelityRecord {
                epoch: 10,
                label: "epoch".to_string(),
                surrogate_watts: 1.0e-4,
                spice_watts: 1.1e-4,
                abs_err_watts: 1.0e-5,
                rel_err: 0.0909,
            }],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample_manifest();
        let text = m.to_json();
        let back = RunManifest::from_json(&text).expect("parse back");
        assert_eq!(back, m);
        // None fields round-trip too.
        let m2 = RunManifest {
            dataset: None,
            seed: None,
            git_sha: None,
            ended_unix_secs: None,
            status: ExitStatus::Running,
            config: BTreeMap::new(),
            ..m
        };
        assert_eq!(RunManifest::from_json(&m2.to_json()), Some(m2));
    }

    #[test]
    fn summary_round_trips_including_nan_metrics() {
        let s = sample_summary();
        let back = RunSummary::from_json(&s.to_json()).expect("parse back");
        assert_eq!(back.status, s.status);
        assert_eq!(back.wall_clock_ms, s.wall_clock_ms);
        assert_eq!(back.flags, s.flags);
        assert_eq!(back.metrics.len(), s.metrics.len());
        assert!(back.metrics["budget_gap"].is_nan());
        assert_eq!(back.metrics["test_accuracy"], 0.91);

        let aborted = RunSummary {
            status: ExitStatus::Aborted("non_finite".to_string()),
            ..s
        };
        assert_eq!(
            RunSummary::from_json(&aborted.to_json()).map(|s| s.status),
            Some(ExitStatus::Aborted("non_finite".to_string()))
        );
    }

    #[test]
    fn unknown_format_version_is_rejected() {
        let text = sample_manifest()
            .to_json()
            .replace("\"format_version\": 1", "\"format_version\": 999");
        assert_eq!(RunManifest::from_json(&text), None);
    }

    #[test]
    fn create_finish_and_load_a_run() {
        let root = temp_root("lifecycle");
        let reg = RunRegistry::new(&root);
        let mut run = reg
            .create("train", &["--data".into(), "iris".into()])
            .unwrap();
        run.set_dataset("iris").unwrap();
        run.set_seed(7).unwrap();
        run.set_config("budget_mw", 0.45).unwrap();
        let id = run.run_id().to_string();

        // Manifest is on disk and readable mid-run (crash safety).
        let mid = reg.load(&id).unwrap();
        assert_eq!(mid.manifest.status, ExitStatus::Running);
        assert_eq!(mid.manifest.seed, Some(7));
        assert_eq!(mid.manifest.config["budget_mw"], "0.45");
        assert!(mid.summary.is_none());

        // Metrics stream through the run's own sink.
        run.metrics_sink()
            .emit(&Event::new("epoch", Level::Info).with_u64("epoch", 1));

        let summary = run
            .finish(
                BTreeMap::from([("test_accuracy".to_string(), 0.9)]),
                BTreeMap::from([("feasible".to_string(), true)]),
            )
            .unwrap();
        assert_eq!(summary.status, ExitStatus::Completed);
        assert!(summary.wall_clock_ms >= 0.0);

        let done = reg.load(&id).unwrap();
        assert_eq!(done.manifest.status, ExitStatus::Completed);
        assert!(done.manifest.ended_unix_secs.is_some());
        let s = done.summary.expect("summary written");
        assert_eq!(s.metrics["test_accuracy"], 0.9);
        let jsonl = fs::read_to_string(reg.run_dir(&id).join("metrics.jsonl")).unwrap();
        assert!(jsonl.contains("\"event\":\"epoch\""));

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn aborted_run_keeps_postmortem_and_status() {
        let root = temp_root("abort");
        let reg = RunRegistry::new(&root);
        let run = reg.create("train", &[]).unwrap();
        let id = run.run_id().to_string();
        let pm = run
            .write_postmortem("# Run post-mortem\n\nnon_finite\n")
            .unwrap();
        assert!(pm.ends_with("postmortem.md"));
        run.abort("non_finite", BTreeMap::new(), BTreeMap::new())
            .unwrap();

        let rec = reg.load(&id).unwrap();
        assert_eq!(
            rec.manifest.status,
            ExitStatus::Aborted("non_finite".to_string())
        );
        let text = fs::read_to_string(reg.run_dir(&id).join("postmortem.md")).unwrap();
        assert!(text.contains("non_finite"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn list_orders_runs_and_survives_junk_directories() {
        let root = temp_root("list");
        let reg = RunRegistry::new(&root);
        assert!(reg.list().unwrap().is_empty(), "missing root is empty");
        let a = reg.create("train", &[]).unwrap();
        let b = reg.create("characterize", &[]).unwrap();
        // Junk that must not break listing.
        fs::create_dir_all(root.join("not-a-run")).unwrap();
        fs::write(root.join("not-a-run/manifest.json"), "{broken").unwrap();

        let ids: Vec<String> = reg.list().unwrap().into_iter().map(|m| m.run_id).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&a.run_id().to_string()));
        assert!(ids.contains(&b.run_id().to_string()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn same_second_runs_get_distinct_ids() {
        let root = temp_root("collide");
        let reg = RunRegistry::new(&root);
        let a = reg.create("train", &[]).unwrap();
        let b = reg.create("train", &[]).unwrap();
        assert_ne!(a.run_id(), b.run_id());
        let _ = fs::remove_dir_all(&root);
    }

    fn record(seed: u64, acc: f64) -> RunRecord {
        RunRecord {
            manifest: RunManifest {
                seed: Some(seed),
                status: ExitStatus::Completed,
                ..sample_manifest()
            },
            summary: Some(RunSummary {
                status: ExitStatus::Completed,
                wall_clock_ms: 100.0 + seed as f64,
                metrics: BTreeMap::from([("test_accuracy".to_string(), acc)]),
                flags: BTreeMap::from([("feasible".to_string(), true)]),
                fidelity: Vec::new(),
            }),
        }
    }

    #[test]
    fn self_diff_reports_no_flagged_rows() {
        let a = record(7, 0.9);
        let mut b = a.clone();
        // Identical run, different wall clock: still clean.
        b.summary.as_mut().unwrap().wall_clock_ms += 55.0;
        let diff = diff_runs(&a, &b, DEFAULT_NOISE_FLOOR);
        assert_eq!(diff.flagged_count(), 0, "{diff:?}");
        assert!(diff.render_markdown().contains("No differences"));
    }

    #[test]
    fn metric_drift_above_the_floor_is_flagged() {
        let a = record(7, 0.90);
        let b = record(7, 0.85);
        let diff = diff_runs(&a, &b, DEFAULT_NOISE_FLOOR);
        let flagged: Vec<&str> = diff.flagged().map(|r| r.key.as_str()).collect();
        assert_eq!(flagged, ["metrics.test_accuracy"]);
        let row = diff.flagged().next().unwrap();
        assert!((row.delta.unwrap() - (-0.05)).abs() < 1e-12);

        // Sub-floor jitter is noise.
        let c = record(7, 0.90 * (1.0 + 1e-9));
        assert_eq!(diff_runs(&a, &c, DEFAULT_NOISE_FLOOR).flagged_count(), 0);
    }

    #[test]
    fn config_and_seed_mismatches_always_flag() {
        let a = record(7, 0.9);
        let mut b = record(8, 0.9);
        b.manifest
            .config
            .insert("budget_mw".to_string(), "0.99".to_string());
        let diff = diff_runs(&a, &b, DEFAULT_NOISE_FLOOR);
        let flagged: Vec<&str> = diff.flagged().map(|r| r.key.as_str()).collect();
        assert!(flagged.contains(&"seed"), "{flagged:?}");
        assert!(flagged.contains(&"config.budget_mw"), "{flagged:?}");
    }

    #[test]
    fn thread_count_mismatch_is_reported_but_never_flagged() {
        // The executor is deterministic, so the CI gate diffs seed-
        // identical runs taken at different --threads; that must stay
        // clean.
        let mut a = record(7, 0.9);
        let mut b = record(7, 0.9);
        a.manifest
            .config
            .insert("threads".to_string(), "1".to_string());
        b.manifest
            .config
            .insert("threads".to_string(), "4".to_string());
        let diff = diff_runs(&a, &b, DEFAULT_NOISE_FLOOR);
        assert_eq!(diff.flagged_count(), 0, "{diff:?}");
        assert!(diff
            .render_markdown()
            .contains("| config.threads | 1 | 4 |"));
    }

    #[test]
    fn diff_golden_markdown() {
        let mut a = record(7, 0.9);
        let mut b = record(7, 0.8);
        // Pin every nondeterministic field for a byte-exact golden.
        for r in [&mut a, &mut b] {
            r.manifest.git_sha = Some("cafe01".to_string());
            r.summary.as_mut().unwrap().wall_clock_ms = 100.0;
        }
        a.manifest.run_id = "100-train".to_string();
        b.manifest.run_id = "200-train".to_string();
        let diff = diff_runs(&a, &b, DEFAULT_NOISE_FLOOR);
        let expected = "\
# Run diff: `100-train` vs `200-train`

| field | A | B | delta | |
|---|---|---|---|---|
| command | train | train |  |  |
| dataset | iris | iris |  |  |
| seed | 7 | 7 |  |  |
| git_sha | cafe01 | cafe01 |  |  |
| status | completed | completed |  |  |
| config.budget_mw | 0.45 | 0.45 |  |  |
| config.mu | 2 | 2 |  |  |
| wall_clock_ms | 100.0 | 100.0 | +0.000000e0 |  |
| metrics.test_accuracy | 9.000000e-1 | 8.000000e-1 | -1.000000e-1 | !! |
| flags.feasible | true | true |  |  |

1 difference above the noise floor.
";
        assert_eq!(diff.render_markdown(), expected);
    }

    #[test]
    fn read_git_sha_resolves_this_repository() {
        // The test binary runs inside the repo; a SHA should resolve
        // and look like one. (Skip silently if the layout ever drops
        // the .git directory — e.g. a source tarball.)
        if let Some(sha) = read_git_sha(Path::new(".")) {
            assert!(sha.len() >= 7, "{sha}");
            assert!(sha.chars().all(|c| c.is_ascii_hexdigit()), "{sha}");
        }
    }
}
