//! Opt-in allocation accounting: a counting [`std::alloc::System`]
//! wrapper plus process/thread counters.
//!
//! Binaries install [`CountingAllocator`] as their
//! `#[global_allocator]`; accounting stays off until
//! [`enable`] flips the runtime flag (the CLI's `--alloc-stats`), so
//! the disabled cost is one relaxed atomic load per allocation.
//! When enabled, every allocation updates process-wide totals
//! ([`snapshot`]) and per-thread totals ([`thread_totals`]) that the
//! profiler reads at scope boundaries to attribute allocations to the
//! innermost open span (`alloc_count` / `alloc_bytes` span
//! attributes).
//!
//! The counters themselves never allocate: globals are `static`
//! atomics and the per-thread side is `const`-initialized `Cell`s, so
//! the accounting path cannot recurse into the allocator.
//!
//! This module contains the crate's only `unsafe` code — the
//! [`std::alloc::GlobalAlloc`] impl, which is unsafe by signature and
//! delegates every placement decision to `System`.

use crate::event::{Event, Level};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

// lint: allow(L003, reason = "process-wide opt-in switch for the global allocator; there is exactly one allocator per process")
static ENABLED: AtomicBool = AtomicBool::new(false);
// lint: allow(L003, reason = "global allocator counters: the allocator is process-global by construction")
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "global allocator counters: the allocator is process-global by construction")
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "global allocator counters: the allocator is process-global by construction")
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "global allocator counters: the allocator is process-global by construction")
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // lint: allow(L003, reason = "per-thread allocation totals for span attribution; threading a handle through the allocator is impossible")
    static THREAD_ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    // lint: allow(L003, reason = "per-thread allocation totals for span attribution; threading a handle through the allocator is impossible")
    static THREAD_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Turns accounting on. Counters start from wherever they are; call
/// [`reset`] first for a clean window.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns accounting off; the allocator reverts to one branch per call.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether accounting is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes the process-wide counters (per-thread totals are monotonic
/// and keep running — span attribution uses deltas, so resets don't
/// affect it).
pub fn reset() {
    ALLOC_COUNT.store(0, Ordering::Relaxed);
    ALLOC_BYTES.store(0, Ordering::Relaxed);
    FREED_BYTES.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
}

fn on_alloc(size: usize) {
    if !is_enabled() {
        return;
    }
    let size = size as u64;
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    let total = ALLOC_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    let live = total.saturating_sub(FREED_BYTES.load(Ordering::Relaxed));
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    // `try_with`: a thread tearing down its TLS may still allocate;
    // dropping those few samples beats aborting the process.
    let _ = THREAD_ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
    let _ = THREAD_ALLOC_BYTES.try_with(|c| c.set(c.get() + size));
}

fn on_dealloc(size: usize) {
    if !is_enabled() {
        return;
    }
    FREED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
}

/// Monotonic per-thread `(allocation count, allocated bytes)` totals.
/// The profiler snapshots this at scope open/close and attributes the
/// delta to the span. Zeros until [`enable`] is called.
pub fn thread_totals() -> (u64, u64) {
    let count = THREAD_ALLOC_COUNT.try_with(Cell::get).unwrap_or(0);
    let bytes = THREAD_ALLOC_BYTES.try_with(Cell::get).unwrap_or(0);
    (count, bytes)
}

/// Process-wide allocation totals at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Number of allocations since [`enable`] / [`reset`].
    pub allocs: u64,
    /// Total bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Total bytes released.
    pub freed_bytes: u64,
    /// Bytes currently outstanding (`alloc_bytes − freed_bytes`,
    /// saturating — frees of pre-window allocations can exceed the
    /// window's own allocations).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` while accounting was on
    /// (approximate under concurrency: concurrent allocations race
    /// the peak update by a few samples).
    pub peak_bytes: u64,
}

impl AllocSnapshot {
    /// Renders the snapshot as an `"alloc_stats"` event.
    pub fn to_event(&self) -> Event {
        Event::new("alloc_stats", Level::Info)
            .with_u64("allocs", self.allocs)
            .with_u64("alloc_bytes", self.alloc_bytes)
            .with_u64("freed_bytes", self.freed_bytes)
            .with_u64("live_bytes", self.live_bytes)
            .with_u64("peak_bytes", self.peak_bytes)
    }
}

// Serializes tests (here and in `profile`) that toggle the process-
// global accounting flag, so they cannot observe each other's state.
#[cfg(test)]
// lint: allow(L003, reason = "test-only mutex serializing tests that flip the process-global accounting flag")
pub(crate) static TEST_FLAG_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Reads the process-wide counters.
pub fn snapshot() -> AllocSnapshot {
    let alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed);
    let freed_bytes = FREED_BYTES.load(Ordering::Relaxed);
    AllocSnapshot {
        allocs: ALLOC_COUNT.load(Ordering::Relaxed),
        alloc_bytes,
        freed_bytes,
        live_bytes: alloc_bytes.saturating_sub(freed_bytes),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// A counting wrapper around [`std::alloc::System`]. Install in a
/// binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: pnc_telemetry::alloc::CountingAllocator =
///     pnc_telemetry::alloc::CountingAllocator;
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

// The one unsafe block in the crate: `GlobalAlloc` is an unsafe trait
// and its methods are unsafe by signature. Every placement decision is
// delegated verbatim to `System`; this wrapper only counts sizes.
#[allow(unsafe_code)]
#[deny(unsafe_op_in_unsafe_fn)]
mod global_alloc_impl {
    use super::{on_alloc, on_dealloc, CountingAllocator};
    use std::alloc::{GlobalAlloc, Layout, System};

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // SAFETY: the caller upholds GlobalAlloc's contract; we
            // forward the exact layout to System.
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                on_alloc(layout.size());
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            // SAFETY: as above.
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                on_alloc(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: ptr/layout come from a previous alloc through
            // this same wrapper, which forwarded to System.
            unsafe { System.dealloc(ptr, layout) };
            on_dealloc(layout.size());
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // SAFETY: contract forwarded verbatim to System.
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                on_dealloc(layout.size());
                on_alloc(new_size);
            }
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so these tests
    // drive the counting hooks directly; the CLI smoke test covers the
    // installed path end to end.

    // One combined lifecycle test: the counters are process-global,
    // so splitting enabled/disabled phases across #[test] functions
    // would race under the parallel test runner.
    #[test]
    fn hook_lifecycle_counts_only_while_enabled() {
        let _guard = TEST_FLAG_GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        disable();
        reset();
        on_alloc(128);
        on_dealloc(128);
        assert_eq!(snapshot().allocs, 0, "disabled hooks must count nothing");
        assert_eq!(snapshot().alloc_bytes, 0);

        enable();
        let (tc0, tb0) = thread_totals();
        on_alloc(100);
        on_alloc(50);
        on_dealloc(50);
        on_alloc(25);
        disable();
        let s = snapshot();
        reset();
        assert_eq!(s.allocs, 3);
        assert_eq!(s.alloc_bytes, 175);
        assert_eq!(s.freed_bytes, 50);
        assert_eq!(s.live_bytes, 125);
        assert!(s.peak_bytes >= 150, "peak {}", s.peak_bytes);
        let (tc1, tb1) = thread_totals();
        assert_eq!(tc1 - tc0, 3);
        assert_eq!(tb1 - tb0, 175);
    }

    #[test]
    fn snapshot_renders_as_event() {
        let e = AllocSnapshot {
            allocs: 2,
            alloc_bytes: 64,
            freed_bytes: 32,
            live_bytes: 32,
            peak_bytes: 64,
        }
        .to_event();
        assert_eq!(e.name, "alloc_stats");
        assert_eq!(e.get_u64("peak_bytes"), Some(64));
    }
}
