//! Event consumers: console, JSONL file, in-memory buffer, null, and
//! fan-out.

use crate::event::{Event, Level, Value};
use crate::json::event_to_json;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// An event consumer. Implementations must be `Send + Sync` so one
/// sink can be shared across threads behind an `Arc`.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event);
    /// Flushes buffered output. Default: no-op.
    fn flush(&self) {}
}

/// Shared sinks forward through the `Arc`, so one sink instance (e.g.
/// a run directory's [`JsonlSink`]) can simultaneously back a
/// [`crate::Telemetry`] handle and sit inside a [`MultiSink`].
impl<T: Sink + ?Sized> Sink for std::sync::Arc<T> {
    fn emit(&self, event: &Event) {
        (**self).emit(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

/// Discards everything. Equivalent to `Telemetry::disabled()` for
/// callers that need an actual sink object (e.g. inside a
/// [`MultiSink`] built from config).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Buffers events in memory; the test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        MemorySink {
            events: Mutex::new(Vec::new()),
        }
    }

    /// A copy of everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Captured events with the given name.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }

    /// Drops all captured events.
    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event.clone());
    }
}

/// Human-readable, level-filtered console output on stderr:
///
/// ```text
/// [   1.042s INFO ] epoch epoch=3 loss=0.412310 power_watts=0.000214
/// ```
///
/// Stderr keeps machine-readable stdout (e.g. accuracy tables) clean.
#[derive(Debug)]
pub struct ConsoleSink {
    min_level: Level,
    started: Instant,
}

impl ConsoleSink {
    /// Creates a console sink that drops events below `min_level`.
    pub fn new(min_level: Level) -> Self {
        ConsoleSink {
            min_level,
            started: Instant::now(),
        }
    }

    fn render(&self, event: &Event) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let tag = match event.level {
            Level::Debug => "DEBUG",
            Level::Info => "INFO ",
            Level::Warn => "WARN ",
        };
        let mut line = format!("[{elapsed:8.3}s {tag}] {}", event.name);
        for (key, value) in &event.fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            match value {
                Value::Str(s) if s.contains(' ') => {
                    line.push('"');
                    line.push_str(s);
                    line.push('"');
                }
                v => line.push_str(&v.to_string()),
            }
        }
        line
    }
}

impl Sink for ConsoleSink {
    fn emit(&self, event: &Event) {
        if event.level < self.min_level {
            return;
        }
        eprintln!("{}", self.render(event));
    }

    fn flush(&self) {
        let _ = io::stderr().flush();
    }
}

/// Writes one self-describing JSON object per event, one per line,
/// stamped with a unix timestamp (`"ts"`, fractional seconds). Lines
/// are flushed per event so logs survive panics/aborts mid-run.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    fn now_secs() -> f64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event_to_json(event, Some(Self::now_secs()));
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Logging must never crash training; drop the line on I/O
        // error (e.g. disk full) and keep going.
        let _ = writeln!(writer, "{line}");
        let _ = writer.flush();
    }

    fn flush(&self) {
        let _ = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .flush();
    }
}

/// Fans every event out to each inner sink in order.
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl std::fmt::Debug for MultiSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl MultiSink {
    /// Creates an empty fan-out (acts like [`NullSink`]).
    pub fn new() -> Self {
        MultiSink { sinks: Vec::new() }
    }

    /// Adds a sink to the fan-out.
    pub fn push(&mut self, sink: Box<dyn Sink>) {
        self.sinks.push(sink);
    }

    /// Builder-style [`MultiSink::push`].
    pub fn with(mut self, sink: Box<dyn Sink>) -> Self {
        self.push(sink);
        self
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Sink for MultiSink {
    fn emit(&self, event: &Event) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{json_matches_event, parse};
    use std::io::Read;

    #[test]
    fn memory_sink_captures_and_filters_by_name() {
        let sink = MemorySink::new();
        sink.emit(&Event::new("a", Level::Info).with_u64("i", 1));
        sink.emit(&Event::new("b", Level::Info));
        sink.emit(&Event::new("a", Level::Info).with_u64("i", 2));
        assert_eq!(sink.events().len(), 3);
        let a = sink.events_named("a");
        assert_eq!(a.len(), 2);
        assert_eq!(a[1].get_u64("i"), Some(2));
        sink.clear();
        assert!(sink.events().is_empty());
    }

    #[test]
    fn console_render_format() {
        let sink = ConsoleSink::new(Level::Debug);
        let line = sink.render(
            &Event::new("epoch", Level::Info)
                .with_u64("epoch", 3)
                .with_f64("loss", 0.5)
                .with_str("phase", "outer 2"),
        );
        assert!(line.contains("INFO"), "{line}");
        assert!(line.contains("epoch epoch=3"), "{line}");
        assert!(line.contains("loss=0.500000"), "{line}");
        assert!(line.contains("phase=\"outer 2\""), "{line}");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pnc-telemetry-test-{}.jsonl", std::process::id()));
        let events = [
            Event::new("epoch", Level::Info)
                .with_u64("epoch", 0)
                .with_f64("loss", 1.5)
                .with_str("note", "tricky \"quotes\"\nand newline"),
            Event::new("outer_iter", Level::Info)
                .with_f64("lambda", 0.25)
                .with_f64("bad", f64::NAN),
        ];
        {
            let sink = JsonlSink::create(&path).expect("create log");
            for e in &events {
                sink.emit(e);
            }
            sink.flush();
        }
        let mut text = String::new();
        File::open(&path)
            .expect("reopen")
            .read_to_string(&mut text)
            .expect("read");
        std::fs::remove_file(&path).ok();

        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            let json = parse(line).unwrap_or_else(|| panic!("invalid JSON: {line}"));
            assert!(json_matches_event(&json, event), "{line}");
            let ts = json.get("ts").and_then(crate::json::Json::as_f64);
            assert!(ts.is_some_and(|t| t > 0.0), "missing ts: {line}");
        }
    }

    #[test]
    fn multi_sink_fans_out() {
        use std::sync::Arc;
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());

        struct Shared(Arc<MemorySink>);
        impl Sink for Shared {
            fn emit(&self, event: &Event) {
                self.0.emit(event);
            }
        }

        let multi = MultiSink::new()
            .with(Box::new(Shared(a.clone())))
            .with(Box::new(Shared(b.clone())))
            .with(Box::new(NullSink));
        assert_eq!(multi.len(), 3);
        multi.emit(&Event::new("x", Level::Warn));
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }
}
