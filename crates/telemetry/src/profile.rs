//! Hierarchical wall-clock profiler: span trees with parent/child
//! links, per-name aggregation (call count, total and self time), and
//! a flame-style summary report.
//!
//! The profiler mirrors the [`crate::Telemetry`] contract: a
//! [`Profiler::disabled`] handle costs a single branch per scope, so
//! instrumented hot paths can stay unconditionally wired. An enabled
//! handle timestamps scopes against a session epoch and records one
//! [`SpanRecord`] per finished scope, linked to its parent through a
//! thread-local span stack — nesting is tracked per thread, so worker
//! pools produce well-formed per-thread span trees.
//!
//! # Example
//!
//! ```
//! use pnc_telemetry::profile::Profiler;
//!
//! let prof = Profiler::enabled();
//! {
//!     let _outer = prof.scope("outer");
//!     let mut inner = prof.scope("inner");
//!     inner.set_u64("items", 3);
//! } // guards record on drop, children before parents
//! let spans = prof.spans();
//! assert_eq!(spans.len(), 2);
//! let report = prof.report();
//! assert_eq!(report.phases.len(), 2);
//! ```

use crate::event::{Event, Level, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// Monotonic thread-id source for trace export: OS thread ids are not
// stable small integers, so each thread that opens a span gets the
// next index from this counter, cached in a thread-local below.
// lint: allow(L003, reason = "process-wide thread-id allocator for trace export; monotonic, never reset")
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // lint: allow(L003, reason = "per-thread span stack; hierarchical profiling needs ambient parent ids and threading a handle through every frame is not viable")
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    // lint: allow(L003, reason = "cached per-thread trace id, assigned once per thread")
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// One finished scope, as recorded by a [`ScopedSpan`] guard.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Session-unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Phase name (static: span names double as aggregation keys).
    pub name: &'static str,
    /// Small per-thread index (1-based) for trace export.
    pub tid: u64,
    /// Start offset from the session epoch, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds (`end - start`; ends are measured at
    /// guard drop, so children always close before their parent).
    pub dur_us: u64,
    /// Attributes attached via [`ScopedSpan::set_u64`] and friends.
    pub attrs: Vec<(&'static str, Value)>,
}

#[derive(Debug)]
struct ProfilerInner {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A cheap, cloneable handle to an optional profiling session. Thread
/// it through APIs exactly like [`crate::Telemetry`]:
/// [`Profiler::disabled`] makes every [`Profiler::scope`] a single
/// branch that allocates nothing.
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<ProfilerInner>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Profiler {
    /// A handle that records nothing; scopes are inert.
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// Starts a recording session; the epoch is now.
    pub fn enabled() -> Self {
        Profiler {
            inner: Some(Arc::new(ProfilerInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this handle records spans.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a scope guard. Disabled handles return an inert guard
    /// without touching the clock or the thread-local stack.
    pub fn scope(&self, name: &'static str) -> ScopedSpan {
        self.scope_with_fallback_parent(None, name)
    }

    /// The id of the innermost open span on the *current* thread, if
    /// any (`None` when disabled or at top level). Capture this on the
    /// spawning thread before fanning work out to an executor and hand
    /// it to [`Profiler::scope_under`] inside the worker closures, so
    /// worker spans hang off the spawning scope instead of floating as
    /// parentless roots.
    pub fn current_span_id(&self) -> Option<u64> {
        self.inner.as_ref()?;
        SPAN_STACK.with(|stack| stack.borrow().last().copied())
    }

    /// Opens a scope whose parent falls back to an explicit span id
    /// (typically captured via [`Profiler::current_span_id`] on the
    /// spawning thread) when the current thread has no open span. Spans
    /// already open on this thread still win, so scopes nested inside a
    /// worker closure parent normally.
    pub fn scope_under(&self, parent: Option<u64>, name: &'static str) -> ScopedSpan {
        self.scope_with_fallback_parent(parent, name)
    }

    fn scope_with_fallback_parent(
        &self,
        fallback_parent: Option<u64>,
        name: &'static str,
    ) -> ScopedSpan {
        let state = self.inner.as_ref().map(|inner| {
            let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
            let parent = SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                let parent = stack.last().copied().or(fallback_parent);
                stack.push(id);
                parent
            });
            ScopeState {
                inner: Arc::clone(inner),
                id,
                parent,
                name,
                tid: TID.with(|t| *t),
                start_us: elapsed_us(inner.epoch),
                attrs: Vec::new(),
                // When allocation accounting is on, remember this
                // thread's totals so the drop can attribute the delta
                // to this span (innermost span wins: children record
                // their own deltas before the parent closes).
                alloc_base: crate::alloc::is_enabled().then(crate::alloc::thread_totals),
            }
        });
        ScopedSpan {
            state,
            _not_send: PhantomData,
        }
    }

    /// Microseconds elapsed since the session epoch (0 when disabled).
    pub fn wall_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| elapsed_us(i.epoch))
    }

    /// A copy of every span recorded so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.spans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone()
        })
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| {
            i.spans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len()
        })
    }

    /// Aggregates the recorded spans into a flame-style summary against
    /// the session wall clock.
    pub fn report(&self) -> ProfileReport {
        ProfileReport::from_spans(&self.spans(), self.wall_us())
    }
}

fn elapsed_us(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[derive(Debug)]
struct ScopeState {
    inner: Arc<ProfilerInner>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    tid: u64,
    start_us: u64,
    attrs: Vec<(&'static str, Value)>,
    /// This thread's `(alloc count, alloc bytes)` totals at scope
    /// open, when allocation accounting was enabled then.
    alloc_base: Option<(u64, u64)>,
}

/// An RAII guard measuring one scope. Records a [`SpanRecord`] on drop
/// (or [`ScopedSpan::finish`]). Deliberately `!Send`: parent/child
/// links come from a per-thread stack, so a guard must close on the
/// thread that opened it.
#[derive(Debug)]
pub struct ScopedSpan {
    state: Option<ScopeState>,
    // Raw-pointer marker keeps the guard on its opening thread.
    _not_send: PhantomData<*const ()>,
}

impl ScopedSpan {
    /// Whether this guard is recording (false for disabled profilers).
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// Attaches an integer attribute (no-op when inert).
    pub fn set_u64(&mut self, key: &'static str, v: u64) {
        if let Some(s) = &mut self.state {
            s.attrs.push((key, Value::U64(v)));
        }
    }

    /// Attaches a float attribute (no-op when inert).
    pub fn set_f64(&mut self, key: &'static str, v: f64) {
        if let Some(s) = &mut self.state {
            s.attrs.push((key, Value::F64(v)));
        }
    }

    /// Attaches a bool attribute (no-op when inert).
    pub fn set_bool(&mut self, key: &'static str, v: bool) {
        if let Some(s) = &mut self.state {
            s.attrs.push((key, Value::Bool(v)));
        }
    }

    /// Attaches a string attribute (no-op when inert).
    pub fn set_str(&mut self, key: &'static str, v: impl Into<String>) {
        if let Some(s) = &mut self.state {
            s.attrs.push((key, Value::Str(v.into())));
        }
    }

    /// Closes the scope now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for ScopedSpan {
    fn drop(&mut self) {
        let Some(mut state) = self.state.take() else {
            return;
        };
        let end_us = elapsed_us(state.inner.epoch);
        if let Some((count0, bytes0)) = state.alloc_base {
            let (count1, bytes1) = crate::alloc::thread_totals();
            state
                .attrs
                .push(("alloc_count", Value::U64(count1.saturating_sub(count0))));
            state
                .attrs
                .push(("alloc_bytes", Value::U64(bytes1.saturating_sub(bytes0))));
        }
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards are !Send and strictly nested, so our id is on
            // top; pop defensively anyway in case a guard leaked.
            if stack.last() == Some(&state.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&id| id == state.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: state.id,
            parent: state.parent,
            name: state.name,
            tid: state.tid,
            start_us: state.start_us,
            dur_us: end_us.saturating_sub(state.start_us),
            attrs: state.attrs,
        };
        state
            .inner
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(record);
    }
}

/// Aggregated timing for one span name across the whole session.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub calls: u64,
    /// Summed durations, children included, in milliseconds.
    pub total_ms: f64,
    /// Summed durations minus time spent in child spans, in
    /// milliseconds — the flame-graph "self" column.
    pub self_ms: f64,
    /// Shortest single span, in milliseconds.
    pub min_ms: f64,
    /// Longest single span, in milliseconds.
    pub max_ms: f64,
    /// `self_ms` as a percentage of the session wall clock.
    pub pct_of_wall: f64,
}

/// A flame-style summary: one [`PhaseStat`] per span name, sorted by
/// self time (descending). On a single thread the self times sum to at
/// most the wall clock; concurrent threads can exceed it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Session wall clock in milliseconds.
    pub wall_ms: f64,
    /// Per-name rows, sorted by `self_ms` descending.
    pub phases: Vec<PhaseStat>,
}

impl ProfileReport {
    /// Aggregates span records against a session wall clock (µs).
    pub fn from_spans(spans: &[SpanRecord], wall_us: u64) -> Self {
        Self::aggregate(
            spans
                .iter()
                .map(|s| (s.name, s.id, s.parent, s.dur_us))
                .collect(),
            wall_us,
        )
    }

    /// Core aggregation over `(name, id, parent, dur_us)` tuples; also
    /// used by the trace re-reader in [`crate::trace`].
    pub(crate) fn aggregate(spans: Vec<(&str, u64, Option<u64>, u64)>, wall_us: u64) -> Self {
        // Self time = own duration minus the summed durations of
        // direct children.
        let mut child_dur: HashMap<u64, u64> = HashMap::new();
        for &(_, _, parent, dur) in &spans {
            if let Some(p) = parent {
                *child_dur.entry(p).or_insert(0) += dur;
            }
        }
        let mut by_name: HashMap<&str, PhaseAcc> = HashMap::new();
        for &(name, id, _, dur) in &spans {
            let self_us = dur.saturating_sub(child_dur.get(&id).copied().unwrap_or(0));
            let acc = by_name.entry(name).or_default();
            acc.calls += 1;
            acc.total_us += dur;
            acc.self_us += self_us;
            acc.min_us = acc.min_us.min(dur);
            acc.max_us = acc.max_us.max(dur);
        }
        let wall_ms = wall_us as f64 / 1e3;
        let mut phases: Vec<PhaseStat> = by_name
            .into_iter()
            .map(|(name, acc)| PhaseStat {
                name: name.to_string(),
                calls: acc.calls,
                total_ms: acc.total_us as f64 / 1e3,
                self_ms: acc.self_us as f64 / 1e3,
                min_ms: if acc.calls == 0 {
                    0.0
                } else {
                    acc.min_us as f64 / 1e3
                },
                max_ms: acc.max_us as f64 / 1e3,
                pct_of_wall: if wall_us == 0 {
                    0.0
                } else {
                    acc.self_us as f64 / wall_us as f64 * 100.0
                },
            })
            .collect();
        phases.sort_by(|a, b| {
            b.self_ms
                .total_cmp(&a.self_ms)
                .then_with(|| a.name.cmp(&b.name))
        });
        ProfileReport { wall_ms, phases }
    }

    /// Sum of per-phase self times, in milliseconds.
    pub fn self_ms_sum(&self) -> f64 {
        self.phases.iter().map(|p| p.self_ms).sum()
    }

    /// Renders the report as an aligned console table.
    pub fn render(&self) -> String {
        let mut out = format!("profile: wall clock {:.1} ms\n", self.wall_ms);
        out.push_str(&format!(
            "{:<28} {:>7} {:>12} {:>12} {:>8}\n",
            "phase", "calls", "self ms", "total ms", "self %"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<28} {:>7} {:>12.2} {:>12.2} {:>7.1}%\n",
                p.name, p.calls, p.self_ms, p.total_ms, p.pct_of_wall
            ));
        }
        out
    }

    /// Renders the report as events: one `profile_report` header
    /// followed by one `profile_phase` per row, ready for any sink
    /// (the JSONL sink makes the summary `jq`-able).
    pub fn to_events(&self) -> Vec<Event> {
        let mut events = Vec::with_capacity(1 + self.phases.len());
        events.push(
            Event::new("profile_report", Level::Info)
                .with_f64("wall_ms", self.wall_ms)
                .with_u64("phases", self.phases.len() as u64),
        );
        for p in &self.phases {
            events.push(
                Event::new("profile_phase", Level::Info)
                    .with_str("phase", p.name.clone())
                    .with_u64("calls", p.calls)
                    .with_f64("self_ms", p.self_ms)
                    .with_f64("total_ms", p.total_ms)
                    .with_f64("min_ms", p.min_ms)
                    .with_f64("max_ms", p.max_ms)
                    .with_f64("pct_of_wall", p.pct_of_wall),
            );
        }
        events
    }
}

#[derive(Debug)]
struct PhaseAcc {
    calls: u64,
    total_us: u64,
    self_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for PhaseAcc {
    fn default() -> Self {
        PhaseAcc {
            calls: 0,
            total_us: 0,
            self_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let prof = Profiler::disabled();
        assert!(!prof.is_enabled());
        let mut s = prof.scope("anything");
        assert!(!s.is_recording());
        s.set_u64("k", 1);
        drop(s);
        assert_eq!(prof.span_count(), 0);
        assert_eq!(prof.wall_us(), 0);
        assert!(prof.report().phases.is_empty());
    }

    #[test]
    fn nested_scopes_link_parent_and_child() {
        let prof = Profiler::enabled();
        {
            let _a = prof.scope("outer");
            {
                let _b = prof.scope("inner");
            }
            {
                let _c = prof.scope("inner");
            }
        }
        let spans = prof.spans();
        assert_eq!(spans.len(), 3);
        // Children complete first.
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.parent, None);
        for s in spans.iter().filter(|s| s.name == "inner") {
            assert_eq!(s.parent, Some(outer.id));
            assert!(s.start_us >= outer.start_us);
            assert!(s.start_us + s.dur_us <= outer.start_us + outer.dur_us);
        }
    }

    #[test]
    fn sibling_scopes_share_a_parent_after_pop() {
        let prof = Profiler::enabled();
        let root = prof.scope("root");
        {
            let _x = prof.scope("x");
        }
        let y = prof.scope("y");
        drop(y);
        drop(root);
        let spans = prof.spans();
        let root_id = spans.iter().find(|s| s.name == "root").unwrap().id;
        for name in ["x", "y"] {
            let s = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(root_id), "{name} should hang off root");
        }
    }

    #[test]
    fn attributes_are_recorded() {
        let prof = Profiler::enabled();
        {
            let mut s = prof.scope("solve");
            s.set_u64("iterations", 7);
            s.set_f64("residual", 1e-9);
            s.set_bool("ramped", false);
            s.set_str("kind", "ptanh");
        }
        let spans = prof.spans();
        // ≥: a concurrently running alloc-accounting test can append
        // alloc_count/alloc_bytes attribution attrs.
        assert!(spans[0].attrs.len() >= 4, "{:?}", spans[0].attrs);
        assert_eq!(spans[0].attrs[0], ("iterations", Value::U64(7)));
    }

    #[test]
    fn spans_attribute_allocations_when_accounting_is_on() {
        let _guard = crate::alloc::TEST_FLAG_GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::alloc::enable();
        let prof = Profiler::enabled();
        {
            let _s = prof.scope("allocating");
        }
        crate::alloc::disable();
        let span = &prof.spans()[0];
        let keys: Vec<&str> = span.attrs.iter().map(|(k, _)| *k).collect();
        assert!(keys.contains(&"alloc_count"), "{keys:?}");
        assert!(keys.contains(&"alloc_bytes"), "{keys:?}");

        // With accounting off, spans carry no attribution attrs.
        let prof = Profiler::enabled();
        {
            let _s = prof.scope("quiet");
        }
        assert!(prof.spans()[0].attrs.is_empty());
    }

    #[test]
    fn threads_get_independent_stacks() {
        let prof = Profiler::enabled();
        let _main = prof.scope("main_thread");
        // lint: allow(L006, reason = "exercises the per-thread span stack itself; the executor would hide it")
        std::thread::scope(|scope| {
            let p = prof.clone();
            scope.spawn(move || {
                let _w = p.scope("worker");
            });
        });
        let spans = prof.spans();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        // The worker thread's stack is empty, so no cross-thread parent.
        assert_eq!(worker.parent, None);
        assert_ne!(worker.tid, TID.with(|t| *t));
    }

    #[test]
    fn scope_under_parents_worker_spans_to_the_spawning_scope() {
        let prof = Profiler::enabled();
        let fanout = prof.scope("fanout");
        let parent_id = prof.current_span_id();
        assert!(parent_id.is_some());
        // lint: allow(L006, reason = "exercises the per-thread span stack itself; the executor would hide it")
        std::thread::scope(|scope| {
            let p = prof.clone();
            scope.spawn(move || {
                let _w = p.scope_under(parent_id, "worker");
                // Nested scopes inside the worker parent to the worker
                // span, not to the cross-thread fallback.
                let _n = p.scope_under(parent_id, "nested");
            });
        });
        drop(fanout);
        let spans = prof.spans();
        let fanout_id = spans.iter().find(|s| s.name == "fanout").unwrap().id;
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, Some(fanout_id));
        let nested = spans.iter().find(|s| s.name == "nested").unwrap();
        assert_eq!(nested.parent, Some(worker.id));
    }

    #[test]
    fn scope_under_is_inert_when_disabled() {
        let prof = Profiler::disabled();
        assert_eq!(prof.current_span_id(), None);
        let s = prof.scope_under(Some(99), "x");
        assert!(!s.is_recording());
        drop(s);
        assert_eq!(prof.span_count(), 0);
    }

    #[test]
    fn report_self_times_sum_to_at_most_wall_clock() {
        let prof = Profiler::enabled();
        {
            let _outer = prof.scope("outer");
            for _ in 0..3 {
                let _inner = prof.scope("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let report = prof.report();
        assert!(report.wall_ms > 0.0);
        assert!(
            report.self_ms_sum() <= report.wall_ms + 1e-9,
            "self {} vs wall {}",
            report.self_ms_sum(),
            report.wall_ms
        );
        let inner = report.phases.iter().find(|p| p.name == "inner").unwrap();
        assert_eq!(inner.calls, 3);
        assert!(inner.total_ms >= 3.0);
        let outer = report.phases.iter().find(|p| p.name == "outer").unwrap();
        assert!(
            outer.self_ms <= outer.total_ms - inner.total_ms + 1e-9,
            "outer self excludes child time"
        );
    }

    #[test]
    fn aggregation_handles_synthetic_tree() {
        // root(100) -> a(60) -> b(20); second a(10) at top level.
        let spans = vec![
            ("b", 3, Some(2), 20),
            ("a", 2, Some(1), 60),
            ("root", 1, None, 100),
            ("a", 4, None, 10),
        ];
        let r = ProfileReport::aggregate(spans, 120);
        let get = |n: &str| r.phases.iter().find(|p| p.name == n).unwrap().clone();
        assert_eq!(get("root").self_ms, 0.04); // 100 - 60
        assert_eq!(get("a").calls, 2);
        assert_eq!(get("a").total_ms, 0.07);
        assert_eq!(get("a").self_ms, 0.05); // (60-20) + 10
        assert_eq!(get("b").self_ms, 0.02);
        assert_eq!(get("a").min_ms, 0.01);
        assert_eq!(get("a").max_ms, 0.06);
        // Sorted by self descending: a (50µs) first.
        assert_eq!(r.phases[0].name, "a");
        let wall_pct: f64 = r.phases.iter().map(|p| p.pct_of_wall).sum();
        assert!(wall_pct <= 100.0 + 1e-9);
    }

    #[test]
    fn report_renders_and_exports_events() {
        let prof = Profiler::enabled();
        {
            let _s = prof.scope("phase_one");
        }
        let report = prof.report();
        let text = report.render();
        assert!(text.contains("phase_one"), "{text}");
        assert!(text.contains("self ms"), "{text}");
        let events = report.to_events();
        assert_eq!(events[0].name, "profile_report");
        assert_eq!(events[1].name, "profile_phase");
        assert_eq!(events[1].get_str("phase"), Some("phase_one"));
        assert_eq!(events[1].get_u64("calls"), Some(1));
    }
}
