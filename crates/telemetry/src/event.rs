//! Event and field types.

use std::fmt;

/// Severity / verbosity of an event. Ordered: `Debug < Info < Warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// High-volume diagnostics (per-solve, per-sample).
    Debug,
    /// Normal progress (per-epoch, per-outer-iteration).
    Info,
    /// Anomalies worth surfacing even under `--quiet` (solver
    /// fallbacks, rescue phases, non-convergence).
    Warn,
}

impl Level {
    /// Lower-case name used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }

    /// Parses the lower-case name produced by [`Level::as_str`].
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point. NaN/±inf serialize as `null` in JSONL.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.6}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => f.write_str(v),
        }
    }
}

/// A structured record: a static name, a [`Level`], and ordered
/// key/value fields. Keys are `&'static str` so building an event
/// allocates only for the field vector (and any string values).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event kind, e.g. `"epoch"`, `"outer_iter"`, `"dc_solve"`.
    pub name: &'static str,
    /// Severity.
    pub level: Level,
    /// Ordered fields. Order is preserved into JSONL output.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Creates an empty event.
    pub fn new(name: &'static str, level: Level) -> Self {
        Event {
            name,
            level,
            fields: Vec::new(),
        }
    }

    /// Adds a raw field.
    pub fn with(mut self, key: &'static str, value: Value) -> Self {
        self.fields.push((key, value));
        self
    }

    /// Adds a signed integer field.
    pub fn with_i64(self, key: &'static str, v: i64) -> Self {
        self.with(key, Value::I64(v))
    }

    /// Adds an unsigned integer field.
    pub fn with_u64(self, key: &'static str, v: u64) -> Self {
        self.with(key, Value::U64(v))
    }

    /// Adds a float field.
    pub fn with_f64(self, key: &'static str, v: f64) -> Self {
        self.with(key, Value::F64(v))
    }

    /// Adds a bool field.
    pub fn with_bool(self, key: &'static str, v: bool) -> Self {
        self.with(key, Value::Bool(v))
    }

    /// Adds a string field.
    pub fn with_str(self, key: &'static str, v: impl Into<String>) -> Self {
        self.with(key, Value::Str(v.into()))
    }

    /// Looks up a field by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Field as f64, converting integer values.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Field as u64.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Field as &str.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Value::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }

    /// Field as bool.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_names() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        for l in [Level::Debug, Level::Info, Level::Warn] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("trace"), None);
    }

    #[test]
    fn builder_and_accessors() {
        let e = Event::new("epoch", Level::Info)
            .with_u64("epoch", 7)
            .with_f64("loss", 0.5)
            .with_bool("feasible", true)
            .with_str("phase", "auglag")
            .with_i64("delta", -3);
        assert_eq!(e.get_u64("epoch"), Some(7));
        assert_eq!(e.get_f64("loss"), Some(0.5));
        assert_eq!(e.get_f64("epoch"), Some(7.0));
        assert_eq!(e.get_bool("feasible"), Some(true));
        assert_eq!(e.get_str("phase"), Some("auglag"));
        assert_eq!(e.get_f64("delta"), Some(-3.0));
        assert_eq!(e.get("missing"), None);
    }
}
