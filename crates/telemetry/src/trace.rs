//! Chrome trace-event export for [`crate::profile`] span trees.
//!
//! Writes the "JSON object format" of the Trace Event spec — an object
//! with a `traceEvents` array of complete (`"ph":"X"`) events — which
//! `chrome://tracing` and Perfetto load directly. Timestamps are
//! microseconds from the profiling session epoch; span ids and parent
//! links ride along in `args` so a saved trace can be re-aggregated
//! into the same flame summary with [`ProfileReport::from_trace`].

use crate::event::Value;
use crate::json::{parse, write_escaped, Json};
use crate::profile::{ProfileReport, SpanRecord};
use std::io::{self, Write};
use std::path::Path;

/// A span re-read from a trace file: same shape as [`SpanRecord`] but
/// with an owned name.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Phase name.
    pub name: String,
    /// Span id (`args.id`).
    pub id: u64,
    /// Parent span id (`args.parent`), if any.
    pub parent: Option<u64>,
    /// Thread index (`tid`).
    pub tid: u64,
    /// Start offset in microseconds (`ts`).
    pub start_us: u64,
    /// Duration in microseconds (`dur`).
    pub dur_us: u64,
}

/// Renders spans as a Chrome trace JSON document. Events are sorted by
/// start time (the spec wants stable, roughly chronological `ts`).
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start_us, s.id));
    let mut out = String::with_capacity(64 + 128 * sorted.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_escaped(&mut out, s.name);
        out.push_str(",\"cat\":\"pnc\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&s.tid.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&s.start_us.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&s.dur_us.to_string());
        out.push_str(",\"args\":{\"id\":");
        out.push_str(&s.id.to_string());
        if let Some(p) = s.parent {
            out.push_str(",\"parent\":");
            out.push_str(&p.to_string());
        }
        for (key, value) in &s.attrs {
            out.push(',');
            write_escaped(&mut out, key);
            out.push(':');
            match value {
                Value::I64(v) => out.push_str(&v.to_string()),
                Value::U64(v) => out.push_str(&v.to_string()),
                Value::F64(v) => {
                    if v.is_finite() {
                        out.push_str(&format!("{v:?}"));
                    } else {
                        out.push_str("null");
                    }
                }
                Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                Value::Str(v) => write_escaped(&mut out, v),
            }
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Writes [`chrome_trace_json`] to `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_chrome_trace(path: impl AsRef<Path>, spans: &[SpanRecord]) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(chrome_trace_json(spans).as_bytes())?;
    file.flush()
}

/// Re-reads a trace produced by [`chrome_trace_json`] (or any trace of
/// complete events carrying `args.id`). Returns `None` on malformed
/// JSON or a missing `traceEvents` array; events without the required
/// fields are skipped.
pub fn parse_chrome_trace(text: &str) -> Option<Vec<TraceSpan>> {
    let doc = parse(text)?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return None,
    };
    let mut spans = Vec::with_capacity(events.len());
    for ev in events {
        let (Some(name), Some(ts), Some(dur)) = (
            ev.get("name").and_then(Json::as_str),
            ev.get("ts").and_then(Json::as_f64),
            ev.get("dur").and_then(Json::as_f64),
        ) else {
            continue;
        };
        let args = ev.get("args");
        let get_id = |key: &str| {
            args.and_then(|a| a.get(key))
                .and_then(Json::as_f64)
                .map(|v| v as u64)
        };
        spans.push(TraceSpan {
            name: name.to_string(),
            id: get_id("id").unwrap_or(0),
            parent: get_id("parent"),
            tid: ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            start_us: ts as u64,
            dur_us: dur as u64,
        });
    }
    Some(spans)
}

/// Structural facts about a validated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceValidation {
    /// Number of complete events.
    pub events: usize,
    /// Number of distinct thread lanes.
    pub threads: usize,
}

/// Validates that `text` is a well-formed Chrome trace of complete
/// events: parseable JSON, a `traceEvents` array where every event has
/// `name`/`ph:"X"`/`pid`/`tid`/`ts`/`dur`, `ts` values are monotonic
/// non-decreasing, and events on each thread lane nest properly (every
/// span lies fully inside the enclosing one).
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceValidation, String> {
    let doc = parse(text).ok_or_else(|| "not valid JSON".to_string())?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        Some(_) => return Err("traceEvents is not an array".to_string()),
        None => return Err("missing traceEvents".to_string()),
    };
    let mut last_ts = f64::NEG_INFINITY;
    // Per-tid stack of open interval ends, for nesting checks.
    let mut open: std::collections::BTreeMap<u64, Vec<f64>> = std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let context = |field: &str| format!("event {i} ({name}): missing {field}");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| context("ph"))?;
        if ph != "X" {
            return Err(format!("event {i} ({name}): ph is {ph:?}, expected \"X\""));
        }
        ev.get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| context("pid"))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| context("tid"))? as u64;
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| context("ts"))?;
        let dur = ev
            .get("dur")
            .and_then(Json::as_f64)
            .ok_or_else(|| context("dur"))?;
        if dur < 0.0 {
            return Err(format!("event {i} ({name}): negative dur {dur}"));
        }
        if ts < last_ts {
            return Err(format!(
                "event {i} ({name}): ts {ts} < previous ts {last_ts} (not monotonic)"
            ));
        }
        last_ts = ts;
        let lane = open.entry(tid).or_default();
        while lane.last().is_some_and(|&end| end <= ts) {
            lane.pop();
        }
        if let Some(&end) = lane.last() {
            if ts + dur > end {
                return Err(format!(
                    "event {i} ({name}): [{ts}, {}] escapes enclosing span ending at {end}",
                    ts + dur
                ));
            }
        }
        lane.push(ts + dur);
    }
    Ok(TraceValidation {
        events: events.len(),
        threads: open.len(),
    })
}

impl ProfileReport {
    /// Re-aggregates spans read back from a trace file. The wall clock
    /// is the extent of the trace (`max(ts + dur) - min(ts)`).
    pub fn from_trace(spans: &[TraceSpan]) -> Self {
        let start = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .max()
            .unwrap_or(0);
        Self::aggregate(
            spans
                .iter()
                .map(|s| (s.name.as_str(), s.id, s.parent, s.dur_us))
                .collect(),
            end.saturating_sub(start),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profiler;

    fn sample_spans() -> Vec<SpanRecord> {
        let prof = Profiler::enabled();
        {
            let _outer = prof.scope("outer");
            {
                let mut inner = prof.scope("inner");
                inner.set_u64("iterations", 9);
                inner.set_str("note", "has \"quotes\"");
            }
            {
                let _inner = prof.scope("inner");
            }
        }
        prof.spans()
    }

    #[test]
    fn trace_round_trips_and_validates() {
        let spans = sample_spans();
        let text = chrome_trace_json(&spans);
        let v = validate_chrome_trace(&text).expect("valid trace");
        assert_eq!(v.events, 3);
        assert_eq!(v.threads, 1);

        let back = parse_chrome_trace(&text).expect("parse back");
        assert_eq!(back.len(), 3);
        // Sorted by ts: outer first.
        assert_eq!(back[0].name, "outer");
        assert_eq!(back[1].parent, Some(back[0].id));
        assert_eq!(back[2].parent, Some(back[0].id));

        let report = ProfileReport::from_trace(&back);
        let inner = report.phases.iter().find(|p| p.name == "inner").unwrap();
        assert_eq!(inner.calls, 2);
        assert!(report.self_ms_sum() <= report.wall_ms + 1e-9);
    }

    #[test]
    fn trace_file_write_and_reread() {
        let spans = sample_spans();
        let path = std::env::temp_dir().join(format!("pnc-trace-test-{}.json", std::process::id()));
        write_chrome_trace(&path, &spans).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::remove_file(&path).ok();
        assert!(validate_chrome_trace(&text).is_ok());
    }

    #[test]
    fn validation_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        // Missing dur.
        let missing =
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0}]}";
        assert!(validate_chrome_trace(missing).unwrap_err().contains("dur"));
        // Wrong phase kind.
        let wrong_ph =
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":1}]}";
        assert!(validate_chrome_trace(wrong_ph).unwrap_err().contains("ph"));
        // Non-monotonic ts.
        let unsorted = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":10,\"dur\":1},\
            {\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5,\"dur\":1}]}";
        assert!(validate_chrome_trace(unsorted)
            .unwrap_err()
            .contains("monotonic"));
        // Overlapping (non-nested) spans on one lane.
        let overlap = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":10},\
            {\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5,\"dur\":10}]}";
        assert!(validate_chrome_trace(overlap)
            .unwrap_err()
            .contains("escapes"));
        // Same intervals on different lanes are fine.
        let lanes = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":10},\
            {\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":5,\"dur\":10}]}";
        let v = validate_chrome_trace(lanes).expect("two lanes");
        assert_eq!(v.threads, 2);
    }

    #[test]
    fn empty_profile_is_a_valid_trace() {
        let text = chrome_trace_json(&[]);
        let v = validate_chrome_trace(&text).expect("empty trace valid");
        assert_eq!(v.events, 0);
        let report = ProfileReport::from_trace(&parse_chrome_trace(&text).unwrap());
        assert!(report.phases.is_empty());
        assert_eq!(report.wall_ms, 0.0);
    }
}
