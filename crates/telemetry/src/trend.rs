//! Cross-run trend analytics: sustained-regression detection over a
//! historical series of metric values.
//!
//! `perf_snapshot --compare` and `runs diff` answer the pairwise
//! question — did *this* run regress against *that* one? This module
//! answers the series question: across the last N snapshots / runs,
//! has a metric drifted and *stayed* drifted? A single slow point is
//! noise (a busy CI machine); the detector only flags when the last
//! `window` points all exceed the baseline (the median of everything
//! before them) by both a relative tolerance and an absolute noise
//! floor.
//!
//! Consumers: the CLI's `runs trend` (over run-registry summaries) and
//! `pnc-bench --bin trend` (over checked-in `BENCH_*.json` snapshot
//! files).

/// Which direction of drift counts as a regression for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is worse (wall-clock, allocations).
    UpIsBad,
    /// Smaller is worse (accuracy).
    DownIsBad,
}

/// Detection thresholds. The defaults mirror the historical
/// `perf_snapshot --compare` constants: 10 % relative, 10-unit
/// absolute floor, and two consecutive elevated points to call a
/// drift "sustained".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendConfig {
    /// Minimum relative excursion from the baseline (0.10 = 10 %).
    pub rel_tol: f64,
    /// Minimum absolute excursion, in the metric's own units; deltas
    /// below it are noise regardless of the relative size.
    pub noise_floor: f64,
    /// Number of trailing points that must *all* be beyond tolerance.
    pub window: usize,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            rel_tol: 0.10,
            noise_floor: 10.0,
            window: 2,
        }
    }
}

/// One observation in a series: a label (run id, snapshot file) and a
/// value.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Where the value came from.
    pub label: String,
    /// The observed value.
    pub value: f64,
}

/// A named metric series to analyse, oldest first.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendSeries {
    /// Metric name (`Iris: wall_ms`, `metrics.test_accuracy`, …).
    pub metric: String,
    /// Which drift direction is a regression.
    pub direction: Direction,
    /// Observations, oldest first.
    pub points: Vec<TrendPoint>,
}

/// The verdict for one series.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// Metric name.
    pub metric: String,
    /// Number of points in the series.
    pub n: usize,
    /// Median of the pre-window points (`NaN` when the series is too
    /// short to split).
    pub baseline: f64,
    /// The most recent value.
    pub last: f64,
    /// Relative drift of the last point vs. the baseline, in percent
    /// (`NaN` when there is no baseline).
    pub delta_pct: f64,
    /// Whether the drift is sustained and above both thresholds.
    pub flagged: bool,
}

/// The full report: one row per series, plus the thresholds used.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// Thresholds the verdicts were computed with.
    pub config: TrendConfig,
    /// One verdict per input series, input order.
    pub rows: Vec<TrendRow>,
}

impl TrendReport {
    /// Analyses every series with one config.
    pub fn analyze(series: &[TrendSeries], config: TrendConfig) -> TrendReport {
        TrendReport {
            config,
            rows: series.iter().map(|s| detect(s, &config)).collect(),
        }
    }

    /// Number of flagged series.
    pub fn flagged_count(&self) -> usize {
        self.rows.iter().filter(|r| r.flagged).count()
    }

    /// Renders the report as a markdown table; flagged rows carry a
    /// `!!` marker and a verdict line follows.
    pub fn render_markdown(&self) -> String {
        let mut out = format!(
            "# Trend report (rel tol {:.1} %, noise floor {}, window {})\n\n",
            self.config.rel_tol * 100.0,
            self.config.noise_floor,
            self.config.window
        );
        out.push_str("| metric | n | baseline | last | drift | |\n|---|---|---|---|---|---|\n");
        for row in &self.rows {
            let fmt = |v: f64| {
                if v.is_nan() {
                    "—".to_string()
                } else {
                    format!("{v:.3}")
                }
            };
            let drift = if row.delta_pct.is_nan() {
                "—".to_string()
            } else {
                format!("{:+.1} %", row.delta_pct)
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                row.metric,
                row.n,
                fmt(row.baseline),
                fmt(row.last),
                drift,
                if row.flagged { "!!" } else { "" }
            ));
        }
        let n = self.flagged_count();
        if n == 0 {
            out.push_str("\nNo sustained regressions.\n");
        } else {
            out.push_str(&format!(
                "\n{n} sustained regression{} detected.\n",
                if n == 1 { "" } else { "s" }
            ));
        }
        out
    }
}

/// Median over a copy (mean of the middle two for even counts);
/// deterministic via total ordering.
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Core detector: the last `window` points must *all* exceed the
/// baseline by both thresholds, in the series' bad direction. Series
/// with fewer than `window + 1` points never flag (no baseline to
/// drift from).
fn detect(series: &TrendSeries, config: &TrendConfig) -> TrendRow {
    let n = series.points.len();
    let window = config.window.max(1);
    let last = series.points.last().map_or(f64::NAN, |p| p.value);
    if n < window + 1 {
        return TrendRow {
            metric: series.metric.clone(),
            n,
            baseline: f64::NAN,
            last,
            delta_pct: f64::NAN,
            flagged: false,
        };
    }
    let head: Vec<f64> = series.points[..n - window]
        .iter()
        .map(|p| p.value)
        .collect();
    let baseline = median(&head);
    let exceeds = |v: f64| -> bool {
        if !v.is_finite() || !baseline.is_finite() {
            return false;
        }
        let delta = match series.direction {
            Direction::UpIsBad => v - baseline,
            Direction::DownIsBad => baseline - v,
        };
        delta > baseline.abs() * config.rel_tol && delta > config.noise_floor
    };
    let flagged = series.points[n - window..].iter().all(|p| exceeds(p.value));
    let delta_pct = if baseline.is_finite() && baseline != 0.0 {
        (last - baseline) / baseline.abs() * 100.0
    } else {
        f64::NAN
    };
    TrendRow {
        metric: series.metric.clone(),
        n,
        baseline,
        last,
        delta_pct,
        flagged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(metric: &str, direction: Direction, values: &[f64]) -> TrendSeries {
        TrendSeries {
            metric: metric.to_string(),
            direction,
            points: values
                .iter()
                .enumerate()
                .map(|(i, v)| TrendPoint {
                    label: format!("run-{i}"),
                    value: *v,
                })
                .collect(),
        }
    }

    #[test]
    fn sustained_regression_is_flagged() {
        let s = series(
            "wall_ms",
            Direction::UpIsBad,
            &[100.0, 102.0, 99.0, 130.0, 135.0],
        );
        let report = TrendReport::analyze(&[s], TrendConfig::default());
        assert_eq!(report.flagged_count(), 1);
        let row = &report.rows[0];
        assert_eq!(row.baseline, 100.0);
        assert_eq!(row.last, 135.0);
        assert!(row.flagged);
        assert!(report.render_markdown().contains("!!"));
    }

    #[test]
    fn single_spike_is_not_sustained() {
        // The spike is the second-to-last point; the latest recovered.
        let s = series(
            "wall_ms",
            Direction::UpIsBad,
            &[100.0, 101.0, 99.0, 140.0, 100.0],
        );
        let report = TrendReport::analyze(&[s], TrendConfig::default());
        assert_eq!(report.flagged_count(), 0);
    }

    #[test]
    fn short_series_never_flags() {
        for values in [&[][..], &[100.0][..], &[100.0, 200.0][..]] {
            let s = series("wall_ms", Direction::UpIsBad, values);
            let report = TrendReport::analyze(&[s], TrendConfig::default());
            assert_eq!(report.flagged_count(), 0, "values {values:?}");
        }
    }

    #[test]
    fn sub_floor_and_sub_tolerance_drift_is_noise() {
        // +8 ms on a 100 ms baseline: below the 10 % tolerance.
        let rel = series("wall_ms", Direction::UpIsBad, &[100.0, 100.0, 108.0, 108.0]);
        // +300 % on a 2 ms baseline: below the 10 ms noise floor.
        let abs = series("tiny_ms", Direction::UpIsBad, &[2.0, 2.0, 8.0, 8.0]);
        let report = TrendReport::analyze(&[rel, abs], TrendConfig::default());
        assert_eq!(report.flagged_count(), 0, "{report:?}");
    }

    #[test]
    fn down_is_bad_flags_accuracy_drops() {
        let cfg = TrendConfig {
            rel_tol: 0.05,
            noise_floor: 0.01,
            window: 2,
        };
        let s = series(
            "test_accuracy",
            Direction::DownIsBad,
            &[0.90, 0.91, 0.90, 0.70, 0.72],
        );
        let report = TrendReport::analyze(&[s], cfg);
        assert_eq!(report.flagged_count(), 1);
        // Improvement never flags.
        let up = series(
            "test_accuracy",
            Direction::DownIsBad,
            &[0.70, 0.71, 0.70, 0.95, 0.96],
        );
        assert_eq!(TrendReport::analyze(&[up], cfg).flagged_count(), 0);
    }

    #[test]
    fn nan_points_never_flag() {
        let s = series(
            "wall_ms",
            Direction::UpIsBad,
            &[100.0, 100.0, f64::NAN, f64::NAN],
        );
        let report = TrendReport::analyze(&[s], TrendConfig::default());
        assert_eq!(report.flagged_count(), 0);
    }

    #[test]
    fn markdown_render_is_stable() {
        let s = series("wall_ms", Direction::UpIsBad, &[100.0, 100.0, 130.0, 135.0]);
        let md = TrendReport::analyze(&[s], TrendConfig::default()).render_markdown();
        assert!(
            md.contains("| wall_ms | 4 | 100.000 | 135.000 | +35.0 % | !! |"),
            "{md}"
        );
        assert!(md.contains("1 sustained regression detected."), "{md}");
    }
}
