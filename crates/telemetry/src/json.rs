//! Minimal JSON support for the JSONL sink: serialization of events
//! and a small parser sufficient to round-trip them in tests and to
//! let downstream tools re-read their own logs. Not a general-purpose
//! JSON library.

use crate::event::{Event, Value};
use std::collections::BTreeMap;

/// Escapes `s` per RFC 8259 and appends it, quoted, to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` on f64 is the shortest representation that
                // round-trips; plain `{}` drops the decimal point on
                // whole numbers, which would change the field's JSON
                // type on re-read.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
        Value::Str(x) => write_escaped(out, x),
    }
}

/// Serializes an event as a single-line JSON object:
/// `{"event":"epoch","level":"info","ts":...,"epoch":3,...}`.
///
/// `ts_secs` is a caller-supplied unix timestamp (stamped by the sink,
/// not stored on the event, so [`Event`] equality stays deterministic
/// for tests). Pass `None` to omit.
pub fn event_to_json(event: &Event, ts_secs: Option<f64>) -> String {
    let mut out = String::with_capacity(64 + 24 * event.fields.len());
    out.push_str("{\"event\":");
    write_escaped(&mut out, event.name);
    out.push_str(",\"level\":");
    write_escaped(&mut out, event.level.as_str());
    if let Some(ts) = ts_secs {
        out.push_str(",\"ts\":");
        write_value(&mut out, &Value::F64(ts));
    }
    for (key, value) in &event.fields {
        out.push(',');
        write_escaped(&mut out, key);
        out.push(':');
        write_value(&mut out, value);
    }
    out.push('}');
    out
}

/// A parsed JSON value (subset: no nested containers inside events,
/// but the parser handles them for robustness).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; parsed as f64.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; key order is not preserved.
    Obj(BTreeMap<String, Json>),
}

/// Containers deeper than this are rejected rather than parsed; the
/// parser recurses per nesting level, so the bound keeps adversarial
/// inputs (`[[[[…`) from overflowing the stack.
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document. Returns `None` on any syntax
/// error, trailing garbage, or nesting deeper than 128 containers.
pub fn parse(input: &str) -> Option<Json> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Option<()> {
        if self.bump()? == b {
            Some(())
        } else {
            None
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Option<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(v)
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.skip_ws();
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        s.parse::<f64>().ok().map(Json::Num)
    }

    fn string(&mut self) -> Option<String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0c}'),
                    b'u' => {
                        let cp = self.hex4()?;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require the low half.
                            self.consume(b'\\')?;
                            self.consume(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return None;
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(char::from_u32(c)?);
                        } else {
                            out.push(char::from_u32(cp)?);
                        }
                    }
                    _ => return None,
                },
                // Multi-byte UTF-8 passes through untouched; we only
                // split on structural ASCII bytes, which can't appear
                // inside a UTF-8 continuation sequence.
                b => {
                    let len = utf8_len(b)?;
                    let end = self.pos - 1 + len;
                    let s = std::str::from_utf8(self.bytes.get(self.pos - 1..end)?).ok()?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = (self.bump()? as char).to_digit(16)?;
            v = v * 16 + d;
        }
        Some(v)
    }

    fn enter(&mut self) -> Option<()> {
        if self.depth >= MAX_DEPTH {
            return None;
        }
        self.depth += 1;
        Some(())
    }

    fn array(&mut self) -> Option<Json> {
        self.enter()?;
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => {
                    self.depth -= 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.enter()?;
        self.consume(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Some(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => {
                    self.depth -= 1;
                    return Some(Json::Obj(map));
                }
                _ => return None,
            }
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }

    /// Bool value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

/// Checks that a parsed JSONL line carries exactly the name, level and
/// fields of `event` (used by tests to prove round-tripping; event
/// keys are `&'static str`, so rebuilding an [`Event`] from owned JSON
/// strings is not possible without leaking).
pub fn json_matches_event(json: &Json, event: &Event) -> bool {
    if json.get("event").and_then(Json::as_str) != Some(event.name) {
        return false;
    }
    if json.get("level").and_then(Json::as_str) != Some(event.level.as_str()) {
        return false;
    }
    event.fields.iter().all(|(key, value)| {
        let got = match json.get(key) {
            Some(g) => g,
            None => return false,
        };
        match value {
            Value::I64(v) => got.as_f64() == Some(*v as f64),
            Value::U64(v) => got.as_f64() == Some(*v as f64),
            Value::F64(v) if v.is_finite() => got.as_f64() == Some(*v),
            Value::F64(_) => *got == Json::Null,
            Value::Bool(v) => got.as_bool() == Some(*v),
            Value::Str(v) => got.as_str() == Some(v.as_str()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;

    #[test]
    fn escaping_special_characters() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\r\u{08}\u{0c}\u{01}é✓");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\r\\b\\f\\u0001é✓\"");
        // And the parser undoes it.
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\r\u{08}\u{0c}\u{01}é✓"));
    }

    #[test]
    fn event_round_trips_through_jsonl() {
        let e = Event::new("epoch", Level::Info)
            .with_u64("epoch", 12)
            .with_f64("loss", 0.125)
            .with_f64("whole", 3.0)
            .with_f64("nan", f64::NAN)
            .with_i64("neg", -42)
            .with_bool("feasible", false)
            .with_str("note", "line1\nline2 \"quoted\" \\slash");
        let line = event_to_json(&e, Some(1_722_000_000.5));
        assert!(!line.contains('\n'), "JSONL must be single-line: {line}");
        let parsed = parse(&line).expect("valid JSON");
        assert!(json_matches_event(&parsed, &e), "{line}");
        assert_eq!(
            parsed.get("ts").and_then(Json::as_f64),
            Some(1_722_000_000.5)
        );
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        let e = Event::new("x", Level::Info).with_f64("v", 2.0);
        let line = event_to_json(&e, None);
        assert!(line.contains("\"v\":2.0"), "{line}");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert_eq!(parse("{"), None);
        assert_eq!(parse("{} extra"), None);
        assert_eq!(parse("\"unterminated"), None);
        assert_eq!(parse("{\"a\":}"), None);
        assert_eq!(parse("[1,2,"), None);
        assert_eq!(parse("nul"), None);
    }

    #[test]
    fn parser_handles_containers_and_numbers() {
        let v = parse("{\"a\":[1,-2.5,1e3],\"b\":{\"c\":null},\"d\":true} ").unwrap();
        let arr = match v.get("a") {
            Some(Json::Arr(a)) => a,
            other => panic!("{other:?}"),
        };
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // Comfortably inside the bound: parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_some());
        // Past the bound: clean `None`, no stack overflow.
        let deep_arr = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        assert_eq!(parse(&deep_arr), None);
        let deep_obj = format!("{}1{}", "{\"a\":".repeat(5_000), "}".repeat(5_000));
        assert_eq!(parse(&deep_obj), None);
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        let v = parse("\"\\u00e9\\u2713\"").unwrap();
        assert_eq!(v.as_str(), Some("é✓"));
        // Surrogate pair (😀 U+1F600).
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Lone high surrogate is invalid.
        assert_eq!(parse("\"\\ud83d\""), None);
    }
}
