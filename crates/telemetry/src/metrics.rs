//! Aggregation primitives: thread-safe counters and gauges for hot
//! paths, plus a histogram with nearest-rank percentiles for latency /
//! iteration-count distributions.

use crate::event::{Event, Level};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// A last-write-wins gauge storing an `f64` (as bits, atomically).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicI64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// Creates a gauge holding 0.0.
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits() as i64, Ordering::Relaxed);
    }

    /// Reads the gauge.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed) as u64)
    }
}

/// Why a percentile query could not be answered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PercentileError {
    /// The histogram holds no samples — there is no distribution to
    /// query. (Earlier versions silently returned 0.0 here, which is
    /// indistinguishable from a real all-zero latency.)
    Empty,
    /// The requested quantile is outside `[0, 1]` (or non-finite);
    /// the payload is the offending value.
    InvalidQuantile(f64),
}

impl std::fmt::Display for PercentileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PercentileError::Empty => write!(f, "percentile of an empty histogram"),
            PercentileError::InvalidQuantile(q) => {
                write!(f, "quantile {q} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for PercentileError {}

/// Summary statistics of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest sample (0.0 when empty).
    pub min: f64,
    /// Largest sample (0.0 when empty).
    pub max: f64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// 50th percentile (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl HistogramSummary {
    /// Renders the summary as an event named `name` with one field per
    /// statistic, ready to hand to a sink.
    pub fn to_event(&self, name: &'static str, level: Level) -> Event {
        Event::new(name, level)
            .with_u64("count", self.count)
            .with_f64("min", self.min)
            .with_f64("max", self.max)
            .with_f64("mean", self.mean)
            .with_f64("p50", self.p50)
            .with_f64("p95", self.p95)
            .with_f64("p99", self.p99)
    }
}

/// A sample store with nearest-rank percentiles. Unbounded by default
/// (exact percentiles for bounded-cardinality series — epochs, solves
/// within a run); [`Histogram::with_sample_cap`] bounds memory for
/// unbounded streams by switching to uniform reservoir sampling
/// (Vitter's Algorithm R) once the cap is reached. Count, min, max and
/// mean stay exact in both regimes; above the cap the percentiles are
/// estimates over a uniform subsample.
#[derive(Debug)]
pub struct Histogram {
    inner: Mutex<HistInner>,
}

#[derive(Debug)]
struct HistInner {
    samples: Vec<f64>,
    cap: usize,
    seen: u64,
    sum: f64,
    min: f64,
    max: f64,
    rng: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty, unbounded histogram (exact percentiles).
    pub fn new() -> Self {
        Self::with_cap_inner(usize::MAX)
    }

    /// Creates an empty histogram that stores at most `cap` samples
    /// (minimum 1). Percentiles are exact until `cap` samples have
    /// been recorded, then become reservoir estimates.
    pub fn with_sample_cap(cap: usize) -> Self {
        Self::with_cap_inner(cap.max(1))
    }

    fn with_cap_inner(cap: usize) -> Self {
        Histogram {
            inner: Mutex::new(HistInner {
                samples: Vec::new(),
                cap,
                seen: 0,
                sum: 0.0,
                min: 0.0,
                max: 0.0,
                rng: 0x9E37_79B9_7F4A_7C15,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HistInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records one sample; non-finite values are dropped.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let mut inner = self.lock();
        inner.seen += 1;
        inner.sum += v;
        if inner.seen == 1 {
            inner.min = v;
            inner.max = v;
        } else {
            inner.min = inner.min.min(v);
            inner.max = inner.max.max(v);
        }
        if inner.samples.len() < inner.cap {
            inner.samples.push(v);
        } else {
            // Algorithm R: replace a random slot with probability
            // cap/seen, keeping the reservoir a uniform sample.
            let j = next_rand(&mut inner.rng) % inner.seen;
            if (j as usize) < inner.cap {
                inner.samples[j as usize] = v;
            }
        }
    }

    /// Number of recorded samples (including any no longer retained).
    pub fn count(&self) -> u64 {
        self.lock().seen
    }

    /// Drops all samples and aggregates, keeping the cap — the
    /// histogram is ready to accumulate a fresh window.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.samples.clear();
        inner.seen = 0;
        inner.sum = 0.0;
        inner.min = 0.0;
        inner.max = 0.0;
    }

    /// Number of samples currently retained (≤ the cap).
    pub fn retained(&self) -> u64 {
        self.lock().samples.len() as u64
    }

    /// Nearest-rank percentile: the smallest retained sample such that
    /// at least `q` of the distribution is ≤ it (`q` in `[0, 1]`).
    /// Exact below the sample cap, a reservoir estimate above it.
    ///
    /// # Errors
    ///
    /// [`PercentileError::Empty`] when no samples have been recorded
    /// and [`PercentileError::InvalidQuantile`] when `q` is outside
    /// `[0, 1]` or non-finite.
    pub fn percentile(&self, q: f64) -> Result<f64, PercentileError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(PercentileError::InvalidQuantile(q));
        }
        let inner = self.lock();
        if inner.samples.is_empty() {
            return Err(PercentileError::Empty);
        }
        Ok(percentile_of(&inner.samples, q))
    }

    /// Computes the full summary in one pass over a sorted copy of the
    /// retained samples. Count, min, max and mean are exact even when
    /// the reservoir has dropped samples.
    pub fn summary(&self) -> HistogramSummary {
        let inner = self.lock();
        if inner.seen == 0 {
            return HistogramSummary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted = inner.samples.clone();
        sorted.sort_by(f64::total_cmp);
        HistogramSummary {
            count: inner.seen,
            min: inner.min,
            max: inner.max,
            mean: inner.sum / inner.seen as f64,
            p50: sorted_percentile(&sorted, 0.50),
            p95: sorted_percentile(&sorted, 0.95),
            p99: sorted_percentile(&sorted, 0.99),
        }
    }
}

/// SplitMix64 step — a tiny deterministic generator so the reservoir
/// needs no external RNG dependency.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn percentile_of(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted_percentile(&sorted, q)
}

/// Nearest-rank on an already sorted slice: rank = ⌈q·n⌉ (1-based),
/// clamped to [1, n].
fn sorted_percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn nearest_rank_percentiles_match_definition() {
        // 1..=100: nearest-rank pXX of 100 samples is exactly XX.
        let h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.percentile(0.50), Ok(50.0));
        assert_eq!(h.percentile(0.95), Ok(95.0));
        assert_eq!(h.percentile(0.99), Ok(99.0));
        assert_eq!(h.percentile(0.0), Ok(1.0)); // clamped to first rank
        assert_eq!(h.percentile(1.0), Ok(100.0));

        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!((s.p50, s.p95, s.p99), (50.0, 95.0, 99.0));
    }

    #[test]
    fn small_sample_percentiles() {
        let h = Histogram::new();
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        // ⌈0.5·3⌉ = 2 → 20; ⌈0.95·3⌉ = 3 → 30.
        assert_eq!(h.percentile(0.50), Ok(20.0));
        assert_eq!(h.percentile(0.95), Ok(30.0));
        // A single sample is every percentile.
        let one = Histogram::new();
        one.record(7.0);
        assert_eq!(one.percentile(0.01), Ok(7.0));
        assert_eq!(one.percentile(0.99), Ok(7.0));
    }

    #[test]
    fn empty_histogram_summary_is_all_zeros_and_percentile_errors() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        // An empty distribution has no percentiles — typed error, not
        // a silent 0.0.
        assert_eq!(h.percentile(0.5), Err(PercentileError::Empty));
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn out_of_range_quantiles_are_rejected() {
        let h = Histogram::new();
        h.record(1.0);
        assert_eq!(
            h.percentile(1.01),
            Err(PercentileError::InvalidQuantile(1.01))
        );
        assert_eq!(
            h.percentile(-0.5),
            Err(PercentileError::InvalidQuantile(-0.5))
        );
        assert!(h.percentile(f64::NAN).is_err());
        assert!(h
            .percentile(2.0)
            .unwrap_err()
            .to_string()
            .contains("outside [0, 1]"));
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(0.5), Ok(1.0));
    }

    #[test]
    fn capped_histogram_is_exact_below_cap() {
        let h = Histogram::with_sample_cap(64);
        for i in 1..=50 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 50);
        assert_eq!(h.retained(), 50);
        // Same nearest-rank answers as the unbounded histogram.
        assert_eq!(h.percentile(0.50), Ok(25.0));
        assert_eq!(h.percentile(0.95), Ok(48.0));
        let s = h.summary();
        assert_eq!((s.min, s.max), (1.0, 50.0));
        assert!((s.mean - 25.5).abs() < 1e-12);
    }

    #[test]
    fn capped_histogram_bounds_memory_above_cap() {
        let h = Histogram::with_sample_cap(64);
        let n = 10_000u64;
        for i in 1..=n {
            h.record(i as f64);
        }
        // Exact aggregates survive the reservoir.
        assert_eq!(h.count(), n);
        assert_eq!(h.retained(), 64);
        let s = h.summary();
        assert_eq!(s.count, n);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, n as f64);
        assert!((s.mean - 5000.5).abs() < 1e-9, "mean {}", s.mean);
        // The reservoir is a uniform subsample: the median estimate of
        // a uniform 1..=10000 stream lands well inside the bulk. With
        // the fixed internal seed this is deterministic.
        assert!(
            (2000.0..=8000.0).contains(&s.p50),
            "reservoir p50 {} implausible for uniform stream",
            s.p50
        );
        assert!(s.p95 >= s.p50 && s.p99 >= s.p95);
    }

    #[test]
    fn cap_of_zero_is_clamped_to_one() {
        let h = Histogram::with_sample_cap(0);
        h.record(3.0);
        h.record(5.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.retained(), 1);
        let s = h.summary();
        assert_eq!((s.min, s.max), (3.0, 5.0));
        assert_eq!(s.mean, 4.0);
    }

    #[test]
    fn summary_event_rendering() {
        let h = Histogram::new();
        h.record(2.0);
        h.record(4.0);
        let e = h.summary().to_event("epoch_ms", Level::Info);
        assert_eq!(e.name, "epoch_ms");
        assert_eq!(e.get_u64("count"), Some(2));
        assert_eq!(e.get_f64("mean"), Some(3.0));
        assert_eq!(e.get_f64("p50"), Some(2.0));
    }
}
