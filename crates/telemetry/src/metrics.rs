//! Aggregation primitives: thread-safe counters and gauges for hot
//! paths, plus a histogram with nearest-rank percentiles for latency /
//! iteration-count distributions.

use crate::event::{Event, Level};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// A last-write-wins gauge storing an `f64` (as bits, atomically).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicI64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// Creates a gauge holding 0.0.
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits() as i64, Ordering::Relaxed);
    }

    /// Reads the gauge.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed) as u64)
    }
}

/// Summary statistics of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest sample (0.0 when empty).
    pub min: f64,
    /// Largest sample (0.0 when empty).
    pub max: f64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// 50th percentile (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl HistogramSummary {
    /// Renders the summary as an event named `name` with one field per
    /// statistic, ready to hand to a sink.
    pub fn to_event(&self, name: &'static str, level: Level) -> Event {
        Event::new(name, level)
            .with_u64("count", self.count)
            .with_f64("min", self.min)
            .with_f64("max", self.max)
            .with_f64("mean", self.mean)
            .with_f64("p50", self.p50)
            .with_f64("p95", self.p95)
            .with_f64("p99", self.p99)
    }
}

/// A sample reservoir with exact nearest-rank percentiles. Stores all
/// samples; intended for bounded-cardinality series (epochs, solves
/// within a run), not unbounded production streams.
#[derive(Debug, Default)]
pub struct Histogram {
    samples: Mutex<Vec<f64>>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Mutex::new(Vec::new()),
        }
    }

    /// Records one sample; non-finite values are dropped.
    pub fn record(&self, v: f64) {
        if v.is_finite() {
            self.samples
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.samples
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len() as u64
    }

    /// Nearest-rank percentile: the smallest sample such that at least
    /// `q` of the distribution is ≤ it (`q` in `[0, 1]`). Returns 0.0
    /// when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        let samples = self
            .samples
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        percentile_of(&samples, q)
    }

    /// Computes the full summary in one pass over a sorted copy.
    pub fn summary(&self) -> HistogramSummary {
        let samples = self
            .samples
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if samples.is_empty() {
            return HistogramSummary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len() as u64;
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        HistogramSummary {
            count,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean,
            p50: sorted_percentile(&sorted, 0.50),
            p95: sorted_percentile(&sorted, 0.95),
            p99: sorted_percentile(&sorted, 0.99),
        }
    }
}

fn percentile_of(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted_percentile(&sorted, q)
}

/// Nearest-rank on an already sorted slice: rank = ⌈q·n⌉ (1-based),
/// clamped to [1, n].
fn sorted_percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn nearest_rank_percentiles_match_definition() {
        // 1..=100: nearest-rank pXX of 100 samples is exactly XX.
        let h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.percentile(0.50), 50.0);
        assert_eq!(h.percentile(0.95), 95.0);
        assert_eq!(h.percentile(0.99), 99.0);
        assert_eq!(h.percentile(0.0), 1.0); // clamped to first rank
        assert_eq!(h.percentile(1.0), 100.0);

        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!((s.p50, s.p95, s.p99), (50.0, 95.0, 99.0));
    }

    #[test]
    fn small_sample_percentiles() {
        let h = Histogram::new();
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        // ⌈0.5·3⌉ = 2 → 20; ⌈0.95·3⌉ = 3 → 30.
        assert_eq!(h.percentile(0.50), 20.0);
        assert_eq!(h.percentile(0.95), 30.0);
        // A single sample is every percentile.
        let one = Histogram::new();
        one.record(7.0);
        assert_eq!(one.percentile(0.01), 7.0);
        assert_eq!(one.percentile(0.99), 7.0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0.0);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(0.5), 1.0);
    }

    #[test]
    fn summary_event_rendering() {
        let h = Histogram::new();
        h.record(2.0);
        h.record(4.0);
        let e = h.summary().to_event("epoch_ms", Level::Info);
        assert_eq!(e.name, "epoch_ms");
        assert_eq!(e.get_u64("count"), Some(2));
        assert_eq!(e.get_f64("mean"), Some(3.0));
        assert_eq!(e.get_f64("p50"), Some(2.0));
    }
}
