//! Streaming metrics: lock-free log-bucketed mergeable histograms and
//! a process-wide metrics registry with Prometheus-text exposition.
//!
//! The reservoir [`crate::Histogram`] trades tail accuracy for memory
//! on long streams: once the cap is hit, p95/p99 become estimates over
//! a uniform subsample and two runs recording the same values in a
//! different order produce different summaries. [`StreamHistogram`]
//! removes both problems for the hot paths (per-solve timing, tape
//! forward/backward, epoch durations):
//!
//! * **Bounded memory**: values are quantized to integer ticks and
//!   counted in HDR-style log buckets — 64 linear buckets below 64
//!   ticks, then 64 sub-buckets per power of two, ~30 KB total,
//!   independent of how many samples are recorded.
//! * **Lock-free**: the record path is a handful of relaxed atomic
//!   adds; no mutex, no allocation.
//! * **Exact to the bucket**: p50/p95/p99 are exact up to the bucket
//!   width (≤ 1/64 ≈ 1.6 % relative); `count`, `min`, `max` and the
//!   tick-quantized mean are exact.
//! * **Deterministic merge**: bucket counts and the tick sum are
//!   integers, so accumulation is associative and commutative —
//!   merged summaries are bit-identical regardless of thread count or
//!   recording interleaving. This is what lets the `--threads 1` vs
//!   `--threads 4` determinism gate cover metrics too.
//!
//! [`MetricsRegistry`] names histograms/counters/gauges, snapshots
//! them in one pass, and renders the Prometheus text exposition format
//! (histograms as `summary` metrics) — the CLI drops this as
//! `metrics.prom` into each run directory.
//!
//! # Example
//!
//! ```
//! use pnc_telemetry::stream::StreamHistogram;
//!
//! // Unit resolution: integer-valued streams below 64 are exact.
//! let h = StreamHistogram::with_ticks_per_unit(1.0);
//! for v in [1.0, 2.0, 3.0] {
//!     h.record(v);
//! }
//! let s = h.summary();
//! assert_eq!(s.count, 3);
//! assert_eq!(s.p50, 2.0);
//!
//! let off = StreamHistogram::disabled();
//! off.record(5.0); // one branch, records nothing
//! assert_eq!(off.count(), 0);
//! ```

use crate::metrics::{Counter, Gauge, HistogramSummary, PercentileError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sub-bucket resolution: 2^6 = 64 sub-buckets per octave, bounding
/// the relative quantization error at 1/64.
const SUB_BITS: u32 = 6;
/// Number of linear buckets (also sub-buckets per octave).
const BASE: u64 = 1 << SUB_BITS;
/// Total bucket count: the linear region plus 64 sub-buckets for each
/// of the 58 octaves a u64 tick can fall in above it.
const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * BASE as usize;
/// Default ticks per recorded unit. Values are conventionally
/// milliseconds, so one tick is a nanosecond; anything up to ~2.9
/// million hours fits in a u64 tick.
const DEFAULT_TICKS_PER_UNIT: f64 = 1e6;

/// Maps a tick value to its bucket index. The first [`BASE`] ticks map
/// linearly (exact); above that each power of two splits into
/// [`BASE`] equal sub-buckets.
fn bucket_index(tick: u64) -> usize {
    if tick < BASE {
        return tick as usize;
    }
    let msb = 63 - tick.leading_zeros();
    let shift = msb - SUB_BITS;
    // (tick >> shift) is in [BASE, 2*BASE): the leading 1 plus the
    // next SUB_BITS bits.
    ((shift as usize + 1) * BASE as usize) + ((tick >> shift) as usize - BASE as usize)
}

/// The smallest tick value mapping to bucket `idx` — the canonical
/// representative used for percentiles, making every derived statistic
/// a pure function of the integer bucket counts.
fn bucket_floor(idx: usize) -> u64 {
    if idx < BASE as usize {
        return idx as u64;
    }
    let shift = (idx / BASE as usize - 1) as u32;
    let sub = (idx % BASE as usize) as u64;
    (BASE + sub) << shift
}

#[derive(Debug)]
struct HistCore {
    /// Quantization scale: recorded value × this = integer ticks.
    ticks_per_unit: f64,
    count: AtomicU64,
    /// Sum of quantized ticks. Integer so that accumulation is exactly
    /// associative; wraps only after ~1.8e19 summed ticks.
    sum_ticks: AtomicU64,
    /// Smallest recorded tick (`u64::MAX` while empty).
    min_ticks: AtomicU64,
    /// Largest recorded tick.
    max_ticks: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

/// A cheap, cloneable handle to a lock-free log-bucketed histogram.
/// Clones share the underlying buckets. [`StreamHistogram::disabled`]
/// makes every record a single branch that touches nothing.
#[derive(Clone, Default)]
pub struct StreamHistogram {
    core: Option<Arc<HistCore>>,
}

impl std::fmt::Debug for StreamHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamHistogram")
            .field("enabled", &self.is_enabled())
            .field("count", &self.count())
            .finish()
    }
}

impl StreamHistogram {
    /// An enabled histogram at the default resolution (10⁻⁶ of a
    /// unit per tick — nanoseconds when recording milliseconds): all
    /// buckets allocated up front, so the record path never allocates.
    pub fn new() -> Self {
        Self::with_ticks_per_unit(DEFAULT_TICKS_PER_UNIT)
    }

    /// An enabled histogram with an explicit quantization scale.
    /// Integer-valued streams (iteration counts) want
    /// `ticks_per_unit = 1.0`: every value below 64 then lands in the
    /// exact linear region. Non-finite or non-positive scales fall
    /// back to the default.
    pub fn with_ticks_per_unit(ticks_per_unit: f64) -> Self {
        let scale = if ticks_per_unit.is_finite() && ticks_per_unit > 0.0 {
            ticks_per_unit
        } else {
            DEFAULT_TICKS_PER_UNIT
        };
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        StreamHistogram {
            core: Some(Arc::new(HistCore {
                ticks_per_unit: scale,
                count: AtomicU64::new(0),
                sum_ticks: AtomicU64::new(0),
                min_ticks: AtomicU64::new(u64::MAX),
                max_ticks: AtomicU64::new(0),
                buckets: buckets.into_boxed_slice(),
            })),
        }
    }

    /// A handle that records nothing; every operation is inert.
    pub fn disabled() -> Self {
        StreamHistogram { core: None }
    }

    /// Whether this handle records samples.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Records one sample. Non-finite and negative values are dropped
    /// (the streams this serves — durations, iteration counts — are
    /// non-negative by construction). Lock-free and allocation-free.
    pub fn record(&self, v: f64) {
        let Some(core) = &self.core else {
            return;
        };
        if !v.is_finite() || v < 0.0 {
            return;
        }
        // f64→u64 `as` saturates, so oversized values land in the top
        // bucket instead of wrapping.
        let tick = (v * core.ticks_per_unit).round() as u64;
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum_ticks.fetch_add(tick, Ordering::Relaxed);
        core.min_ticks.fetch_min(tick, Ordering::Relaxed);
        core.max_ticks.fetch_max(tick, Ordering::Relaxed);
        core.buckets[bucket_index(tick)].fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a timer that records its elapsed milliseconds here when
    /// dropped. Disabled handles return an inert timer without reading
    /// the clock.
    pub fn start_sample(&self) -> SampleTimer {
        SampleTimer {
            state: self.core.as_ref().map(|_| (self.clone(), Instant::now())),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Adds every sample of `other` into `self`, bucket by bucket.
    /// Integer addition makes this associative and commutative: any
    /// merge tree over any recording interleaving yields bit-identical
    /// summaries. Inert if either side is disabled or the two
    /// histograms quantize at different resolutions (their tick spaces
    /// are incompatible).
    pub fn merge_from(&self, other: &StreamHistogram) {
        let (Some(a), Some(b)) = (&self.core, &other.core) else {
            return;
        };
        if a.ticks_per_unit != b.ticks_per_unit {
            return;
        }
        a.count
            .fetch_add(b.count.load(Ordering::Relaxed), Ordering::Relaxed);
        a.sum_ticks
            .fetch_add(b.sum_ticks.load(Ordering::Relaxed), Ordering::Relaxed);
        a.min_ticks
            .fetch_min(b.min_ticks.load(Ordering::Relaxed), Ordering::Relaxed);
        a.max_ticks
            .fetch_max(b.max_ticks.load(Ordering::Relaxed), Ordering::Relaxed);
        for (dst, src) in a.buckets.iter().zip(b.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Resets all counts; the histogram is ready for a fresh window.
    /// (Not atomic with respect to concurrent recorders: clear while
    /// quiescent, exactly like taking a summary window.)
    pub fn clear(&self) {
        let Some(core) = &self.core else {
            return;
        };
        core.count.store(0, Ordering::Relaxed);
        core.sum_ticks.store(0, Ordering::Relaxed);
        core.min_ticks.store(u64::MAX, Ordering::Relaxed);
        core.max_ticks.store(0, Ordering::Relaxed);
        for b in core.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Bucket-exact nearest-rank percentile (`q` in `[0, 1]`): the
    /// floor value of the bucket holding the ⌈q·n⌉-th sample.
    ///
    /// # Errors
    ///
    /// [`PercentileError::Empty`] when no samples have been recorded
    /// (or the handle is disabled); [`PercentileError::InvalidQuantile`]
    /// when `q` is outside `[0, 1]` or non-finite.
    pub fn percentile(&self, q: f64) -> Result<f64, PercentileError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(PercentileError::InvalidQuantile(q));
        }
        let Some(core) = &self.core else {
            return Err(PercentileError::Empty);
        };
        let n = core.count.load(Ordering::Relaxed);
        if n == 0 {
            return Err(PercentileError::Empty);
        }
        Ok(percentile_ticks(core, n, q) as f64 / core.ticks_per_unit)
    }

    /// The full summary. All fields derive from integer accumulators,
    /// so two histograms holding the same multiset of samples — in any
    /// recording or merge order — summarize bit-identically. Empty
    /// histograms summarize as all zeros.
    pub fn summary(&self) -> HistogramSummary {
        let zero = HistogramSummary {
            count: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        };
        let Some(core) = &self.core else {
            return zero;
        };
        let n = core.count.load(Ordering::Relaxed);
        if n == 0 {
            return zero;
        }
        let sum = core.sum_ticks.load(Ordering::Relaxed);
        let scale = core.ticks_per_unit;
        HistogramSummary {
            count: n,
            min: core.min_ticks.load(Ordering::Relaxed) as f64 / scale,
            max: core.max_ticks.load(Ordering::Relaxed) as f64 / scale,
            mean: (sum as f64 / n as f64) / scale,
            p50: percentile_ticks(core, n, 0.50) as f64 / scale,
            p95: percentile_ticks(core, n, 0.95) as f64 / scale,
            p99: percentile_ticks(core, n, 0.99) as f64 / scale,
        }
    }
}

/// Nearest-rank bucket walk: returns the floor tick of the bucket
/// containing the ⌈q·n⌉-th sample (1-based, clamped to [1, n]).
fn percentile_ticks(core: &HistCore, n: u64, q: f64) -> u64 {
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    let mut seen = 0u64;
    for (idx, b) in core.buckets.iter().enumerate() {
        seen += b.load(Ordering::Relaxed);
        if seen >= rank {
            return bucket_floor(idx);
        }
    }
    // Racy concurrent record between reading count and the buckets can
    // leave `seen` short; fall back to the recorded max.
    core.max_ticks.load(Ordering::Relaxed)
}

/// RAII timer from [`StreamHistogram::start_sample`]: records elapsed
/// milliseconds on drop.
#[derive(Debug)]
pub struct SampleTimer {
    state: Option<(StreamHistogram, Instant)>,
}

impl SampleTimer {
    /// Stops the timer and records now (equivalent to dropping).
    pub fn finish(self) {}
}

impl Drop for SampleTimer {
    fn drop(&mut self) {
        if let Some((hist, started)) = self.state.take() {
            hist.record(started.elapsed().as_secs_f64() * 1e3);
        }
    }
}

/// One named metric captured by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A last-write-wins value.
    Gauge(f64),
    /// A streamed histogram summary.
    Histogram(HistogramSummary),
}

/// A named registry of streaming metrics. Handles returned by
/// [`MetricsRegistry::counter`] / [`gauge`](MetricsRegistry::gauge) /
/// [`histogram`](MetricsRegistry::histogram) are shared: asking for
/// the same name twice returns the same underlying metric, so distant
/// subsystems accumulate into one place. Registration takes a lock;
/// recording through the returned handles is lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, StreamHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.lock()
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.lock()
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The streamed histogram registered under `name`, created on
    /// first use. The returned handle shares buckets with every other
    /// handle for the same name.
    pub fn histogram(&self, name: &str) -> StreamHistogram {
        self.histogram_scaled(name, DEFAULT_TICKS_PER_UNIT)
    }

    /// Like [`MetricsRegistry::histogram`] but with an explicit tick
    /// resolution used if the histogram does not exist yet (an
    /// existing histogram keeps its original resolution).
    pub fn histogram_scaled(&self, name: &str, ticks_per_unit: f64) -> StreamHistogram {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| StreamHistogram::with_ticks_per_unit(ticks_per_unit))
            .clone()
    }

    /// One consistent pass over every registered metric, name-sorted.
    /// Empty histograms are included (count 0) so dashboards see the
    /// full schema.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let inner = self.lock();
        let mut out: Vec<(String, MetricValue)> = Vec::new();
        for (name, c) in &inner.counters {
            out.push((name.clone(), MetricValue::Counter(c.get())));
        }
        for (name, g) in &inner.gauges {
            out.push((name.clone(), MetricValue::Gauge(g.get())));
        }
        for (name, h) in &inner.histograms {
            out.push((name.clone(), MetricValue::Histogram(h.summary())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Renders every metric in the Prometheus text exposition format.
    /// Counters expose as `counter`, gauges as `gauge`, histograms as
    /// `summary` (quantile series plus `_sum`/`_count`/`_min`/`_max`).
    /// Metric names are prefixed `pnc_` and sanitized to the
    /// `[a-zA-Z0-9_]` charset; output order is name-sorted, so the
    /// rendering is byte-deterministic for a given set of values.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, value) in self.snapshot() {
            let metric = sanitize_metric_name(&name);
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {metric} counter\n{metric} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {metric} gauge\n{metric} "));
                    push_prom_f64(&mut out, v);
                    out.push('\n');
                }
                MetricValue::Histogram(s) => {
                    out.push_str(&format!("# TYPE {metric} summary\n"));
                    for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                        out.push_str(&format!("{metric}{{quantile=\"{q}\"}} "));
                        push_prom_f64(&mut out, v);
                        out.push('\n');
                    }
                    out.push_str(&format!("{metric}_sum "));
                    push_prom_f64(&mut out, s.mean * s.count as f64);
                    out.push_str(&format!("\n{metric}_count {}\n", s.count));
                    for (suffix, v) in [("min", s.min), ("max", s.max)] {
                        out.push_str(&format!(
                            "# TYPE {metric}_{suffix} gauge\n{metric}_{suffix} "
                        ));
                        push_prom_f64(&mut out, v);
                        out.push('\n');
                    }
                }
            }
        }
        out
    }
}

/// Prefixes `pnc_` and maps characters outside `[a-zA-Z0-9_]` to `_`.
fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("pnc_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' {
            c
        } else {
            '_'
        });
    }
    out
}

/// Prometheus sample values: finite floats print via Rust's shortest
/// round-trip formatting; non-finite map to the spec's spellings.
fn push_prom_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        out.push_str(&format!("{v}"));
    }
}

/// Validates Prometheus text exposition output: every non-blank line
/// is either a `# TYPE`/`# HELP` comment or a `name[{labels}] value`
/// sample with a well-formed metric name and a parseable value.
/// Returns the number of samples.
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("TYPE ") || rest.starts_with("HELP ")) {
                return Err(format!("line {}: unknown comment form", lineno + 1));
            }
            continue;
        }
        // Split the sample into "name[{labels}]" and "value".
        let (name_part, value_part) = match line.find('}') {
            Some(close) => {
                let (head, tail) = line.split_at(close + 1);
                (head, tail.trim())
            }
            None => line
                .split_once(' ')
                .ok_or_else(|| format!("line {}: sample missing value", lineno + 1))?,
        };
        let bare_name = name_part.split('{').next().unwrap_or("");
        if bare_name.is_empty()
            || !bare_name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || bare_name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return Err(format!(
                "line {}: bad metric name '{bare_name}'",
                lineno + 1
            ));
        }
        let value = value_part.trim();
        let parses = matches!(value, "NaN" | "+Inf" | "-Inf") || value.parse::<f64>().is_ok();
        if !parses {
            return Err(format!("line {}: bad sample value '{value}'", lineno + 1));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples".to_string());
    }
    Ok(samples)
}

/// A cheap, cloneable handle to an optional [`MetricsRegistry`] —
/// the streaming-metrics analogue of [`crate::Telemetry`]. Disabled
/// handles hand out [`StreamHistogram::disabled`], so instrumented
/// paths stay unconditionally wired at one branch per record.
#[derive(Clone, Default)]
pub struct MetricsHandle {
    registry: Option<Arc<MetricsRegistry>>,
}

impl std::fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl MetricsHandle {
    /// A handle that hands out inert metrics.
    pub fn disabled() -> Self {
        MetricsHandle { registry: None }
    }

    /// A handle backed by a shared registry.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        MetricsHandle {
            registry: Some(registry),
        }
    }

    /// Whether a registry is attached.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.registry.as_ref()
    }

    /// The named histogram from the registry, or an inert handle when
    /// disabled.
    pub fn histogram(&self, name: &str) -> StreamHistogram {
        self.registry
            .as_ref()
            .map_or_else(StreamHistogram::disabled, |r| r.histogram(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_continuous() {
        // The linear region is exact and the first log bucket follows
        // it without a gap.
        for tick in 0..BASE {
            assert_eq!(bucket_index(tick), tick as usize);
            assert_eq!(bucket_floor(tick as usize), tick);
        }
        let mut last = 0usize;
        for tick in [
            64u64,
            65,
            127,
            128,
            1000,
            4096,
            1 << 20,
            (1 << 20) + 17,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(tick);
            assert!(idx >= last, "index not monotonic at tick {tick}");
            assert!(idx < NUM_BUCKETS, "index {idx} out of range");
            let floor = bucket_floor(idx);
            assert!(floor <= tick, "floor {floor} above tick {tick}");
            // The floor maps back to the same bucket.
            assert_eq!(bucket_index(floor), idx);
            last = idx;
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Every tick's bucket floor is within 1/64 of the tick.
        for tick in [100u64, 1_000, 12_345, 1 << 30, (1 << 40) + 999] {
            let floor = bucket_floor(bucket_index(tick));
            let rel = (tick - floor) as f64 / tick as f64;
            assert!(rel <= 1.0 / 64.0 + 1e-12, "tick {tick}: rel err {rel}");
        }
    }

    #[test]
    fn small_integer_samples_are_exact_at_unit_resolution() {
        // ticks_per_unit = 1: integers below 64 live in the linear
        // region, so every statistic is exact.
        let h = StreamHistogram::with_ticks_per_unit(1.0);
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p99, 3.0);
        assert_eq!(h.percentile(0.5), Ok(2.0));
    }

    #[test]
    fn default_resolution_is_bucket_exact() {
        // At the default ns-per-ms resolution, min/max/mean are exact
        // and percentiles are exact to the bucket floor (≤ 1/64 low).
        let h = StreamHistogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!((s.min, s.max, s.mean), (1.0, 4.0, 2.5));
        assert_eq!(s.p50, 1.998848); // floor of the bucket holding 2e6 ticks
        assert_eq!(s.p99, 3.997696);
        assert!(s.p50 <= 2.0 && s.p50 >= 2.0 * (1.0 - 1.0 / 64.0));
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = StreamHistogram::disabled();
        assert!(!h.is_enabled());
        h.record(1.0);
        h.clear();
        h.merge_from(&StreamHistogram::new());
        let t = h.start_sample();
        t.finish();
        assert_eq!(h.count(), 0);
        assert_eq!(h.summary().count, 0);
        assert_eq!(h.percentile(0.5), Err(PercentileError::Empty));
    }

    #[test]
    fn invalid_samples_are_dropped() {
        let h = StreamHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        h.record(0.5);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn percentile_errors_are_typed() {
        let h = StreamHistogram::with_ticks_per_unit(1.0);
        assert_eq!(h.percentile(0.5), Err(PercentileError::Empty));
        h.record(2.0);
        assert_eq!(
            h.percentile(1.5),
            Err(PercentileError::InvalidQuantile(1.5))
        );
        assert_eq!(
            h.percentile(-0.1),
            Err(PercentileError::InvalidQuantile(-0.1))
        );
        assert!(h.percentile(f64::NAN).is_err());
        assert_eq!(h.percentile(1.0), Ok(2.0));
    }

    #[test]
    fn mismatched_resolutions_refuse_to_merge() {
        let a = StreamHistogram::with_ticks_per_unit(1.0);
        let b = StreamHistogram::new();
        b.record(1.0);
        a.merge_from(&b);
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn merge_matches_single_recorder_bitwise() {
        let all = StreamHistogram::new();
        let a = StreamHistogram::new();
        let b = StreamHistogram::new();
        for i in 0..1000 {
            let v = (i as f64) * 0.37 + 0.01;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let merged = StreamHistogram::new();
        merged.merge_from(&b); // reversed order on purpose
        merged.merge_from(&a);
        let (s1, s2) = (all.summary(), merged.summary());
        assert_eq!(s1, s2, "merge must be bit-identical to direct recording");
        assert_eq!(s1.p50.to_bits(), s2.p50.to_bits());
        assert_eq!(s1.mean.to_bits(), s2.mean.to_bits());
    }

    #[test]
    fn clear_resets_to_empty() {
        let h = StreamHistogram::new();
        h.record(5.0);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.summary().count, 0);
        h.record(7.0);
        assert_eq!(h.summary().max, 7.0);
    }

    #[test]
    fn clones_share_buckets() {
        let h = StreamHistogram::new();
        let h2 = h.clone();
        h2.record(3.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn sample_timer_records_a_duration() {
        let h = StreamHistogram::new();
        {
            let _t = h.start_sample();
        }
        h.start_sample().finish();
        assert_eq!(h.count(), 2);
        assert!(h.summary().max >= 0.0);
    }

    #[test]
    fn large_values_land_in_bounded_buckets() {
        let h = StreamHistogram::new();
        h.record(1e300); // saturates to the top tick
        assert_eq!(h.count(), 1);
        let s = h.summary();
        assert!(s.p99 > 0.0 && s.p99.is_finite());
    }

    #[test]
    fn registry_shares_metrics_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("solves").add(2);
        reg.counter("solves").incr();
        assert_eq!(reg.counter("solves").get(), 3);
        reg.gauge("power_watts").set(0.25);
        reg.histogram("epoch_time_ms").record(4.0);
        reg.histogram("epoch_time_ms").record(6.0);
        assert_eq!(reg.histogram("epoch_time_ms").count(), 2);

        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["epoch_time_ms", "power_watts", "solves"]);
        assert_eq!(snap[2].1, MetricValue::Counter(3));
    }

    #[test]
    fn prometheus_exposition_golden() {
        let reg = MetricsRegistry::new();
        reg.counter("spice_solves").add(42);
        reg.gauge("power_watts").set(0.25);
        let h = reg.histogram("epoch_time_ms");
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        let expected = "\
# TYPE pnc_epoch_time_ms summary
pnc_epoch_time_ms{quantile=\"0.5\"} 1.998848
pnc_epoch_time_ms{quantile=\"0.95\"} 3.997696
pnc_epoch_time_ms{quantile=\"0.99\"} 3.997696
pnc_epoch_time_ms_sum 10
pnc_epoch_time_ms_count 4
# TYPE pnc_epoch_time_ms_min gauge
pnc_epoch_time_ms_min 1
# TYPE pnc_epoch_time_ms_max gauge
pnc_epoch_time_ms_max 4
# TYPE pnc_power_watts gauge
pnc_power_watts 0.25
# TYPE pnc_spice_solves counter
pnc_spice_solves 42
";
        assert_eq!(reg.render_prometheus(), expected);
        assert_eq!(validate_prometheus(expected), Ok(9));
    }

    #[test]
    fn prometheus_validation_rejects_malformed_output() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("# FOO bar\n").is_err());
        assert!(validate_prometheus("1bad_name 3\n").is_err());
        assert!(validate_prometheus("name notanumber\n").is_err());
        assert!(validate_prometheus("lonely_name\n").is_err());
        assert_eq!(validate_prometheus("x NaN\ny{a=\"b\"} +Inf\n"), Ok(2));
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(sanitize_metric_name("phase:dc solve"), "pnc_phase_dc_solve");
    }

    #[test]
    fn metrics_handle_threads_through() {
        let off = MetricsHandle::disabled();
        assert!(!off.is_enabled());
        assert!(!off.histogram("x").is_enabled());

        let reg = Arc::new(MetricsRegistry::new());
        let on = MetricsHandle::new(Arc::clone(&reg));
        on.histogram("x").record(1.0);
        assert_eq!(reg.histogram("x").count(), 1);
    }
}
