//! `pnc-cli solver …` — the solver observatory's offline surfaces.
//!
//! * `solver atlas <run-id>` — render the characterization hardness
//!   atlas recorded under `--solver-traces`: total Newton work, the
//!   per-point iteration tail, sparsity-fingerprint cardinality, the
//!   distance↔iterations correlation, and the top-k hardest points.
//!   The render is a pure function of the persisted JSON, so it is
//!   byte-identical for any `--threads` the run was characterized
//!   with — CI diffs it across thread counts.
//! * `solver report <run-id>` — the atlas render plus a rollup of the
//!   run's sampled `solver_traces.jsonl` (convergence, ramp engagement,
//!   residual reduction rates, conditioning).
//! * `solver replay <trace.jsonl>` — re-execute every recorded solve
//!   from its captured inputs and diff the residual trajectories under
//!   a relative noise floor; exits nonzero on any divergence. The
//!   solver is deterministic, so on the same build a replay reproduces
//!   the trajectory bit-for-bit; the noise floor exists so traces
//!   recorded on one machine can be verified on another (different
//!   FMA contraction, different libm).

use crate::args::Args;
use pnc_spice::observe::SolveTrace;
use pnc_spice::solve_dc_captured;
use pnc_surrogate::SolverAtlas;
use pnc_telemetry::json;
use pnc_telemetry::registry::{RunRegistry, DEFAULT_NOISE_FLOOR};
use std::path::Path;

/// Default number of hardest points listed by `solver atlas`.
const DEFAULT_TOP_K: usize = 5;

/// Dispatches the `solver` subcommands. The registry root comes from
/// `--run-dir` (default `runs`).
pub fn cmd_solver(args: &Args) -> Result<(), String> {
    let expect_operands = |n: usize| match args.positionals().len() - 1 {
        got if got == n => Ok(()),
        got => Err(format!("expected {n} operand(s), got {got}")),
    };
    let registry = RunRegistry::new(args.get("run-dir").unwrap_or("runs"));
    match args.positional(
        0,
        "solver subcommand (atlas <run-id> | report <run-id> | replay <trace.jsonl>)",
    )? {
        "atlas" => {
            expect_operands(1)?;
            let atlas = load_atlas(&registry, args.positional(1, "run id")?)?;
            print!("{}", atlas.render(args.get_or("top", DEFAULT_TOP_K)?));
            Ok(())
        }
        "report" => {
            expect_operands(1)?;
            cmd_report(
                &registry,
                args.positional(1, "run id")?,
                args.get_or("top", DEFAULT_TOP_K)?,
            )
        }
        "replay" => {
            expect_operands(1)?;
            cmd_replay(
                args.positional(1, "trace file")?,
                args.get_or("noise-floor", DEFAULT_NOISE_FLOOR)?,
            )
        }
        other => Err(format!(
            "unknown solver subcommand '{other}' (expected atlas, report or replay)"
        )),
    }
}

/// Loads a run's persisted hardness atlas (`solver_atlas.json`).
pub(crate) fn load_atlas(registry: &RunRegistry, run_id: &str) -> Result<SolverAtlas, String> {
    let path = registry.run_dir(run_id).join("solver_atlas.json");
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "run {run_id}: no solver atlas ({}: {e}); re-run with --solver-traces",
            path.display()
        )
    })?;
    let doc = json::parse(&text).ok_or_else(|| format!("{}: not valid JSON", path.display()))?;
    SolverAtlas::from_json(&doc)
        .ok_or_else(|| format!("{}: not a solver_atlas document", path.display()))
}

/// Parses every `solve_trace` line of a JSONL file. Non-trace lines
/// (other events sharing the stream) are skipped; a line that *claims*
/// to be a trace but fails to parse is an error, not a skip.
fn load_traces(path: &Path) -> Result<Vec<SolveTrace>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut traces = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line)
            .ok_or_else(|| format!("{}:{}: not valid JSON", path.display(), lineno + 1))?;
        if doc.get("event").and_then(json::Json::as_str) != Some("solve_trace") {
            continue;
        }
        let trace = SolveTrace::from_json(&doc).ok_or_else(|| {
            format!(
                "{}:{}: malformed solve_trace line",
                path.display(),
                lineno + 1
            )
        })?;
        traces.push(trace);
    }
    Ok(traces)
}

fn cmd_report(registry: &RunRegistry, run_id: &str, top_k: usize) -> Result<(), String> {
    let atlas = load_atlas(registry, run_id)?;
    print!("{}", atlas.render(top_k));
    let traces_path = registry.run_dir(run_id).join("solver_traces.jsonl");
    if !traces_path.is_file() {
        println!("\nno solver_traces.jsonl recorded for this run");
        return Ok(());
    }
    let traces = load_traces(&traces_path)?;
    print!("{}", render_trace_rollup(&traces));
    Ok(())
}

/// Summarizes a set of sampled traces: convergence, ramp engagement,
/// residual reduction rate and conditioning.
fn render_trace_rollup(traces: &[SolveTrace]) -> String {
    let mut out = format!("\nsampled traces · {} recorded\n", traces.len());
    if traces.is_empty() {
        return out;
    }
    let converged = traces.iter().filter(|t| t.converged).count();
    let ramped = traces.iter().filter(|t| t.ramped).count();
    let damped: u64 = traces.iter().map(|t| t.damped_steps).sum();
    let mut rates: Vec<f64> = traces
        .iter()
        .map(SolveTrace::reduction_rate)
        .filter(|r| *r > 0.0)
        .collect();
    rates.sort_by(f64::total_cmp);
    let median_rate = rates.get(rates.len() / 2).copied().unwrap_or(0.0);
    let max_cond1 = traces.iter().map(|t| t.cond1_estimate).fold(0.0, f64::max);
    out.push_str(&format!(
        "  convergence : {converged} converged · {ramped} ramped · {damped} damped steps\n"
    ));
    out.push_str(&format!(
        "  reduction   : median {median_rate:.2} decades/iter over {} measurable trace(s)\n",
        rates.len()
    ));
    out.push_str(&format!("  conditioning: max cond1 {max_cond1:.3e}\n"));
    out
}

/// The outcome of replaying one recorded trace.
struct ReplayOutcome {
    solve_index: u64,
    iterations_recorded: usize,
    iterations_replayed: usize,
    /// Largest relative residual deviation across compared iterations.
    max_rel_dev: f64,
    /// Human reason when the replay diverged, `None` when clean.
    diverged: Option<String>,
}

/// Re-executes one recorded solve and diffs the residual trajectories
/// under `noise_floor` (relative, per iteration).
fn replay_one(trace: &SolveTrace, noise_floor: f64) -> ReplayOutcome {
    let circuit = trace.rebuild_circuit();
    let (_, replayed) = solve_dc_captured(&circuit, &trace.config, trace.warm_start.as_deref());
    let mut outcome = ReplayOutcome {
        solve_index: trace.solve_index,
        iterations_recorded: trace.residuals_amps.len(),
        iterations_replayed: replayed.residuals_amps.len(),
        max_rel_dev: 0.0,
        diverged: None,
    };
    if replayed.converged != trace.converged {
        outcome.diverged = Some(format!(
            "recorded converged={} but replay converged={}",
            trace.converged, replayed.converged
        ));
        return outcome;
    }
    if outcome.iterations_replayed != outcome.iterations_recorded {
        outcome.diverged = Some(format!(
            "trajectory length changed: {} recorded vs {} replayed iterations",
            outcome.iterations_recorded, outcome.iterations_replayed
        ));
        return outcome;
    }
    for (i, (old, new)) in trace
        .residuals_amps
        .iter()
        .zip(&replayed.residuals_amps)
        .enumerate()
    {
        // Relative to the recorded magnitude, with an absolute floor so
        // residuals already at numerical zero cannot divide by ~0.
        let scale = old.abs().max(f64::MIN_POSITIVE.sqrt());
        let rel = (new - old).abs() / scale;
        outcome.max_rel_dev = outcome.max_rel_dev.max(rel);
        if rel > noise_floor && outcome.diverged.is_none() {
            outcome.diverged = Some(format!(
                "iteration {i}: residual {old:.6e} → {new:.6e} (rel dev {rel:.3e} > {noise_floor:.1e})"
            ));
        }
    }
    outcome
}

fn cmd_replay(path: &str, noise_floor: f64) -> Result<(), String> {
    let traces = load_traces(Path::new(path))?;
    if traces.is_empty() {
        return Err(format!("{path}: no solve_trace lines to replay"));
    }
    let mut failures = 0usize;
    for trace in &traces {
        let outcome = replay_one(trace, noise_floor);
        match &outcome.diverged {
            None => println!(
                "solve {:>6}: OK    {} iterations, max rel dev {:.3e}",
                outcome.solve_index, outcome.iterations_recorded, outcome.max_rel_dev
            ),
            Some(reason) => {
                failures += 1;
                println!("solve {:>6}: DIVERGED — {reason}", outcome.solve_index);
            }
        }
    }
    println!(
        "\nreplayed {} trace(s), {} diverged (noise floor {noise_floor:.1e})",
        traces.len(),
        failures
    );
    match failures {
        0 => Ok(()),
        n => Err(format!(
            "{n} replay{} diverged from the recorded trajectory",
            if n == 1 { "" } else { "s" }
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_spice::netlist::Circuit;

    /// A small EGT circuit: nonlinear enough that the Newton trajectory
    /// has several iterations to diff.
    fn egt_circuit() -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let gate = c.node("gate");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GROUND, 0.8);
        c.vsource(gate, Circuit::GROUND, 0.5);
        c.resistor(vdd, out, 50_000.0);
        c.egt(out, gate, Circuit::GROUND, 200e-6, 40e-6);
        c
    }

    fn recorded_trace() -> SolveTrace {
        let circuit = egt_circuit();
        let cfg = pnc_spice::dc::SolverConfig::default();
        let (result, trace) = solve_dc_captured(&circuit, &cfg, None);
        result.expect("test circuit solves");
        trace
    }

    #[test]
    fn replay_round_trips_through_jsonl_and_passes_clean() {
        let trace = recorded_trace();
        let line = trace.to_jsonl();
        let parsed = SolveTrace::from_json(&json::parse(&line).expect("valid JSONL"))
            .expect("line parses back");
        let outcome = replay_one(&parsed, 1e-6);
        assert!(outcome.diverged.is_none(), "{:?}", outcome.diverged);
        // Same build, same inputs: the solver is deterministic, so the
        // replay reproduces the trajectory exactly, not just within
        // the noise floor.
        assert_eq!(outcome.max_rel_dev, 0.0);
        assert!(outcome.iterations_recorded >= 2, "nonlinear solve");
    }

    #[test]
    fn replay_flags_a_tampered_trajectory() {
        let mut trace = recorded_trace();
        let mid = trace.residuals_amps.len() / 2;
        trace.residuals_amps[mid] *= 1.5;
        let outcome = replay_one(&trace, 1e-6);
        let reason = outcome.diverged.expect("tampered residual must diverge");
        assert!(reason.contains("rel dev"), "{reason}");
    }

    #[test]
    fn replay_flags_a_truncated_trajectory() {
        let mut trace = recorded_trace();
        trace.residuals_amps.pop();
        trace.steps_volts.pop();
        trace.iterations -= 1;
        let outcome = replay_one(&trace, 1e-6);
        let reason = outcome.diverged.expect("truncated trace must diverge");
        assert!(reason.contains("trajectory length"), "{reason}");
    }

    #[test]
    fn trace_loader_skips_foreign_events_but_rejects_bad_traces() {
        let dir = std::env::temp_dir().join(format!("pnc-solver-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.jsonl");
        let trace = recorded_trace();
        let mixed = format!(
            "{}\n{{\"event\":\"run_start\",\"level\":\"info\"}}\n",
            trace.to_jsonl()
        );
        std::fs::write(&path, &mixed).unwrap();
        let traces = load_traces(&path).expect("mixed stream loads");
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0], trace);

        std::fs::write(&path, "{\"event\":\"solve_trace\"}\n").unwrap();
        let err = load_traces(&path).unwrap_err();
        assert!(err.contains("malformed solve_trace"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_rollup_renders_convergence_and_conditioning() {
        let trace = recorded_trace();
        let text = render_trace_rollup(std::slice::from_ref(&trace));
        assert!(text.contains("sampled traces · 1 recorded"), "{text}");
        assert!(text.contains("1 converged"), "{text}");
        assert!(text.contains("decades/iter"), "{text}");
    }
}
