//! Tiny hand-rolled argument parser (the workspace keeps external
//! dependencies to `rand` + dev-deps, so no clap).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options, bare
/// `--flag`s and trailing positional operands (used by `runs show
/// <id>` / `runs diff <a> <b>`).
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = items.into_iter().peekable();
        while let Some(item) = iter.next() {
            if let Some(key) = item.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name '--'".to_string());
                }
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        // lint: allow(L001, reason = "peek() just returned Some for this iterator")
                        let value = iter.next().expect("peeked");
                        out.options.insert(key.to_string(), value);
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(item);
            } else {
                out.positionals.push(item);
            }
        }
        Ok(out)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Typed option with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Positional operands after the subcommand, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The `i`-th positional operand, or an error naming what was
    /// expected there.
    pub fn positional(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positionals
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }
}

/// Parses an activation-kind name (accepting the paper's spellings).
pub fn parse_af(name: &str) -> Result<pnc_spice::AfKind, String> {
    use pnc_spice::AfKind;
    match name.to_ascii_lowercase().replace('_', "-").as_str() {
        "p-relu" | "relu" => Ok(AfKind::PRelu),
        "p-clipped-relu" | "clipped-relu" => Ok(AfKind::PClippedRelu),
        "p-sigmoid" | "sigmoid" => Ok(AfKind::PSigmoid),
        "p-tanh" | "tanh" => Ok(AfKind::PTanh),
        other => Err(format!(
            "unknown activation '{other}' (expected p-relu, p-clipped-relu, p-sigmoid, p-tanh)"
        )),
    }
}

/// Parses a built-in dataset name (kebab-case of the enum variants).
pub fn parse_dataset(name: &str) -> Result<pnc_datasets::DatasetId, String> {
    use pnc_datasets::DatasetId as D;
    let key = name.to_ascii_lowercase().replace(['_', ' '], "-");
    let id = match key.as_str() {
        "acute-inflammation" => D::AcuteInflammation,
        "acute-nephritis" => D::AcuteNephritis,
        "balance-scale" => D::BalanceScale,
        "breast-cancer" => D::BreastCancer,
        "cardiotocography" => D::Cardiotocography,
        "energy-y1" => D::EnergyY1,
        "energy-y2" => D::EnergyY2,
        "iris" => D::Iris,
        "mammographic-mass" => D::MammographicMass,
        "pendigits" => D::Pendigits,
        "seeds" => D::Seeds,
        "tic-tac-toe" => D::TicTacToe,
        "vertebral-column" => D::VertebralColumn,
        other => {
            return Err(format!(
                "unknown dataset '{other}' (try `pnc-cli datasets`)"
            ))
        }
    };
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> Args {
        Args::parse(items.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["train", "--data", "x.csv", "--budget", "0.3", "--verbose"]);
        assert_eq!(a.command.as_deref(), Some("train"));
        assert_eq!(a.get("data"), Some("x.csv"));
        assert_eq!(a.get_or::<f64>("budget", 0.0).unwrap(), 0.3);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&["train"]);
        assert!(a.require("data").unwrap_err().contains("--data"));
    }

    #[test]
    fn typed_defaults_and_errors() {
        let a = parse(&["x", "--n", "bad"]);
        assert!(a.get_or::<usize>("n", 1).is_err());
        assert_eq!(a.get_or::<usize>("m", 7).unwrap(), 7);
    }

    #[test]
    fn collects_trailing_positionals() {
        let a = parse(&[
            "runs",
            "diff",
            "100-train",
            "200-train",
            "--run-dir",
            "runs",
        ]);
        assert_eq!(a.command.as_deref(), Some("runs"));
        assert_eq!(a.positionals(), ["diff", "100-train", "200-train"]);
        assert_eq!(a.positional(1, "run id").unwrap(), "100-train");
        assert!(a.positional(3, "a run id").unwrap_err().contains("run id"));
        assert_eq!(a.get("run-dir"), Some("runs"));
    }

    #[test]
    fn af_names() {
        assert!(parse_af("p-tanh").is_ok());
        assert!(parse_af("P_Tanh").is_ok());
        assert!(parse_af("relu").is_ok());
        assert!(parse_af("gelu").is_err());
    }

    #[test]
    fn dataset_names() {
        assert!(parse_dataset("iris").is_ok());
        assert!(parse_dataset("Balance Scale").is_ok());
        assert!(parse_dataset("mnist").is_err());
    }
}
