//! `pnc-cli watch <run-dir>` — a live console dashboard over a run
//! directory's `metrics.jsonl`.
//!
//! The watcher tails the event log by byte offset (no inotify, no
//! polling library — a read loop with a sleep), folds each complete
//! line into a pure [`DashboardState`], and redraws one compact frame
//! per tick: epoch progress and rate, power against the budget, the
//! augmented-Lagrangian λ/μ trajectory, and the SPICE solver failure
//! streak. It exits when the run's manifest leaves the `running`
//! state (or after one frame with `--once`, which also validates
//! `metrics.prom` when the run has written one).
//!
//! `DashboardState` is deliberately free of clocks and I/O: epoch
//! rates come from the `ts` timestamps the JSONL sink stamped, so the
//! same log always renders the same dashboard and the unit tests can
//! drive it with synthetic lines.

use pnc_telemetry::json::{parse, Json};
use pnc_telemetry::registry::{ExitStatus, RunManifest};
use pnc_telemetry::stream::validate_prometheus;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::args::Args;

/// Everything the dashboard knows, folded from the event stream.
#[derive(Debug, Default, Clone)]
pub struct DashboardState {
    /// Total events ingested (any name).
    pub events: u64,
    /// Run id from `run_start`.
    pub run_id: Option<String>,
    /// Power budget in watts from `train_start`.
    pub budget_watts: Option<f64>,
    /// Epoch ceiling from `train_start`.
    pub max_epochs: Option<u64>,
    /// Number of `epoch` events seen.
    pub epochs: u64,
    /// Timestamp of the first / latest `epoch` event (unix seconds).
    first_epoch_ts: Option<f64>,
    last_epoch_ts: Option<f64>,
    /// Latest per-epoch fields.
    pub last_epoch: Option<u64>,
    pub objective: Option<f64>,
    pub val_accuracy: Option<f64>,
    pub power_watts: Option<f64>,
    pub lambda: Option<f64>,
    pub mu: Option<f64>,
    /// Latest outer-iteration index.
    pub outer_iter: Option<u64>,
    /// Current consecutive `dc_solve_failed` streak and its high-water.
    pub solve_fail_streak: u64,
    pub solve_fail_peak: u64,
    /// Solver totals from the latest `spice_stats` event.
    pub spice_solves: Option<u64>,
    pub spice_iterations: Option<u64>,
    pub spice_ramp_fallbacks: Option<u64>,
    /// Hardness-atlas rollup from the latest `solver_atlas` event.
    pub atlas_points: Option<u64>,
    pub atlas_iters_p95: Option<f64>,
    pub atlas_max_cond1: Option<f64>,
    pub atlas_fingerprints: Option<u64>,
    pub atlas_correlation: Option<f64>,
    /// Latest watchdog diagnosis, if any.
    pub health: Option<String>,
    /// Terminal status from `run_end`.
    pub finished: Option<String>,
    /// Latest per-layer/stage watts from `power_breakdown` events,
    /// keyed `layer<i>/<stage>` (latest event wins).
    power_consumers: std::collections::BTreeMap<String, f64>,
}

fn f64_field(doc: &Json, key: &str) -> Option<f64> {
    doc.get(key).and_then(Json::as_f64)
}

impl DashboardState {
    /// Folds one `metrics.jsonl` line in. Unparseable or truncated
    /// lines are ignored — the tail loop only feeds complete lines,
    /// but a crashed writer can leave a torn final line behind.
    pub fn ingest(&mut self, line: &str) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        let Some(doc) = parse(line) else {
            return;
        };
        let Some(name) = doc.get("event").and_then(Json::as_str) else {
            return;
        };
        self.events += 1;
        let ts = f64_field(&doc, "ts");
        match name {
            "run_start" => {
                self.run_id = doc.get("run_id").and_then(Json::as_str).map(String::from);
            }
            "train_start" => {
                self.budget_watts = f64_field(&doc, "budget_watts");
                self.mu = f64_field(&doc, "mu").or(self.mu);
                self.max_epochs = f64_field(&doc, "max_epochs").map(|v| v as u64);
            }
            "epoch" => {
                self.epochs += 1;
                if self.first_epoch_ts.is_none() {
                    self.first_epoch_ts = ts;
                }
                self.last_epoch_ts = ts.or(self.last_epoch_ts);
                self.last_epoch = f64_field(&doc, "epoch").map(|v| v as u64);
                self.objective = f64_field(&doc, "objective").or(self.objective);
                self.val_accuracy = f64_field(&doc, "val_accuracy").or(self.val_accuracy);
                self.power_watts = f64_field(&doc, "power_watts").or(self.power_watts);
                self.lambda = f64_field(&doc, "lambda").or(self.lambda);
                self.mu = f64_field(&doc, "mu").or(self.mu);
            }
            "outer_iter" => {
                self.outer_iter = f64_field(&doc, "iter").map(|v| v as u64);
                self.lambda = f64_field(&doc, "lambda").or(self.lambda);
                self.mu = f64_field(&doc, "mu").or(self.mu);
                self.power_watts = f64_field(&doc, "power_watts").or(self.power_watts);
            }
            "dc_solve_failed" => {
                self.solve_fail_streak += 1;
                self.solve_fail_peak = self.solve_fail_peak.max(self.solve_fail_streak);
            }
            "dc_solve" => {
                self.solve_fail_streak = 0;
            }
            "spice_stats" => {
                let u = |k| f64_field(&doc, k).map(|v| v as u64);
                self.spice_solves = u("solves").or(self.spice_solves);
                self.spice_iterations = u("newton_iterations").or(self.spice_iterations);
                self.spice_ramp_fallbacks = u("ramp_fallbacks").or(self.spice_ramp_fallbacks);
            }
            "solver_atlas" => {
                let u = |k| f64_field(&doc, k).map(|v| v as u64);
                self.atlas_points = u("points").or(self.atlas_points);
                self.atlas_iters_p95 = f64_field(&doc, "iters_p95").or(self.atlas_iters_p95);
                self.atlas_max_cond1 =
                    f64_field(&doc, "max_cond1_estimate").or(self.atlas_max_cond1);
                self.atlas_fingerprints = u("fingerprint_cardinality").or(self.atlas_fingerprints);
                self.atlas_correlation =
                    f64_field(&doc, "distance_iters_correlation").or(self.atlas_correlation);
            }
            "health" => {
                self.health = doc
                    .get("diagnosis")
                    .and_then(Json::as_str)
                    .map(String::from);
            }
            "train_done" => {
                self.power_watts = f64_field(&doc, "power_watts").or(self.power_watts);
                self.val_accuracy = f64_field(&doc, "test_accuracy").or(self.val_accuracy);
            }
            "power_breakdown" => {
                if let Some(layer) = f64_field(&doc, "layer").map(|v| v as u64) {
                    for (stage, key) in [
                        ("crossbar", "crossbar_watts"),
                        ("activation", "activation_watts"),
                        ("negation", "negation_watts"),
                    ] {
                        if let Some(w) = f64_field(&doc, key) {
                            self.power_consumers
                                .insert(format!("layer{layer}/{stage}"), w);
                        }
                    }
                }
                self.power_watts = f64_field(&doc, "total_watts").or(self.power_watts);
                self.budget_watts = f64_field(&doc, "budget_watts").or(self.budget_watts);
            }
            "run_end" => {
                self.finished = doc.get("status").and_then(Json::as_str).map(String::from);
            }
            _ => {}
        }
    }

    /// Epochs per second over the observed window (from the stamped
    /// `ts` fields, so re-rendering a finished log is reproducible).
    pub fn epoch_rate(&self) -> Option<f64> {
        let (first, last) = (self.first_epoch_ts?, self.last_epoch_ts?);
        let span = last - first;
        if self.epochs >= 2 && span > 0.0 {
            Some((self.epochs - 1) as f64 / span)
        } else {
            None
        }
    }

    /// The `n` hottest layer/stage power consumers, hottest first.
    /// Ties break on the label, so re-rendering a finished log always
    /// produces the same panel.
    pub fn top_consumers(&self, n: usize) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> = self
            .power_consumers
            .iter()
            .map(|(k, w)| (k.as_str(), *w))
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(b.0))
        });
        v.truncate(n);
        v
    }

    /// Whether the latest power reading exceeds the latest budget.
    /// `false` until both have been seen.
    pub fn over_budget(&self) -> bool {
        match (self.power_watts, self.budget_watts) {
            (Some(p), Some(b)) => p > b,
            _ => false,
        }
    }

    /// Renders one dashboard frame (no ANSI codes — the caller owns
    /// screen clearing, so tests and `--once` get plain text).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(512);
        let opt_s = |v: &Option<String>| v.clone().unwrap_or_else(|| "—".to_string());
        let opt_f = |v: Option<f64>, digits: usize| {
            v.map_or_else(|| "—".to_string(), |x| format!("{x:.digits$}"))
        };
        out.push_str(&format!(
            "run {}   [{} events]\n",
            opt_s(&self.run_id),
            self.events
        ));
        let epochs = match self.max_epochs {
            Some(max) => format!("{} (cap {max}/outer)", self.epochs),
            None => self.epochs.to_string(),
        };
        let rate = self
            .epoch_rate()
            .map_or_else(|| "—".to_string(), |r| format!("{r:.1}/s"));
        out.push_str(&format!("  epochs     : {epochs} @ {rate}\n"));
        out.push_str(&format!(
            "  objective  : {}   val acc {}\n",
            opt_f(self.objective, 4),
            opt_f(self.val_accuracy.map(|a| a * 100.0), 1)
        ));
        out.push_str(&format!(
            "  power      : {}\n",
            power_bar(self.power_watts, self.budget_watts)
        ));
        let top = self.top_consumers(3);
        if !top.is_empty() {
            out.push_str("  top power  :");
            for (label, w) in &top {
                out.push_str(&format!("  {label} {:.4} mW", w * 1e3));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  aug-lag    : λ {}   μ {}   outer iter {}\n",
            opt_f(self.lambda, 3),
            opt_f(self.mu, 2),
            self.outer_iter
                .map_or_else(|| "—".to_string(), |i| i.to_string())
        ));
        out.push_str(&format!(
            "  solver     : fail streak {} (peak {})\n",
            self.solve_fail_streak, self.solve_fail_peak
        ));
        if let (Some(solves), Some(iters)) = (self.spice_solves, self.spice_iterations) {
            out.push_str(&format!(
                "  spice      : {solves} solves · {iters} Newton iters · {} ramp fallback(s)\n",
                self.spice_ramp_fallbacks.unwrap_or(0)
            ));
        }
        if let Some(points) = self.atlas_points {
            out.push_str(&format!(
                "  atlas      : {points} points · iters p95 {} · max cond1 {} · {} pattern(s) · dist↔iters {}\n",
                opt_f(self.atlas_iters_p95, 0),
                self.atlas_max_cond1
                    .map_or_else(|| "—".to_string(), |c| format!("{c:.2e}")),
                self.atlas_fingerprints.unwrap_or(0),
                self.atlas_correlation
                    .map_or_else(|| "—".to_string(), |c| format!("{c:+.3}")),
            ));
        }
        if let Some(h) = &self.health {
            out.push_str(&format!("  health     : {h}\n"));
        }
        match &self.finished {
            Some(status) => out.push_str(&format!("  status     : {status}\n")),
            None => out.push_str("  status     : running\n"),
        }
        out
    }
}

/// `0.182 mW of 0.200 mW [#########─] 91 %` — the budget-pressure bar.
fn power_bar(power: Option<f64>, budget: Option<f64>) -> String {
    let Some(p) = power else {
        return "—".to_string();
    };
    let Some(b) = budget.filter(|b| *b > 0.0) else {
        return format!("{:.4} mW (no budget seen)", p * 1e3);
    };
    let frac = (p / b).max(0.0);
    let cells = 10usize;
    let filled = ((frac * cells as f64).round() as usize).min(cells);
    let bar: String = "#".repeat(filled) + &"-".repeat(cells - filled);
    format!(
        "{:.4} mW of {:.4} mW [{bar}] {:.0} %{}",
        p * 1e3,
        b * 1e3,
        frac * 100.0,
        if frac > 1.0 { "  OVER BUDGET" } else { "" }
    )
}

/// Reads every complete line past `offset`, feeding it to `state`.
/// Returns the new offset (start of the first incomplete line).
fn drain_new_lines(
    path: &Path,
    offset: u64,
    state: &mut DashboardState,
) -> Result<u64, std::io::Error> {
    let mut file = std::fs::File::open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = String::new();
    file.read_to_string(&mut buf)?;
    // Only consume up to the last newline: a writer mid-line leaves a
    // partial tail we re-read next tick.
    let consumed = match buf.rfind('\n') {
        Some(i) => i + 1,
        None => return Ok(offset),
    };
    for line in buf[..consumed].lines() {
        state.ingest(line);
    }
    Ok(offset + consumed as u64)
}

/// Loads the run's manifest status, if the manifest is readable.
fn manifest_status(dir: &Path) -> Option<ExitStatus> {
    let text = std::fs::read_to_string(dir.join("manifest.json")).ok()?;
    Some(RunManifest::from_json(&text)?.status)
}

/// Validates `metrics.prom` when present. `Ok(None)` means the run has
/// not written one (not an error: exposition is opt-in).
fn check_exposition(dir: &Path) -> Result<Option<usize>, String> {
    let path = dir.join("metrics.prom");
    if !path.is_file() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    validate_prometheus(&text)
        .map(Some)
        .map_err(|e| format!("{}: invalid exposition: {e}", path.display()))
}

/// The `watch` subcommand: `pnc-cli watch <run-dir> [--once]
/// [--interval-ms N]`.
pub fn cmd_watch(args: &Args) -> Result<(), String> {
    let dir = Path::new(args.positional(0, "run directory (runs/<id>)")?);
    if manifest_status(dir).is_none() {
        return Err(format!(
            "{}: not a run directory (no readable manifest.json — pass runs/<id>, \
             see `pnc-cli runs list`)",
            dir.display()
        ));
    }
    let once = args.flag("once");
    let interval_ms: u64 = args.get_or("interval-ms", 500u64)?;
    let metrics_path = dir.join("metrics.jsonl");

    let mut state = DashboardState::default();
    let mut offset = 0u64;
    loop {
        if metrics_path.is_file() {
            offset = drain_new_lines(&metrics_path, offset, &mut state)
                .map_err(|e| format!("{}: {e}", metrics_path.display()))?;
        }
        let status = manifest_status(dir);
        let done = state.finished.is_some() || !matches!(status, Some(ExitStatus::Running)) || once;
        if !once {
            // Home + clear-to-end keeps the frame flicker-free on
            // ANSI terminals and degrades to repeated frames elsewhere.
            print!("\x1b[H\x1b[2J");
        }
        print!("{}", state.render());
        // Frames must reach the terminal between sleeps even when
        // stdout is a pipe (CI captures, `tee`).
        let _ = std::io::stdout().flush();
        if done {
            match check_exposition(dir)? {
                Some(samples) => println!("  exposition : metrics.prom OK ({samples} samples)"),
                None => {
                    if once {
                        println!("  exposition : no metrics.prom (run without --metrics?)");
                    }
                }
            }
            // `--once` is the scriptable mode (CI smoke gates): a run
            // sitting over its power budget must fail the check.
            if once && state.over_budget() {
                let fmt = |v: Option<f64>| {
                    v.map_or_else(|| "—".to_string(), |x| format!("{:.4} mW", x * 1e3))
                };
                return Err(format!(
                    "run is over its power budget ({} of {})",
                    fmt(state.power_watts),
                    fmt(state.budget_watts)
                ));
            }
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_telemetry::json::event_to_json;
    use pnc_telemetry::{Event, Level};

    fn line(event: Event, ts: f64) -> String {
        event_to_json(&event, Some(ts))
    }

    #[test]
    fn folds_training_events_into_a_dashboard() {
        let mut st = DashboardState::default();
        st.ingest(&line(
            Event::new("run_start", Level::Info).with_str("run_id", "100-train"),
            0.0,
        ));
        st.ingest(&line(
            Event::new("train_start", Level::Info)
                .with_f64("budget_watts", 2e-4)
                .with_f64("mu", 2.0)
                .with_u64("max_epochs", 500),
            0.1,
        ));
        for (i, ts) in [(1u64, 1.0), (2, 2.0), (3, 3.0)] {
            st.ingest(&line(
                Event::new("epoch", Level::Info)
                    .with_u64("epoch", i)
                    .with_f64("objective", 0.5 / i as f64)
                    .with_f64("val_accuracy", 0.6 + 0.1 * i as f64)
                    .with_f64("power_watts", 1.8e-4)
                    .with_f64("lambda", 0.4)
                    .with_f64("mu", 2.0),
                ts,
            ));
        }
        st.ingest(&line(
            Event::new("outer_iter", Level::Info)
                .with_u64("iter", 1)
                .with_f64("lambda", 0.9)
                .with_f64("mu", 2.0)
                .with_f64("power_watts", 1.7e-4)
                .with_f64("constraint", -0.1),
            3.5,
        ));
        assert_eq!(st.epochs, 3);
        // 2 epoch intervals over 2 seconds of stamped time.
        assert_eq!(st.epoch_rate(), Some(1.0));
        let frame = st.render();
        assert!(frame.contains("run 100-train"), "{frame}");
        assert!(frame.contains("epochs     : 3"), "{frame}");
        assert!(frame.contains("λ 0.900"), "{frame}");
        assert!(frame.contains("0.1700 mW of 0.2000 mW"), "{frame}");
        assert!(frame.contains("85 %"), "{frame}");
        assert!(frame.contains("status     : running"), "{frame}");
    }

    #[test]
    fn solver_failure_streak_counts_consecutive_failures() {
        let mut st = DashboardState::default();
        for _ in 0..3 {
            st.ingest(&line(Event::new("dc_solve_failed", Level::Warn), 1.0));
        }
        assert_eq!(st.solve_fail_streak, 3);
        st.ingest(&line(Event::new("dc_solve", Level::Debug), 1.1));
        assert_eq!(st.solve_fail_streak, 0);
        assert_eq!(st.solve_fail_peak, 3);
        assert!(st.render().contains("fail streak 0 (peak 3)"));
    }

    #[test]
    fn over_budget_power_is_called_out() {
        let mut st = DashboardState::default();
        st.ingest(&line(
            Event::new("train_start", Level::Info).with_f64("budget_watts", 1e-4),
            0.0,
        ));
        st.ingest(&line(
            Event::new("epoch", Level::Info)
                .with_u64("epoch", 1)
                .with_f64("power_watts", 1.5e-4),
            1.0,
        ));
        let frame = st.render();
        assert!(frame.contains("OVER BUDGET"), "{frame}");
        assert!(frame.contains("150 %"), "{frame}");
    }

    #[test]
    fn power_breakdown_feeds_the_top_consumers_panel() {
        let mut st = DashboardState::default();
        for (layer, xbar, act, neg) in [(0u64, 1.2e-4, 4.0e-5, 1.0e-5), (1, 9.0e-5, 6.0e-5, 0.0)] {
            st.ingest(&line(
                Event::new("power_breakdown", Level::Info)
                    .with_u64("layer", layer)
                    .with_f64("crossbar_watts", xbar)
                    .with_f64("activation_watts", act)
                    .with_f64("negation_watts", neg)
                    .with_f64("layer_watts", xbar + act + neg)
                    .with_f64("total_watts", 3.2e-4)
                    .with_f64("budget_watts", 4.0e-4),
                1.0,
            ));
        }
        let top = st.top_consumers(3);
        assert_eq!(
            top,
            vec![
                ("layer0/crossbar", 1.2e-4),
                ("layer1/crossbar", 9.0e-5),
                ("layer1/activation", 6.0e-5),
            ]
        );
        let frame = st.render();
        assert!(
            frame.contains(
                "top power  :  layer0/crossbar 0.1200 mW  layer1/crossbar 0.0900 mW  \
                 layer1/activation 0.0600 mW"
            ),
            "{frame}"
        );
        assert!(!st.over_budget());
    }

    #[test]
    fn over_budget_predicate_tracks_the_latest_reading() {
        let mut st = DashboardState::default();
        assert!(!st.over_budget(), "no readings yet");
        st.ingest(&line(
            Event::new("train_start", Level::Info).with_f64("budget_watts", 1e-4),
            0.0,
        ));
        st.ingest(&line(
            Event::new("epoch", Level::Info)
                .with_u64("epoch", 1)
                .with_f64("power_watts", 1.5e-4),
            1.0,
        ));
        assert!(st.over_budget());
        st.ingest(&line(
            Event::new("train_done", Level::Info)
                .with_f64("power_watts", 0.9e-4)
                .with_f64("test_accuracy", 0.9),
            2.0,
        ));
        assert!(!st.over_budget(), "final hard power is within budget");
    }

    #[test]
    fn solver_observatory_events_feed_their_panels() {
        let mut st = DashboardState::default();
        let frame = st.render();
        assert!(!frame.contains("spice      :"), "no panel before events");
        assert!(!frame.contains("atlas      :"), "{frame}");
        st.ingest(&line(
            Event::new("spice_stats", Level::Info)
                .with_u64("solves", 1200)
                .with_u64("newton_iterations", 5400)
                .with_u64("ramp_fallbacks", 3)
                .with_u64("failures", 0),
            1.0,
        ));
        st.ingest(&line(
            Event::new("solver_atlas", Level::Info)
                .with_u64("points", 64)
                .with_f64("iters_p95", 12.0)
                .with_f64("max_cond1_estimate", 3.4e7)
                .with_u64("fingerprint_cardinality", 1)
                .with_f64("distance_iters_correlation", -0.42),
            2.0,
        ));
        let frame = st.render();
        assert!(
            frame.contains("spice      : 1200 solves · 5400 Newton iters · 3 ramp fallback(s)"),
            "{frame}"
        );
        assert!(
            frame.contains(
                "atlas      : 64 points · iters p95 12 · max cond1 3.40e7 · 1 pattern(s) · dist↔iters -0.420"
            ),
            "{frame}"
        );
    }

    #[test]
    fn run_end_and_health_reach_the_frame() {
        let mut st = DashboardState::default();
        st.ingest(&line(
            Event::new("health", Level::Warn).with_str("diagnosis", "multiplier_blowup"),
            1.0,
        ));
        st.ingest(&line(
            Event::new("run_end", Level::Warn).with_str("status", "aborted"),
            2.0,
        ));
        let frame = st.render();
        assert!(frame.contains("health     : multiplier_blowup"), "{frame}");
        assert!(frame.contains("status     : aborted"), "{frame}");
    }

    #[test]
    fn garbage_and_torn_lines_are_ignored() {
        let mut st = DashboardState::default();
        st.ingest("not json at all");
        st.ingest("{\"event\":"); // torn line
        st.ingest("{\"no_event_key\":1}");
        st.ingest("");
        assert_eq!(st.events, 0);
        // A rate needs at least two stamped epochs.
        assert_eq!(st.epoch_rate(), None);
    }

    #[test]
    fn drain_resumes_from_the_byte_offset() {
        let dir = std::env::temp_dir().join(format!("pnc-watch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let a = line(Event::new("epoch", Level::Info).with_u64("epoch", 1), 1.0);
        let b = line(Event::new("epoch", Level::Info).with_u64("epoch", 2), 2.0);
        std::fs::write(&path, format!("{a}\n")).unwrap();
        let mut st = DashboardState::default();
        let off = drain_new_lines(&path, 0, &mut st).unwrap();
        assert_eq!(st.epochs, 1);
        // Append one full line plus a torn tail: only the full line is
        // consumed, and the offset stops at the torn start.
        std::fs::write(&path, format!("{a}\n{b}\n{{\"event\":")).unwrap();
        let off2 = drain_new_lines(&path, off, &mut st).unwrap();
        assert_eq!(st.epochs, 2);
        assert_eq!(off2, (format!("{a}\n{b}\n").len()) as u64);
        // Re-draining from the same offset with no new newline is a
        // no-op.
        let off3 = drain_new_lines(&path, off2, &mut st).unwrap();
        assert_eq!(off3, off2);
        assert_eq!(st.epochs, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
