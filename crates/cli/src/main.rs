//! `pnc-cli` — train power-constrained printed neuromorphic classifiers
//! on your own CSV data and compile them to printable netlists.
//!
//! ```text
//! pnc-cli datasets
//! pnc-cli export-dataset --id iris --out iris.csv
//! pnc-cli characterize --af p-tanh
//! pnc-cli train --data iris.csv --budget-mw 0.2 --af p-tanh --netlist circuit.cir
//! ```

mod args;
mod runs;
mod solver;
mod watch;

use args::{parse_af, parse_dataset, Args};
use pnc_core::activation::{fit_negation_model, LearnableActivation, SurrogateFidelity};
use pnc_core::export::export_network;
use pnc_core::{NetworkConfig, PrintedNetwork};
use pnc_datasets::{load_csv, save_csv, Dataset, DatasetId};
use pnc_parallel::ExecutorHandle;
use pnc_telemetry::registry::{FidelityRecord, RunHandle, RunRegistry};
use pnc_telemetry::trace::{parse_chrome_trace, validate_chrome_trace, write_chrome_trace};
use pnc_telemetry::{
    ConsoleSink, CountingAllocator, Event, JsonlSink, Level, MetricsRegistry, MultiSink,
    ProfileReport, Profiler, Telemetry,
};
use pnc_train::auglag::{train_auglag_observed, AugLagConfig};
use pnc_train::fidelity::{FidelityConfig, FidelityMonitor};
use pnc_train::finetune::finetune;
use pnc_train::observer::TelemetryObserver;
use pnc_train::trainer::{DataRefs, TrainConfig};
use pnc_train::watchdog::HealthWatchdog;
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

/// Counting system-allocator wrapper: inert (one relaxed load per
/// allocation) until `--alloc-stats` flips the runtime flag.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const USAGE: &str = "\
pnc-cli — power-constrained printed neuromorphic classifiers

USAGE:
  pnc-cli datasets
      List the built-in benchmark datasets.

  pnc-cli export-dataset --id <name> [--out <file.csv>] [--seed N]
      Write a built-in dataset to CSV (features…, label).

  pnc-cli characterize --af <kind> [--samples N] [--fidelity smoke|default|paper]
      Fit and report the SPICE-derived surrogates for one activation.

  pnc-cli train --data <file.csv> --budget-mw <P> [--af <kind>]
                [--seed N] [--epochs N] [--hidden N] [--mu X]
                [--netlist <out.cir>] [--fidelity smoke|default|paper]
                [--fidelity-every K] [--fidelity-gate X]
      Train under a strict power budget and optionally export the
      printable netlist. CSV format: one sample per row, features
      first, integer class label last; optional header row.
      --fidelity-every K re-checks the surrogate power against the
      SPICE path every K epochs (plus once at convergence), recording
      the drift into metrics and summary.json; --fidelity-gate X
      latches a surrogate_drift health diagnosis when any check's
      relative error exceeds X.

  pnc-cli profile-report --trace <trace.json>
      Validate a saved Chrome trace and re-render its flame-style
      phase summary.

  pnc-cli runs list [--ids] [--run-dir <dir>]
  pnc-cli runs show <id> [--run-dir <dir>]
  pnc-cli runs diff <a> <b> [--run-dir <dir>] [--noise-floor X]
      Inspect the run registry: list recorded runs (--ids for bare
      ids), show one run's manifest/summary plus the exact CLI line to
      reproduce it, or diff two runs field by field (exits nonzero
      when anything differs above the noise floor).

  pnc-cli runs power <id> [--run-dir <dir>] [--json]
      Render a run's power attribution tree (network → layer → stage
      → device class) with each layer's share of the budget and the
      remaining headroom. --json emits the stored tree verbatim.

  pnc-cli runs trend [--run-dir <dir>] [--rel-tol X] [--noise-floor X]
                     [--window N]
      Historical trend analytics over every completed run, oldest
      first: wall clock plus each summary metric, flagged when the
      last --window runs all drift past the thresholds (exits
      nonzero on any sustained regression).

  pnc-cli solver atlas <run-id> [--run-dir <dir>] [--top N]
  pnc-cli solver report <run-id> [--run-dir <dir>] [--top N]
  pnc-cli solver replay <trace.jsonl> [--noise-floor X]
      Solver observatory surfaces for runs recorded with
      --solver-traces: render the characterization hardness atlas
      (per-point Newton work, conditioning, sparsity-fingerprint
      cardinality, distance↔iterations correlation, top-N hardest
      points — byte-identical for any --threads), the atlas plus a
      sampled-trace rollup, or re-execute recorded solves and diff
      the residual trajectories under the noise floor (exits nonzero
      on divergence).

  pnc-cli watch <runs/<id>> [--once] [--interval-ms N]
      Live console dashboard over a run directory: tails
      metrics.jsonl and refreshes epoch rate, power vs. budget, λ/μ,
      and the solver failure streak until the run leaves the running
      state. --once renders a single frame (and validates
      metrics.prom when present) and exits, nonzero when the run is
      over its power budget.

RUN REGISTRY (characterize and train):
  --run-dir <dir>     Record this invocation under <dir>/<run-id>/:
                      manifest.json (args, config, seed, git SHA),
                      metrics.jsonl (every telemetry event), and
                      summary.json on exit. Aborted runs also get a
                      postmortem.md with the watchdog's diagnosis.

PARALLELISM (all commands):
  --threads N         Worker threads for characterization, variation
                      sweeps, and experiment fan-out (default: all
                      cores; PNC_THREADS env overrides the default;
                      --threads 1 runs fully sequential). Results are
                      bit-identical for any thread count.

SOLVER (all commands):
  --solver-backend B  Linear-solver backend for DC solves: auto
                      (default — dense below 32 unknowns, sparse
                      above), dense, or sparse. The sparse path reuses
                      one symbolic analysis per circuit topology and
                      refactorizes numerically between Newton
                      iterations; both backends converge to the same
                      operating points.
  --no-warm-start     Disable block-synchronous warm starting during
                      characterization (every Sobol point then chains
                      from its previous grid point only). Warm starts
                      are deterministic — results stay bit-identical
                      for any --threads either way.

SOLVER OBSERVATORY (characterize and train):
  --solver-traces     Record Newton convergence traces (sampled into
                      runs/<id>/solver_traces.jsonl) and the per-point
                      hardness atlas (runs/<id>/solver_atlas.json),
                      plus conditioning estimates in the metrics
                      exposition. Bounded overhead: one condition
                      estimate per iteration, ring-buffer sampled
                      traces.

METRICS (characterize and train):
  --metrics <file>    Also write the Prometheus text exposition to
                      <file>. With --run-dir, metrics.prom lands in
                      the run directory regardless.
  --alloc-stats       Turn on allocation accounting (counts, bytes,
                      peak) for this process; totals are reported as
                      an alloc_stats event and exposition metrics.

LOGGING (characterize and train):
  --log-json <file>   Write structured JSONL telemetry (one event per line).
  --profile <file>    Record a hierarchical span trace (Chrome trace JSON,
                      loadable in Perfetto / chrome://tracing) and print a
                      flame-style phase summary on exit.
  --verbose           Also show debug-level events on stderr.
  --quiet             Only show warnings on stderr.

Activation kinds: p-relu, p-clipped-relu, p-sigmoid, p-tanh.
";

/// Claims a run directory under `--run-dir` (when given) and stamps
/// the manifest with the raw CLI arguments after the subcommand.
fn start_run(args: &Args, command: &str) -> Result<Option<RunHandle>, String> {
    let Some(root) = args.get("run-dir") else {
        return Ok(None);
    };
    let cli_args: Vec<String> = std::env::args().skip(2).collect();
    let run = RunRegistry::new(root)
        .create(command, &cli_args)
        .map_err(|e| format!("--run-dir {root}: {e}"))?;
    Ok(Some(run))
}

/// Emits the `run_start` event for a freshly claimed run directory.
fn emit_run_start(tel: &Telemetry, run: Option<&RunHandle>) {
    if let Some(run) = run {
        let (id, dir) = (run.run_id().to_string(), run.dir().display().to_string());
        tel.emit(|| {
            Event::new("run_start", Level::Info)
                .with_str("run_id", id.clone())
                .with_str("dir", dir.clone())
        });
    }
}

/// Seals a successful run: writes `summary.json`, emits `run_end`.
fn finish_run(
    tel: &Telemetry,
    run: Option<RunHandle>,
    metrics: BTreeMap<String, f64>,
    flags: BTreeMap<String, bool>,
    fidelity: Vec<FidelityRecord>,
) -> Result<(), String> {
    let Some(run) = run else {
        return Ok(());
    };
    let id = run.run_id().to_string();
    let dir = run.dir().display().to_string();
    let summary = run
        .finish_with_fidelity(metrics, flags, fidelity)
        .map_err(|e| format!("run {id}: cannot write summary: {e}"))?;
    tel.emit(|| {
        Event::new("run_end", Level::Info)
            .with_str("run_id", id.clone())
            .with_str("status", "completed")
            .with_f64("wall_clock_ms", summary.wall_clock_ms)
    });
    println!("  run dir       : {dir}");
    Ok(())
}

/// Seals an aborted run: writes `postmortem.md` and the aborted
/// manifest/summary, emits a warn-level `run_end`, and prints the
/// post-mortem pointer straight to stderr — deliberately *not* via
/// telemetry levels, so it survives `--quiet`.
fn abort_run(tel: &Telemetry, run: Option<RunHandle>, reason: &str, postmortem: &str) {
    let Some(run) = run else {
        eprintln!("training aborted ({reason})");
        return;
    };
    let id = run.run_id().to_string();
    let postmortem_path = run.write_postmortem(postmortem);
    let sealed = run.abort(reason, BTreeMap::new(), BTreeMap::new());
    tel.emit(|| {
        Event::new("run_end", Level::Warn)
            .with_str("run_id", id.clone())
            .with_str("status", "aborted")
            .with_str("reason", reason)
    });
    tel.flush();
    match postmortem_path {
        Ok(path) => eprintln!(
            "training aborted ({reason}); post-mortem: {}",
            path.display()
        ),
        Err(e) => eprintln!("training aborted ({reason}); cannot write post-mortem: {e}"),
    }
    if let Err(e) = sealed {
        eprintln!("warning: cannot seal run {id}: {e}");
    }
}

/// Builds the telemetry pipeline from `--log-json` / `--verbose` /
/// `--quiet`: console events go to stderr (level-filtered), JSONL to
/// the requested file, and — when a run directory is active — every
/// event also lands in the run's `metrics.jsonl`.
fn telemetry_from(args: &Args, run: Option<&RunHandle>) -> Result<Telemetry, String> {
    let verbose = args.flag("verbose");
    let quiet = args.flag("quiet");
    if verbose && quiet {
        return Err("--verbose and --quiet are mutually exclusive".to_string());
    }
    let level = if quiet {
        Level::Warn
    } else if verbose {
        Level::Debug
    } else {
        Level::Info
    };
    let mut multi = MultiSink::new().with(Box::new(ConsoleSink::new(level)));
    if let Some(path) = args.get("log-json") {
        let sink =
            JsonlSink::create(path).map_err(|e| format!("--log-json {path}: cannot open: {e}"))?;
        multi.push(Box::new(sink));
    }
    if let Some(run) = run {
        multi.push(Box::new(run.metrics_sink()));
    }
    let mut tel = Telemetry::with_sink(Arc::new(multi));
    if args.get("profile").is_some() {
        tel = tel.with_profiler(Profiler::enabled());
    }
    Ok(tel)
}

/// Sets up the streaming-metrics pipeline for one command: zeroes the
/// process-global executor counters (so utilization covers exactly
/// this run), honors `--alloc-stats`, and attaches a fresh registry to
/// the telemetry handle. The registry is returned so the command can
/// merge process-global stats in and render the exposition at the end.
fn attach_metrics(args: &Args, tel: Telemetry) -> (Telemetry, Arc<MetricsRegistry>) {
    pnc_parallel::stats::reset();
    if args.flag("alloc-stats") {
        pnc_telemetry::alloc::reset();
        pnc_telemetry::alloc::enable();
    }
    let registry = Arc::new(MetricsRegistry::new());
    (tel.with_metrics(Arc::clone(&registry)), registry)
}

/// Arms the solver observatory when `--solver-traces` is given: resets
/// any previous observation state, enables trace capture (ring seeded
/// by the run seed, so the sampled subset is reproducible), streams
/// sampled traces into the run directory, and turns on the
/// characterization hardness atlas. Returns whether observation is on.
fn start_solver_observation(
    args: &Args,
    run: Option<&RunHandle>,
    seed: u64,
) -> Result<bool, String> {
    if !args.flag("solver-traces") {
        return Ok(false);
    }
    pnc_spice::observe::reset();
    pnc_spice::observe::enable(seed, pnc_spice::observe::DEFAULT_RING_CAPACITY);
    if let Some(run) = run {
        let path = run.dir().join("solver_traces.jsonl");
        pnc_spice::observe::stream_to(&path)
            .map_err(|e| format!("{}: cannot open trace stream: {e}", path.display()))?;
    }
    pnc_surrogate::atlas::enable();
    Ok(true)
}

/// Seals the solver observatory: closes the trace stream, drains the
/// atlas collector, emits the `solver_atlas` rollup event, and writes
/// `solver_atlas.json` into the run directory. No-op when observation
/// was not armed.
fn finish_solver_observation(
    enabled: bool,
    run: Option<&RunHandle>,
    tel: &Telemetry,
) -> Result<(), String> {
    if !enabled {
        return Ok(());
    }
    pnc_spice::observe::close_stream();
    pnc_spice::observe::disable();
    pnc_surrogate::atlas::disable();
    let atlas = pnc_surrogate::SolverAtlas::new(pnc_surrogate::atlas::take());
    tel.emit_event(atlas.to_event());
    if let Some(run) = run {
        let path = run.dir().join("solver_atlas.json");
        let mut json = atlas.to_json_string();
        json.push('\n');
        std::fs::write(&path, json).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("  solver atlas  : {}", path.display());
    }
    Ok(())
}

/// Tears the observatory down on an abort path without writing
/// artifacts (a partial atlas would mislead more than it informs; the
/// streamed traces already on disk are left for debugging).
fn abort_solver_observation(enabled: bool) {
    if enabled {
        pnc_spice::observe::reset();
        pnc_surrogate::atlas::disable();
        pnc_surrogate::atlas::take();
    }
}

/// Seals the metrics pipeline: merges the process-global SPICE solver
/// histograms and executor/allocator counters into the registry, emits
/// their events, and writes the Prometheus exposition into the run
/// directory (always, when one is active) and to `--metrics <file>`
/// (when given).
fn export_metrics(
    args: &Args,
    run: Option<&RunHandle>,
    tel: &Telemetry,
    registry: &MetricsRegistry,
) -> Result<(), String> {
    // The stats handles clone shared storage, so merging here folds
    // everything the solver recorded into the named registry slots.
    registry
        .histogram("spice_solve_time_ms")
        .merge_from(&pnc_spice::stats::solve_time_histogram());
    registry
        .histogram_scaled("spice_newton_iterations", 1.0)
        .merge_from(&pnc_spice::stats::newton_iteration_histogram());
    let solver = pnc_spice::stats::snapshot();
    registry
        .counter("spice_ramp_fallbacks")
        .add(solver.ramp_fallbacks);
    registry
        .gauge("spice_longest_failure_streak")
        .set(solver.longest_failure_streak as f64);
    // Sparse-path reuse counters: full pivot-searching factorizations
    // vs. cheap structure-reusing refactorizations, symbolic-pattern
    // cache traffic, and solves seeded from a warm state.
    registry
        .counter("spice_factorizations")
        .add(solver.factorizations);
    registry
        .counter("spice_refactorizations")
        .add(solver.refactorizations);
    registry
        .counter("spice_pattern_hits")
        .add(solver.pattern_hits);
    registry
        .counter("spice_pattern_misses")
        .add(solver.pattern_misses);
    registry
        .counter("spice_warm_started_solves")
        .add(solver.warm_started_solves);
    // Conditioning telemetry is populated only while --solver-traces
    // observation is enabled; the merges are no-ops otherwise.
    registry
        .histogram_scaled("spice_cond1_log10", 1e3)
        .merge_from(&pnc_spice::observe::cond1_log10_histogram());
    registry
        .histogram_scaled("spice_residual_reduction_rate", 1e3)
        .merge_from(&pnc_spice::observe::reduction_rate_histogram());
    registry
        .gauge("spice_max_cond1_estimate")
        .set(pnc_spice::observe::max_cond1_estimate());

    let ex = pnc_parallel::stats::snapshot();
    tel.emit_event(ex.to_event());
    registry.counter("executor_calls").add(ex.calls);
    registry.counter("executor_items").add(ex.items);
    registry.gauge("executor_utilization").set(ex.utilization());
    registry
        .gauge("executor_items_per_sec")
        .set(ex.items_per_sec());
    registry
        .gauge("executor_max_fanout")
        .set(ex.max_fanout as f64);

    if pnc_telemetry::alloc::is_enabled() {
        let a = pnc_telemetry::alloc::snapshot();
        tel.emit_event(a.to_event());
        registry.counter("alloc_count").add(a.allocs);
        registry.counter("alloc_bytes_total").add(a.alloc_bytes);
        registry.gauge("alloc_peak_bytes").set(a.peak_bytes as f64);
        registry.gauge("alloc_live_bytes").set(a.live_bytes as f64);
    }

    let text = registry.render_prometheus();
    let write = |path: &Path| -> Result<(), String> {
        std::fs::write(path, &text).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("  metrics       : {}", path.display());
        Ok(())
    };
    if let Some(run) = run {
        write(&run.dir().join("metrics.prom"))?;
    }
    if let Some(path) = args.get("metrics") {
        write(Path::new(path))?;
    }
    Ok(())
}

/// Writes the recorded span trace to the `--profile` path and prints the
/// flame-style phase summary. No-op when profiling was not requested.
fn finish_profile(args: &Args, tel: &Telemetry) -> Result<(), String> {
    let Some(path) = args.get("profile") else {
        return Ok(());
    };
    let spans = tel.profiler().spans();
    write_chrome_trace(path, &spans).map_err(|e| format!("--profile {path}: cannot write: {e}"))?;
    let report = tel.profiler().report();
    for event in report.to_events() {
        tel.emit_event(event);
    }
    tel.flush();
    println!("\nprofile ({} spans → {path}):", spans.len());
    println!("{}", report.render());
    Ok(())
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match configure_threads(&args).and_then(|()| configure_solver(&args)) {
        Ok(()) => match_command(&args),
        Err(e) => Err(e),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Applies `--threads N` to the process-wide executor before any
/// command runs. Thread count never changes results (the executor is
/// deterministic), only wall clock.
fn configure_threads(args: &Args) -> Result<(), String> {
    if let Some(n) = args.get("threads") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("--threads: '{n}' is not a thread count"))?;
        if n == 0 {
            return Err("--threads must be at least 1".to_string());
        }
        ExecutorHandle::configure(n);
    }
    Ok(())
}

/// Applies `--solver-backend` and `--no-warm-start` to the process-wide
/// solver defaults before any command runs. Neither changes results —
/// both backends converge to the same operating points and warm starts
/// are chosen deterministically — only how the work is done.
fn configure_solver(args: &Args) -> Result<(), String> {
    if let Some(name) = args.get("solver-backend") {
        let backend = pnc_spice::SolverBackend::parse(name).ok_or_else(|| {
            format!("--solver-backend: '{name}' is not one of auto, dense, sparse")
        })?;
        pnc_spice::dc::set_default_backend(backend);
    }
    if args.flag("no-warm-start") {
        pnc_surrogate::sampling::set_warm_start(false);
    }
    Ok(())
}

fn match_command(args: &Args) -> Result<(), String> {
    match args.command.as_deref() {
        Some("datasets") => cmd_datasets(),
        Some("export-dataset") => cmd_export_dataset(args),
        Some("characterize") => cmd_characterize(args),
        Some("train") => cmd_train(args),
        Some("profile-report") => cmd_profile_report(args),
        Some("runs") => runs::cmd_runs(args),
        Some("solver") => solver::cmd_solver(args),
        Some("watch") => watch::cmd_watch(args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn fidelity_from(args: &Args) -> Result<SurrogateFidelity, String> {
    match args.get("fidelity").unwrap_or("default") {
        "smoke" => Ok(SurrogateFidelity::smoke()),
        "default" => Ok(SurrogateFidelity::default()),
        "paper" => Ok(SurrogateFidelity::paper()),
        other => Err(format!("unknown fidelity '{other}'")),
    }
}

fn cmd_datasets() -> Result<(), String> {
    println!(
        "{:<24} {:>8} {:>7} {:>7}",
        "name", "samples", "feats", "classes"
    );
    for id in DatasetId::ALL {
        println!(
            "{:<24} {:>8} {:>7} {:>7}",
            id.name(),
            id.samples(),
            id.features(),
            id.classes()
        );
    }
    Ok(())
}

fn cmd_export_dataset(args: &Args) -> Result<(), String> {
    let id = parse_dataset(args.require("id")?)?;
    let seed = args.get_or("seed", 1u64)?;
    let default_name = format!("{}.csv", args.require("id")?.to_ascii_lowercase());
    let out = args.get("out").unwrap_or(&default_name);
    let ds = Dataset::generate(id, seed);
    save_csv(&ds, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} samples × {} features, {} classes)",
        out,
        ds.len(),
        ds.features(),
        ds.classes()
    );
    Ok(())
}

fn cmd_characterize(args: &Args) -> Result<(), String> {
    let kind = parse_af(args.require("af")?)?;
    let mut fidelity = fidelity_from(args)?;
    if let Some(n) = args.get("samples") {
        fidelity.power.samples = n.parse().map_err(|_| "--samples: not a number")?;
    }
    let mut run = start_run(args, "characterize")?;
    if let Some(run) = run.as_mut() {
        let err = |e: std::io::Error| format!("run manifest: {e}");
        run.set_config("af", kind.name()).map_err(err)?;
        run.set_config("samples", fidelity.power.samples)
            .map_err(err)?;
        run.set_config("fidelity", args.get("fidelity").unwrap_or("default"))
            .map_err(err)?;
        run.set_config("threads", ExecutorHandle::threads())
            .map_err(err)?;
    }
    let tel = telemetry_from(args, run.as_ref())?;
    let (tel, metrics_registry) = attach_metrics(args, tel);
    let seed = args.get_or("seed", 1u64)?;
    let observing = start_solver_observation(args, run.as_ref(), seed)?;
    emit_run_start(&tel, run.as_ref());
    tel.emit(|| {
        Event::new("characterize_start", Level::Info)
            .with_str("kind", kind.name())
            .with_u64("samples", fidelity.power.samples as u64)
    });
    let act = match LearnableActivation::fit_with(kind, &fidelity, &tel) {
        Ok(act) => act,
        Err(e) => {
            abort_solver_observation(observing);
            abort_run(
                &tel,
                run.take(),
                "error",
                "# Run post-mortem\n\nCharacterization failed before any watchdog diagnosis.\n",
            );
            return Err(e.to_string());
        }
    };
    finish_solver_observation(observing, run.as_ref(), &tel)?;
    tel.emit_event(pnc_spice::stats::snapshot().to_event());
    export_metrics(args, run.as_ref(), &tel, &metrics_registry)?;
    finish_profile(args, &tel)?;
    finish_run(
        &tel,
        run.take(),
        BTreeMap::from([
            (
                "power_r2".to_string(),
                act.power_surrogate().validation_r2(),
            ),
            ("transfer_rmse".to_string(), act.transfer().fit_rmse()),
        ]),
        BTreeMap::new(),
        Vec::new(),
    )?;
    tel.flush();
    println!(
        "  design space      : {} parameters {:?}",
        kind.dim(),
        kind.param_names()
    );
    println!(
        "  power surrogate   : validation R² = {:.3} (log-power)",
        act.power_surrogate().validation_r2()
    );
    println!(
        "  transfer surrogate: RMSE = {:.3} V against SPICE sweeps",
        act.transfer().fit_rmse()
    );
    let d = kind.default_design();
    println!(
        "  default design    : {:.3} µW per circuit, {} devices",
        act.power_surrogate().predict(d.q()) * 1e6,
        pnc_core::activation::devices_per_af(kind)
    );
    Ok(())
}

fn cmd_profile_report(args: &Args) -> Result<(), String> {
    let path = args.require("trace")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("--trace {path}: {e}"))?;
    let validation = validate_chrome_trace(&text).map_err(|e| format!("{path}: invalid: {e}"))?;
    let spans =
        parse_chrome_trace(&text).ok_or_else(|| format!("{path}: not a Chrome trace document"))?;
    println!(
        "{path}: valid Chrome trace ({} events across {} threads)",
        validation.events, validation.threads
    );
    println!("{}", ProfileReport::from_trace(&spans).render());
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let data_path = args.require("data")?;
    let budget_mw: f64 = args
        .require("budget-mw")?
        .parse()
        .map_err(|_| "--budget-mw: not a number")?;
    if budget_mw <= 0.0 {
        return Err("--budget-mw must be positive".to_string());
    }
    let kind = parse_af(args.get("af").unwrap_or("p-tanh"))?;
    let seed = args.get_or("seed", 1u64)?;
    let epochs = args.get_or("epochs", 500usize)?;
    let hidden = args.get_or("hidden", 3usize)?;
    let mu = args.get_or("mu", 2.0f64)?;
    let fidelity = fidelity_from(args)?;
    let fidelity_every = args.get_or("fidelity-every", 0usize)?;
    let fidelity_gate = match args.get("fidelity-gate") {
        Some(s) => {
            let gate: f64 = s
                .parse()
                .map_err(|_| "--fidelity-gate: not a relative error")?;
            if !gate.is_finite() || gate <= 0.0 {
                return Err("--fidelity-gate must be a positive relative error".to_string());
            }
            Some(gate)
        }
        None => None,
    };
    let mut run = start_run(args, "train")?;
    if let Some(run) = run.as_mut() {
        let err = |e: std::io::Error| format!("run manifest: {e}");
        run.set_dataset(data_path).map_err(err)?;
        run.set_seed(seed).map_err(err)?;
        run.set_config("budget_mw", budget_mw).map_err(err)?;
        run.set_config("af", kind.name()).map_err(err)?;
        run.set_config("epochs", epochs).map_err(err)?;
        run.set_config("hidden", hidden).map_err(err)?;
        run.set_config("mu", mu).map_err(err)?;
        run.set_config("fidelity", args.get("fidelity").unwrap_or("default"))
            .map_err(err)?;
        run.set_config("fidelity_every", fidelity_every)
            .map_err(err)?;
        if let Some(gate) = fidelity_gate {
            run.set_config("fidelity_gate", gate).map_err(err)?;
        }
        run.set_config("threads", ExecutorHandle::threads())
            .map_err(err)?;
    }
    let tel = telemetry_from(args, run.as_ref())?;
    let (tel, metrics_registry) = attach_metrics(args, tel);
    let observing = start_solver_observation(args, run.as_ref(), seed)?;
    emit_run_start(&tel, run.as_ref());

    let custom = load_csv(Path::new(data_path)).map_err(|e| e.to_string())?;
    tel.emit(|| {
        Event::new("dataset_loaded", Level::Info)
            .with_str("path", data_path)
            .with_u64("samples", custom.len() as u64)
            .with_u64("features", custom.features() as u64)
            .with_u64("classes", custom.classes as u64)
    });
    let split = custom.split(seed);
    let data = DataRefs::from_split(&split);

    let activation =
        LearnableActivation::fit_with(kind, &fidelity, &tel).map_err(|e| e.to_string())?;
    let negation = fit_negation_model(fidelity.transfer_grid).map_err(|e| e.to_string())?;

    let mut rng = pnc_linalg::rng::seeded(seed);
    let mut net = PrintedNetwork::new(
        custom.features(),
        custom.classes,
        NetworkConfig {
            hidden: vec![hidden],
            ..NetworkConfig::default()
        },
        activation,
        negation,
        &mut rng,
    )
    .map_err(|e| e.to_string())?;

    let train_cfg = TrainConfig {
        max_epochs: epochs,
        patience: (epochs / 5).max(20),
        ..TrainConfig::default()
    };
    let budget = budget_mw * 1e-3;
    tel.emit(|| {
        Event::new("train_start", Level::Info)
            .with_str("kind", kind.name())
            .with_u64("features", custom.features() as u64)
            .with_u64("hidden", hidden as u64)
            .with_u64("classes", custom.classes as u64)
            .with_f64("budget_watts", budget)
            .with_f64("mu", mu)
            .with_u64("max_epochs", epochs as u64)
    });
    let monitor = FidelityMonitor::new(
        TelemetryObserver::new(tel.clone()),
        tel.clone(),
        FidelityConfig {
            every_epochs: fidelity_every,
            gate_rel_err: fidelity_gate,
            grid_points: fidelity.transfer_grid,
        },
    );
    let mut observer = HealthWatchdog::new(monitor, tel.clone());
    let train_outcome = train_auglag_observed(
        &mut net,
        &data,
        &AugLagConfig {
            budget_watts: budget,
            mu,
            outer_iters: 5,
            inner: train_cfg.with_seed(seed),
            warm_start: true,
            rescue: true,
        },
        &mut observer,
    );
    let report = match train_outcome {
        Ok(report) => report,
        Err(e) => {
            let fallback = match &e {
                pnc_train::TrainError::NonFinite { .. } => "non_finite",
                _ => "error",
            };
            let reason = observer
                .active_diagnosis()
                .map_or(fallback, |d| d.name())
                .to_string();
            abort_solver_observation(observing);
            abort_run(&tel, run.take(), &reason, &observer.postmortem());
            return Err(e.to_string());
        }
    };
    let mut monitor = observer.into_inner();
    let ft = {
        let _scope = tel.profiler().scope("finetune");
        finetune(&mut net, &data, budget, &train_cfg).map_err(|e| e.to_string())?
    };
    if fidelity_every > 0 || fidelity_gate.is_some() {
        let _scope = tel.profiler().scope("fidelity_check");
        monitor.check_now(&net, "final");
    }
    let fidelity_checks = monitor.take_checks();
    let drift = monitor.drift_diagnosis().copied();
    monitor.into_inner().finish();

    let breakdown = net.power_report(data.x_train).map_err(|e| e.to_string())?;
    let power = breakdown.total();
    let test_acc = pnc_core::PrintedNetwork::accuracy(&net, &split.test.x, &split.test.labels)
        .map_err(|e| e.to_string())?;
    tel.emit(|| {
        Event::new("train_done", Level::Info)
            .with_f64("test_accuracy", test_acc)
            .with_f64("power_watts", power)
            .with_f64("budget_watts", budget)
            .with_bool("feasible", power <= budget)
            .with_bool("rescued", report.rescued)
            .with_u64("pruned_entries", ft.pruned_entries as u64)
            .with_u64("devices", net.device_count() as u64)
    });
    for (i, layer) in breakdown.layers.iter().enumerate() {
        let l = *layer;
        tel.emit(|| {
            Event::new("power_breakdown", Level::Info)
                .with_u64("layer", i as u64)
                .with_f64("crossbar_watts", l.crossbar.total_watts())
                .with_f64("activation_watts", l.activation_watts)
                .with_f64("negation_watts", l.negation_watts)
                .with_f64("layer_watts", l.total_watts())
                .with_f64("total_watts", power)
                .with_f64("budget_watts", budget)
        });
    }
    let tree = breakdown.attribution();
    if let Some(run) = run.as_ref() {
        let path = run.dir().join("power.json");
        let json = format!(
            "{{\n  \"format_version\": 1,\n  \"budget_watts\": {budget:e},\n  \"tree\": {}\n}}\n",
            tree.to_json()
        );
        std::fs::write(&path, json).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("  power report  : {}", path.display());
    }
    finish_solver_observation(observing, run.as_ref(), &tel)?;
    tel.emit_event(pnc_spice::stats::snapshot().to_event());
    metrics_registry.gauge("power_watts").set(power);
    metrics_registry.gauge("budget_watts").set(budget);
    metrics_registry.gauge("test_accuracy").set(test_acc);
    export_metrics(args, run.as_ref(), &tel, &metrics_registry)?;
    finish_profile(args, &tel)?;
    let soft_power = report.outer.last().map_or(f64::NAN, |o| o.power_watts);
    let mut flags = BTreeMap::from([
        ("feasible".to_string(), power <= budget),
        ("rescued".to_string(), report.rescued),
    ]);
    if fidelity_gate.is_some() {
        flags.insert("surrogate_drift".to_string(), drift.is_some());
    }
    finish_run(
        &tel,
        run.take(),
        BTreeMap::from([
            ("test_accuracy".to_string(), test_acc),
            ("hard_power_watts".to_string(), power),
            ("soft_power_watts".to_string(), soft_power),
            ("budget_watts".to_string(), budget),
            ("devices".to_string(), net.device_count() as f64),
            ("pruned_entries".to_string(), ft.pruned_entries as f64),
        ]),
        flags,
        fidelity_checks.clone(),
    )?;
    tel.flush();
    println!("\nresults:");
    println!("  test accuracy : {:.1} %", 100.0 * test_acc);
    println!(
        "  power         : {:.4} mW of {budget_mw} mW ({})",
        power * 1e3,
        if power <= budget {
            "FEASIBLE"
        } else {
            "VIOLATED"
        }
    );
    println!("  devices       : {}", net.device_count());
    println!("  pruned        : {} crossbar entries", ft.pruned_entries);
    if let Some(last) = fidelity_checks.last() {
        println!(
            "  fidelity      : {} SPICE check(s), last rel err {:.3e}",
            fidelity_checks.len(),
            last.rel_err
        );
    }
    if let Some(d) = &drift {
        println!("  warning       : {}", d.describe());
    }
    println!(
        "  λ trajectory  : {:?}",
        report
            .outer
            .iter()
            .map(|o| format!("{:.2}", o.lambda))
            .collect::<Vec<_>>()
    );
    if report.rescued {
        println!("  note          : feasibility-restoration phase was needed");
    }

    if let Some(netlist_path) = args.get("netlist") {
        let exported = export_network(&net).map_err(|e| e.to_string())?;
        std::fs::write(netlist_path, exported.to_spice_string()).map_err(|e| e.to_string())?;
        let stats = exported.stats();
        println!(
            "  netlist       : {} ({} R, {} EGT)",
            netlist_path, stats.resistors, stats.transistors
        );
    }
    Ok(())
}
