//! `pnc-cli runs …` — inspect the run registry.
//!
//! * `runs list [--ids]` — table of recorded runs (or bare ids for
//!   scripting).
//! * `runs show <id>` — manifest, summary and the exact CLI line to
//!   reproduce the run.
//! * `runs diff <a> <b>` — field-by-field markdown diff; exits
//!   nonzero when anything differs above the noise floor, so CI can
//!   assert that seed-identical runs stay identical.

use crate::args::Args;
use pnc_telemetry::registry::{
    diff_runs, RunManifest, RunRecord, RunRegistry, DEFAULT_NOISE_FLOOR,
};

/// Dispatches the `runs` subcommands. The registry root comes from
/// `--run-dir` (default `runs`).
pub fn cmd_runs(args: &Args) -> Result<(), String> {
    let registry = RunRegistry::new(args.get("run-dir").unwrap_or("runs"));
    let expect_operands = |n: usize| match args.positionals().len() - 1 {
        got if got == n => Ok(()),
        got => Err(format!("expected {n} operand(s), got {got}")),
    };
    match args.positional(0, "runs subcommand (list | show <id> | diff <a> <b>)")? {
        "list" => {
            expect_operands(0)?;
            cmd_list(&registry, args.flag("ids"))
        }
        "show" => {
            expect_operands(1)?;
            cmd_show(&registry, args.positional(1, "run id")?)
        }
        "diff" => {
            expect_operands(2)?;
            cmd_diff(
                &registry,
                args.positional(1, "first run id")?,
                args.positional(2, "second run id")?,
                args.get_or("noise-floor", DEFAULT_NOISE_FLOOR)?,
            )
        }
        other => Err(format!(
            "unknown runs subcommand '{other}' (expected list, show or diff)"
        )),
    }
}

fn cmd_list(registry: &RunRegistry, ids_only: bool) -> Result<(), String> {
    let runs = registry.list().map_err(|e| format!("run registry: {e}"))?;
    if ids_only {
        for m in &runs {
            println!("{}", m.run_id);
        }
        return Ok(());
    }
    if runs.is_empty() {
        println!("no runs recorded under {}", registry.root().display());
        return Ok(());
    }
    print!("{}", render_list(&runs));
    Ok(())
}

fn cmd_show(registry: &RunRegistry, run_id: &str) -> Result<(), String> {
    let record = registry
        .load(run_id)
        .map_err(|e| format!("run {run_id}: {e}"))?;
    let has_postmortem = registry.run_dir(run_id).join("postmortem.md").is_file();
    print!("{}", render_show(&record, has_postmortem));
    Ok(())
}

fn cmd_diff(registry: &RunRegistry, a: &str, b: &str, noise_floor: f64) -> Result<(), String> {
    let load = |id: &str| registry.load(id).map_err(|e| format!("run {id}: {e}"));
    let diff = diff_runs(&load(a)?, &load(b)?, noise_floor);
    print!("{}", diff.render_markdown());
    match diff.flagged_count() {
        0 => Ok(()),
        n => Err(format!(
            "{n} difference{} above the noise floor",
            if n == 1 { "" } else { "s" }
        )),
    }
}

fn render_list(runs: &[RunManifest]) -> String {
    let mut out = format!(
        "{:<28} {:<10} {:<13} {:<20} {:>6}\n",
        "run id", "status", "command", "dataset", "seed"
    );
    for m in runs {
        out.push_str(&format!(
            "{:<28} {:<10} {:<13} {:<20} {:>6}\n",
            m.run_id,
            m.status.as_str(),
            m.command,
            m.dataset.as_deref().unwrap_or("—"),
            m.seed.map_or_else(|| "—".to_string(), |s| s.to_string()),
        ));
    }
    out
}

/// The exact CLI invocation that produced a run. The recorded seed is
/// appended when it was defaulted rather than passed, so the line
/// reproduces the run even where the original command relied on
/// defaults.
fn repro_line(m: &RunManifest) -> String {
    let mut parts = Vec::with_capacity(m.args.len() + 4);
    parts.push("pnc-cli".to_string());
    parts.push(m.command.clone());
    parts.extend(m.args.iter().cloned());
    if let Some(seed) = m.seed {
        if !m.args.iter().any(|a| a == "--seed") {
            parts.push("--seed".to_string());
            parts.push(seed.to_string());
        }
    }
    parts.join(" ")
}

fn render_show(record: &RunRecord, has_postmortem: bool) -> String {
    let m = &record.manifest;
    let mut out = format!("run {}\n", m.run_id);
    let opt = |v: &Option<String>| v.clone().unwrap_or_else(|| "—".to_string());
    out.push_str(&format!("  command   : {}\n", m.command));
    out.push_str(&format!("  status    : {}", m.status.as_str()));
    if let pnc_telemetry::registry::ExitStatus::Aborted(reason) = &m.status {
        out.push_str(&format!(" ({reason})"));
    }
    out.push('\n');
    out.push_str(&format!("  dataset   : {}\n", opt(&m.dataset)));
    out.push_str(&format!(
        "  seed      : {}\n",
        m.seed.map_or_else(|| "—".to_string(), |s| s.to_string())
    ));
    out.push_str(&format!("  git sha   : {}\n", opt(&m.git_sha)));
    out.push_str(&format!("  started   : unix {:.0}\n", m.started_unix_secs));
    for (k, v) in &m.config {
        out.push_str(&format!("  config    : {k} = {v}\n"));
    }
    match &record.summary {
        Some(s) => {
            out.push_str(&format!("  wall clock: {:.1} ms\n", s.wall_clock_ms));
            for (k, v) in &s.metrics {
                out.push_str(&format!("  metric    : {k} = {v}\n"));
            }
            for (k, v) in &s.flags {
                out.push_str(&format!("  flag      : {k} = {v}\n"));
            }
        }
        None => out.push_str("  summary   : none (run still in flight, or it crashed)\n"),
    }
    if has_postmortem {
        out.push_str("  postmortem: postmortem.md\n");
    }
    out.push_str(&format!("  reproduce : {}\n", repro_line(m)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_telemetry::registry::{ExitStatus, RunSummary};
    use std::collections::BTreeMap;

    fn manifest() -> RunManifest {
        RunManifest {
            run_id: "100-train".to_string(),
            command: "train".to_string(),
            args: vec![
                "--data".into(),
                "iris.csv".into(),
                "--budget-mw".into(),
                "0.3".into(),
            ],
            dataset: Some("iris.csv".to_string()),
            seed: Some(7),
            git_sha: None,
            started_unix_secs: 1_722_000_000.0,
            ended_unix_secs: None,
            status: ExitStatus::Completed,
            config: BTreeMap::from([("mu".to_string(), "2".to_string())]),
        }
    }

    #[test]
    fn repro_line_appends_a_defaulted_seed() {
        let m = manifest();
        assert_eq!(
            repro_line(&m),
            "pnc-cli train --data iris.csv --budget-mw 0.3 --seed 7"
        );
        // An explicitly-passed seed is not duplicated.
        let explicit = RunManifest {
            args: vec!["--seed".into(), "7".into()],
            ..manifest()
        };
        assert_eq!(repro_line(&explicit), "pnc-cli train --seed 7");
    }

    #[test]
    fn show_renders_manifest_summary_and_repro() {
        let record = RunRecord {
            manifest: RunManifest {
                status: ExitStatus::Aborted("non_finite".to_string()),
                ..manifest()
            },
            summary: Some(RunSummary {
                status: ExitStatus::Aborted("non_finite".to_string()),
                wall_clock_ms: 42.0,
                metrics: BTreeMap::from([("test_accuracy".to_string(), 0.5)]),
                flags: BTreeMap::from([("feasible".to_string(), false)]),
            }),
        };
        let text = render_show(&record, true);
        assert!(text.contains("status    : aborted (non_finite)"), "{text}");
        assert!(text.contains("config    : mu = 2"), "{text}");
        assert!(text.contains("metric    : test_accuracy = 0.5"), "{text}");
        assert!(text.contains("flag      : feasible = false"), "{text}");
        assert!(text.contains("postmortem: postmortem.md"), "{text}");
        assert!(
            text.contains("reproduce : pnc-cli train --data iris.csv"),
            "{text}"
        );
    }

    #[test]
    fn show_without_summary_says_so() {
        let record = RunRecord {
            manifest: RunManifest {
                status: ExitStatus::Running,
                ..manifest()
            },
            summary: None,
        };
        let text = render_show(&record, false);
        assert!(text.contains("summary   : none"), "{text}");
        assert!(!text.contains("postmortem:"), "{text}");
    }

    #[test]
    fn list_renders_one_row_per_run() {
        let rows = render_list(&[manifest()]);
        assert!(rows.lines().count() == 2, "{rows}");
        assert!(rows.contains("100-train"), "{rows}");
        assert!(rows.contains("completed"), "{rows}");
    }
}
