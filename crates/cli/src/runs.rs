//! `pnc-cli runs …` — inspect the run registry.
//!
//! * `runs list [--ids]` — table of recorded runs (or bare ids for
//!   scripting).
//! * `runs show <id>` — manifest, summary and the exact CLI line to
//!   reproduce the run.
//! * `runs diff <a> <b>` — field-by-field markdown diff (including
//!   the power-attribution leaves when both runs recorded one); exits
//!   nonzero when anything differs above the noise floor, so CI can
//!   assert that seed-identical runs stay identical.
//! * `runs power <id>` — the run's power attribution tree (layer →
//!   stage → device class) with per-layer budget share and headroom.
//! * `runs trend` — historical series over every completed run
//!   (wall clock + each summary metric), flagged by the sustained-
//!   regression detector; exits nonzero on any flag. Aborted and
//!   unreadable runs are excluded from the series but always listed,
//!   never silently dropped.

use crate::args::Args;
use pnc_core::PowerNode;
use pnc_surrogate::{AtlasRollup, SolverAtlas};
use pnc_telemetry::json::{self, Json};
use pnc_telemetry::registry::{
    diff_runs, ExitStatus, RunManifest, RunRecord, RunRegistry, DEFAULT_NOISE_FLOOR,
};
use pnc_telemetry::trend::{Direction, TrendConfig, TrendPoint, TrendReport, TrendSeries};
use std::collections::{BTreeMap, BTreeSet};

/// Dispatches the `runs` subcommands. The registry root comes from
/// `--run-dir` (default `runs`).
pub fn cmd_runs(args: &Args) -> Result<(), String> {
    let registry = RunRegistry::new(args.get("run-dir").unwrap_or("runs"));
    let expect_operands = |n: usize| match args.positionals().len() - 1 {
        got if got == n => Ok(()),
        got => Err(format!("expected {n} operand(s), got {got}")),
    };
    match args.positional(
        0,
        "runs subcommand (list | show <id> | diff <a> <b> | power <id> | trend)",
    )? {
        "list" => {
            expect_operands(0)?;
            cmd_list(&registry, args.flag("ids"))
        }
        "show" => {
            expect_operands(1)?;
            cmd_show(&registry, args.positional(1, "run id")?)
        }
        "diff" => {
            expect_operands(2)?;
            cmd_diff(
                &registry,
                args.positional(1, "first run id")?,
                args.positional(2, "second run id")?,
                args.get_or("noise-floor", DEFAULT_NOISE_FLOOR)?,
            )
        }
        "power" => {
            expect_operands(1)?;
            cmd_power(&registry, args.positional(1, "run id")?, args.flag("json"))
        }
        "trend" => {
            expect_operands(0)?;
            cmd_trend(
                &registry,
                TrendConfig {
                    rel_tol: args.get_or("rel-tol", TrendConfig::default().rel_tol)?,
                    // Run metrics live in heterogeneous units (watts,
                    // fractions, ms), so unlike the bench trend the
                    // absolute floor defaults off; the relative
                    // tolerance carries the gate.
                    noise_floor: args.get_or("noise-floor", 0.0)?,
                    window: args.get_or("window", TrendConfig::default().window)?,
                },
            )
        }
        other => Err(format!(
            "unknown runs subcommand '{other}' (expected list, show, diff, power or trend)"
        )),
    }
}

fn cmd_list(registry: &RunRegistry, ids_only: bool) -> Result<(), String> {
    let runs = registry.list().map_err(|e| format!("run registry: {e}"))?;
    if ids_only {
        for m in &runs {
            println!("{}", m.run_id);
        }
        return Ok(());
    }
    if runs.is_empty() {
        println!("no runs recorded under {}", registry.root().display());
        return Ok(());
    }
    print!("{}", render_list(&runs));
    Ok(())
}

fn cmd_show(registry: &RunRegistry, run_id: &str) -> Result<(), String> {
    let record = registry
        .load(run_id)
        .map_err(|e| format!("run {run_id}: {e}"))?;
    let has_postmortem = registry.run_dir(run_id).join("postmortem.md").is_file();
    print!("{}", render_show(&record, has_postmortem));
    if let Ok(atlas) = crate::solver::load_atlas(registry, run_id) {
        print!("{}", render_solver_line(&atlas));
    }
    Ok(())
}

/// One-line solver summary appended to `runs show` when the run
/// recorded a hardness atlas (`--solver-traces`). `pnc-cli solver
/// atlas <id>` has the full picture.
fn render_solver_line(atlas: &SolverAtlas) -> String {
    let r = atlas.rollup();
    format!(
        "  solver    : {} solves · iters p50 {:.0} / p95 {:.0} · {} ramp fallback(s) · max cond1 {:.3e}\n",
        r.solves, r.iters_p50, r.iters_p95, r.ramp_fallbacks, r.max_cond1_estimate
    )
}

fn cmd_diff(registry: &RunRegistry, a: &str, b: &str, noise_floor: f64) -> Result<(), String> {
    let load = |id: &str| registry.load(id).map_err(|e| format!("run {id}: {e}"));
    let diff = diff_runs(&load(a)?, &load(b)?, noise_floor);
    print!("{}", diff.render_markdown());
    let power_flagged = diff_power_leaves(registry, a, b, noise_floor);
    let atlas_flagged = diff_atlas_rollups(registry, a, b, noise_floor);
    match diff.flagged_count() + power_flagged + atlas_flagged {
        0 => Ok(()),
        n => Err(format!(
            "{n} difference{} above the noise floor",
            if n == 1 { "" } else { "s" }
        )),
    }
}

/// Compares the two runs' power-attribution leaves (from each run's
/// `power.json`) and prints one line per leaf that differs above the
/// relative noise floor — the same rule `diff_runs` applies to summary
/// metrics. Returns the number of flagged leaves. Runs without a power
/// report are fine pairwise (older runs predate it); a report present
/// on only one side counts as one flag.
fn diff_power_leaves(registry: &RunRegistry, a: &str, b: &str, noise_floor: f64) -> usize {
    let (ta, tb) = match (
        load_power_report(registry, a),
        load_power_report(registry, b),
    ) {
        (Ok((_, ta)), Ok((_, tb))) => (ta, tb),
        (Err(_), Err(_)) => return 0,
        (Ok(_), Err(e)) | (Err(e), Ok(_)) => {
            println!("\npower leaves: present on one side only ({e})");
            return 1;
        }
    };
    let la: BTreeMap<String, f64> = ta.leaves().into_iter().collect();
    let lb: BTreeMap<String, f64> = tb.leaves().into_iter().collect();
    let keys: BTreeSet<&String> = la.keys().chain(lb.keys()).collect();
    let mut lines = Vec::new();
    for key in keys {
        let (va, vb) = (la.get(key), lb.get(key));
        let flagged = match (va, vb) {
            (Some(x), Some(y)) => {
                let scale = x.abs().max(y.abs());
                scale > 0.0 && (y - x).abs() / scale > noise_floor
            }
            _ => true, // leaf present on one side only
        };
        if flagged {
            let fmt = |v: Option<&f64>| v.map_or_else(|| "—".to_string(), |x| format!("{x:.6e}"));
            lines.push(format!("  {key}: {} → {}", fmt(va), fmt(vb)));
        }
    }
    if !lines.is_empty() {
        println!("\npower leaves differing above the noise floor:");
        for line in &lines {
            println!("{line}");
        }
    }
    lines.len()
}

/// The numeric leaves of an atlas rollup, in a stable render order.
fn rollup_fields(r: &AtlasRollup) -> Vec<(&'static str, f64)> {
    vec![
        ("points", r.points as f64),
        ("failed_points", r.failed_points as f64),
        ("solves", r.solves as f64),
        ("newton_iterations", r.newton_iterations as f64),
        ("ramp_fallbacks", r.ramp_fallbacks as f64),
        ("failures", r.failures as f64),
        ("iters_p50", r.iters_p50),
        ("iters_p95", r.iters_p95),
        ("iters_max", r.iters_max),
        ("max_cond1_estimate", r.max_cond1_estimate),
        ("fingerprint_cardinality", r.fingerprint_cardinality as f64),
        ("distance_iters_correlation", r.distance_iters_correlation),
    ]
}

/// Compares the two runs' solver-atlas rollups under the relative
/// noise floor — the same rule `diff_runs` applies to summary metrics.
/// Returns the number of flagged fields. Runs without an atlas are
/// fine pairwise (observation is opt-in); an atlas present on only one
/// side counts as one flag.
fn diff_atlas_rollups(registry: &RunRegistry, a: &str, b: &str, noise_floor: f64) -> usize {
    let (ra, rb) = match (
        crate::solver::load_atlas(registry, a),
        crate::solver::load_atlas(registry, b),
    ) {
        (Ok(x), Ok(y)) => (x.rollup(), y.rollup()),
        (Err(_), Err(_)) => return 0,
        (Ok(_), Err(e)) | (Err(e), Ok(_)) => {
            println!("\nsolver atlas: present on one side only ({e})");
            return 1;
        }
    };
    let mut lines = Vec::new();
    for ((key, x), (_, y)) in rollup_fields(&ra).into_iter().zip(rollup_fields(&rb)) {
        let scale = x.abs().max(y.abs());
        if scale > 0.0 && (y - x).abs() / scale > noise_floor {
            lines.push(format!("  {key}: {x:.6e} → {y:.6e}"));
        }
    }
    if !lines.is_empty() {
        println!("\nsolver atlas rollups differing above the noise floor:");
        for line in &lines {
            println!("{line}");
        }
    }
    lines.len()
}

/// Loads a run's persisted power report (`power.json`): the budget and
/// the attribution tree, with the children-sum invariant re-validated
/// on every read.
fn load_power_report(registry: &RunRegistry, run_id: &str) -> Result<(f64, PowerNode), String> {
    let path = registry.run_dir(run_id).join("power.json");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("run {run_id}: no power report ({}: {e})", path.display()))?;
    let doc = json::parse(&text).ok_or_else(|| format!("{}: not valid JSON", path.display()))?;
    let budget = doc
        .get("budget_watts")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{}: missing budget_watts", path.display()))?;
    let tree = doc
        .get("tree")
        .and_then(node_from_json)
        .ok_or_else(|| format!("{}: missing or malformed attribution tree", path.display()))?;
    tree.check_sum()
        .map_err(|e| format!("{}: corrupt attribution: {e}", path.display()))?;
    Ok((budget, tree))
}

/// Rebuilds a [`PowerNode`] from its `to_json` form.
fn node_from_json(v: &Json) -> Option<PowerNode> {
    let label = v.get("label")?.as_str()?.to_string();
    let watts = v.get("watts")?.as_f64()?;
    let mut children = Vec::new();
    if let Some(Json::Arr(items)) = v.get("children") {
        for item in items {
            children.push(node_from_json(item)?);
        }
    }
    Some(PowerNode {
        label,
        watts,
        children,
    })
}

fn cmd_power(registry: &RunRegistry, run_id: &str, json_out: bool) -> Result<(), String> {
    let (budget_watts, tree) = load_power_report(registry, run_id)?;
    if json_out {
        println!("{}", tree.to_json());
        return Ok(());
    }
    print!("{}", render_power(run_id, budget_watts, &tree));
    Ok(())
}

/// Renders the attribution tree plus the budget ledger: total versus
/// budget with signed headroom, then each layer's budget share. Pure
/// function of the persisted report, so the output is byte-identical
/// for any `--threads` the run was trained with.
fn render_power(run_id: &str, budget_watts: f64, tree: &PowerNode) -> String {
    let mut out = format!("power attribution — run {run_id}\n\n");
    out.push_str(&tree.render_text());
    out.push_str(&format!(
        "\nbudget {:.6} mW — total {:.6} mW, headroom {:+.6} mW ({})\n",
        budget_watts * 1e3,
        tree.watts * 1e3,
        (budget_watts - tree.watts) * 1e3,
        if tree.watts <= budget_watts {
            "FEASIBLE"
        } else {
            "OVER BUDGET"
        },
    ));
    for layer in &tree.children {
        out.push_str(&format!(
            "  {:<10} {:>12.6} mW {:>6.1} % of budget\n",
            layer.label,
            layer.watts * 1e3,
            100.0 * layer.watts / budget_watts,
        ));
    }
    out
}

/// Drift direction for a run-summary metric: quality metrics regress
/// downward, everything else (wall clock, power, devices) upward.
fn metric_direction(name: &str) -> Direction {
    if name.contains("accuracy") || name.ends_with("_r2") {
        Direction::DownIsBad
    } else {
        Direction::UpIsBad
    }
}

/// Builds the historical series from completed runs, oldest first:
/// `wall_clock_ms` plus every summary metric that any run recorded
/// (runs missing a metric contribute no point to its series).
fn trend_series_from_runs(records: &[RunRecord]) -> Vec<TrendSeries> {
    let completed: Vec<(&str, &pnc_telemetry::registry::RunSummary)> = records
        .iter()
        .filter(|r| r.manifest.status == ExitStatus::Completed)
        .filter_map(|r| r.summary.as_ref().map(|s| (r.manifest.run_id.as_str(), s)))
        .collect();
    let mut series = vec![TrendSeries {
        metric: "wall_clock_ms".to_string(),
        direction: Direction::UpIsBad,
        points: completed
            .iter()
            .map(|(id, s)| TrendPoint {
                label: (*id).to_string(),
                value: s.wall_clock_ms,
            })
            .collect(),
    }];
    let names: BTreeSet<&str> = completed
        .iter()
        .flat_map(|(_, s)| s.metrics.keys().map(String::as_str))
        .collect();
    for name in names {
        series.push(TrendSeries {
            metric: format!("metrics.{name}"),
            direction: metric_direction(name),
            points: completed
                .iter()
                .filter_map(|(id, s)| {
                    s.metrics.get(name).map(|v| TrendPoint {
                        label: (*id).to_string(),
                        value: *v,
                    })
                })
                .collect(),
        });
    }
    series
}

fn cmd_trend(registry: &RunRegistry, config: TrendConfig) -> Result<(), String> {
    let manifests = registry.list().map_err(|e| format!("run registry: {e}"))?;
    let mut records = Vec::with_capacity(manifests.len());
    let mut excluded: Vec<(String, String)> = Vec::new();
    for m in &manifests {
        // Runs that contribute no points are excluded from the series
        // but never silently: aborted and unreadable (crashed
        // mid-write) runs are listed with their reason.
        match registry.load(&m.run_id) {
            Ok(r) => {
                if let ExitStatus::Aborted(reason) = &r.manifest.status {
                    excluded.push((m.run_id.clone(), format!("aborted ({reason})")));
                }
                records.push(r);
            }
            Err(e) => excluded.push((m.run_id.clone(), format!("unreadable: {e}"))),
        }
    }
    print!("{}", render_excluded(&excluded));
    let series = trend_series_from_runs(&records);
    if series[0].points.len() < 2 {
        println!(
            "trend needs at least two completed runs under {} (found {})",
            registry.root().display(),
            series[0].points.len()
        );
        return Ok(());
    }
    let report = TrendReport::analyze(&series, config);
    print!("{}", report.render_markdown());
    match report.flagged_count() {
        0 => Ok(()),
        n => Err(format!(
            "{n} sustained regression{} across {} run(s)",
            if n == 1 { "" } else { "s" },
            series[0].points.len()
        )),
    }
}

/// The trend report's exclusion preamble: one line per aborted or
/// unreadable run, empty when every run made it into the series.
fn render_excluded(excluded: &[(String, String)]) -> String {
    if excluded.is_empty() {
        return String::new();
    }
    let mut out = format!(
        "excluded from trend ({} run{}):\n",
        excluded.len(),
        if excluded.len() == 1 { "" } else { "s" }
    );
    for (id, reason) in excluded {
        out.push_str(&format!("  {id}: {reason}\n"));
    }
    out.push('\n');
    out
}

fn render_list(runs: &[RunManifest]) -> String {
    let mut out = format!(
        "{:<28} {:<10} {:<13} {:<20} {:>6}\n",
        "run id", "status", "command", "dataset", "seed"
    );
    for m in runs {
        out.push_str(&format!(
            "{:<28} {:<10} {:<13} {:<20} {:>6}\n",
            m.run_id,
            m.status.as_str(),
            m.command,
            m.dataset.as_deref().unwrap_or("—"),
            m.seed.map_or_else(|| "—".to_string(), |s| s.to_string()),
        ));
    }
    out
}

/// The exact CLI invocation that produced a run. The recorded seed is
/// appended when it was defaulted rather than passed, so the line
/// reproduces the run even where the original command relied on
/// defaults.
fn repro_line(m: &RunManifest) -> String {
    let mut parts = Vec::with_capacity(m.args.len() + 4);
    parts.push("pnc-cli".to_string());
    parts.push(m.command.clone());
    parts.extend(m.args.iter().cloned());
    if let Some(seed) = m.seed {
        if !m.args.iter().any(|a| a == "--seed") {
            parts.push("--seed".to_string());
            parts.push(seed.to_string());
        }
    }
    parts.join(" ")
}

fn render_show(record: &RunRecord, has_postmortem: bool) -> String {
    let m = &record.manifest;
    let mut out = format!("run {}\n", m.run_id);
    let opt = |v: &Option<String>| v.clone().unwrap_or_else(|| "—".to_string());
    out.push_str(&format!("  command   : {}\n", m.command));
    out.push_str(&format!("  status    : {}", m.status.as_str()));
    if let pnc_telemetry::registry::ExitStatus::Aborted(reason) = &m.status {
        out.push_str(&format!(" ({reason})"));
    }
    out.push('\n');
    out.push_str(&format!("  dataset   : {}\n", opt(&m.dataset)));
    out.push_str(&format!(
        "  seed      : {}\n",
        m.seed.map_or_else(|| "—".to_string(), |s| s.to_string())
    ));
    out.push_str(&format!("  git sha   : {}\n", opt(&m.git_sha)));
    out.push_str(&format!("  started   : unix {:.0}\n", m.started_unix_secs));
    for (k, v) in &m.config {
        out.push_str(&format!("  config    : {k} = {v}\n"));
    }
    match &record.summary {
        Some(s) => {
            out.push_str(&format!("  wall clock: {:.1} ms\n", s.wall_clock_ms));
            for (k, v) in &s.metrics {
                out.push_str(&format!("  metric    : {k} = {v}\n"));
            }
            for (k, v) in &s.flags {
                out.push_str(&format!("  flag      : {k} = {v}\n"));
            }
        }
        None => out.push_str("  summary   : none (run still in flight, or it crashed)\n"),
    }
    if has_postmortem {
        out.push_str("  postmortem: postmortem.md\n");
    }
    out.push_str(&format!("  reproduce : {}\n", repro_line(m)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_telemetry::registry::{ExitStatus, RunSummary};
    use std::collections::BTreeMap;

    fn manifest() -> RunManifest {
        RunManifest {
            run_id: "100-train".to_string(),
            command: "train".to_string(),
            args: vec![
                "--data".into(),
                "iris.csv".into(),
                "--budget-mw".into(),
                "0.3".into(),
            ],
            dataset: Some("iris.csv".to_string()),
            seed: Some(7),
            git_sha: None,
            started_unix_secs: 1_722_000_000.0,
            ended_unix_secs: None,
            status: ExitStatus::Completed,
            config: BTreeMap::from([("mu".to_string(), "2".to_string())]),
        }
    }

    #[test]
    fn repro_line_appends_a_defaulted_seed() {
        let m = manifest();
        assert_eq!(
            repro_line(&m),
            "pnc-cli train --data iris.csv --budget-mw 0.3 --seed 7"
        );
        // An explicitly-passed seed is not duplicated.
        let explicit = RunManifest {
            args: vec!["--seed".into(), "7".into()],
            ..manifest()
        };
        assert_eq!(repro_line(&explicit), "pnc-cli train --seed 7");
    }

    #[test]
    fn show_renders_manifest_summary_and_repro() {
        let record = RunRecord {
            manifest: RunManifest {
                status: ExitStatus::Aborted("non_finite".to_string()),
                ..manifest()
            },
            summary: Some(RunSummary {
                status: ExitStatus::Aborted("non_finite".to_string()),
                wall_clock_ms: 42.0,
                metrics: BTreeMap::from([("test_accuracy".to_string(), 0.5)]),
                flags: BTreeMap::from([("feasible".to_string(), false)]),
                fidelity: Vec::new(),
            }),
        };
        let text = render_show(&record, true);
        assert!(text.contains("status    : aborted (non_finite)"), "{text}");
        assert!(text.contains("config    : mu = 2"), "{text}");
        assert!(text.contains("metric    : test_accuracy = 0.5"), "{text}");
        assert!(text.contains("flag      : feasible = false"), "{text}");
        assert!(text.contains("postmortem: postmortem.md"), "{text}");
        assert!(
            text.contains("reproduce : pnc-cli train --data iris.csv"),
            "{text}"
        );
    }

    #[test]
    fn show_without_summary_says_so() {
        let record = RunRecord {
            manifest: RunManifest {
                status: ExitStatus::Running,
                ..manifest()
            },
            summary: None,
        };
        let text = render_show(&record, false);
        assert!(text.contains("summary   : none"), "{text}");
        assert!(!text.contains("postmortem:"), "{text}");
    }

    fn completed_record(id: &str, wall: f64, acc: f64) -> RunRecord {
        RunRecord {
            manifest: RunManifest {
                run_id: id.to_string(),
                status: ExitStatus::Completed,
                ..manifest()
            },
            summary: Some(RunSummary {
                status: ExitStatus::Completed,
                wall_clock_ms: wall,
                metrics: BTreeMap::from([("test_accuracy".to_string(), acc)]),
                flags: BTreeMap::new(),
                fidelity: Vec::new(),
            }),
        }
    }

    #[test]
    fn trend_series_cover_wall_clock_and_metrics() {
        let records = vec![
            completed_record("100-train", 100.0, 0.9),
            // Running runs and missing summaries stay out of the series.
            RunRecord {
                manifest: RunManifest {
                    status: ExitStatus::Running,
                    ..manifest()
                },
                summary: None,
            },
            completed_record("200-train", 110.0, 0.91),
        ];
        let series = trend_series_from_runs(&records);
        assert_eq!(series[0].metric, "wall_clock_ms");
        assert_eq!(series[0].direction, Direction::UpIsBad);
        assert_eq!(series[0].points.len(), 2);
        assert_eq!(series[0].points[1].label, "200-train");
        let acc = series
            .iter()
            .find(|s| s.metric == "metrics.test_accuracy")
            .expect("accuracy series");
        assert_eq!(acc.direction, Direction::DownIsBad);
        assert_eq!(acc.points.len(), 2);
    }

    #[test]
    fn sustained_accuracy_drop_is_flagged() {
        let records: Vec<RunRecord> = [0.90, 0.91, 0.89, 0.70, 0.68]
            .iter()
            .enumerate()
            .map(|(i, acc)| completed_record(&format!("{i}00-train"), 100.0, *acc))
            .collect();
        let config = TrendConfig {
            rel_tol: 0.10,
            noise_floor: 0.0,
            window: 2,
        };
        let report = TrendReport::analyze(&trend_series_from_runs(&records), config);
        assert_eq!(report.flagged_count(), 1, "{:?}", report.rows);
        let row = report.rows.iter().find(|r| r.flagged).unwrap();
        assert_eq!(row.metric, "metrics.test_accuracy");
    }

    #[test]
    fn list_renders_one_row_per_run() {
        let rows = render_list(&[manifest()]);
        assert!(rows.lines().count() == 2, "{rows}");
        assert!(rows.contains("100-train"), "{rows}");
        assert!(rows.contains("completed"), "{rows}");
    }

    #[test]
    fn excluded_runs_are_reported_not_skipped() {
        assert_eq!(render_excluded(&[]), "");
        let text = render_excluded(&[
            ("100-train".to_string(), "aborted (non_finite)".to_string()),
            ("200-train".to_string(), "unreadable: bad json".to_string()),
        ]);
        assert!(
            text.starts_with("excluded from trend (2 runs):\n"),
            "{text}"
        );
        assert!(
            text.contains("  100-train: aborted (non_finite)\n"),
            "{text}"
        );
        assert!(
            text.contains("  200-train: unreadable: bad json\n"),
            "{text}"
        );
    }

    fn sample_tree() -> PowerNode {
        PowerNode::parent(
            "network",
            vec![PowerNode::parent(
                "layer0",
                vec![
                    PowerNode::parent(
                        "crossbar",
                        vec![
                            PowerNode::leaf("input-resistors", 1.0e-4),
                            PowerNode::leaf("bias-resistors", 2.0e-5),
                            PowerNode::leaf("ground-resistors", 1.0e-5),
                            PowerNode::leaf("eps-leak", 1.0e-9),
                        ],
                    ),
                    PowerNode::parent("activation", vec![PowerNode::leaf("af-circuits", 5.0e-5)]),
                    PowerNode::parent("negation", vec![PowerNode::leaf("neg-circuits", 2.0e-5)]),
                ],
            )],
        )
    }

    #[test]
    fn power_tree_json_roundtrips_through_runs_power() {
        let tree = sample_tree();
        let parsed = node_from_json(&json::parse(&tree.to_json()).expect("valid JSON"))
            .expect("tree parses back");
        assert_eq!(parsed, tree);
        parsed.check_sum().expect("sum invariant survives the trip");
    }

    // Golden render: the exact `runs power` output for a small tree.
    // Byte-for-byte, because CI diffs this output across thread counts.
    #[test]
    fn power_render_is_golden() {
        let text = render_power("100-train", 3.0e-4, &sample_tree());
        let expected = "\
power attribution — run 100-train

network                                0.200001 mW  100.0 %
  layer0                               0.200001 mW  100.0 %
    crossbar                           0.130001 mW   65.0 %
      input-resistors                  0.100000 mW   50.0 %
      bias-resistors                   0.020000 mW   10.0 %
      ground-resistors                 0.010000 mW    5.0 %
      eps-leak                         0.000001 mW    0.0 %
    activation                         0.050000 mW   25.0 %
      af-circuits                      0.050000 mW   25.0 %
    negation                           0.020000 mW   10.0 %
      neg-circuits                     0.020000 mW   10.0 %

budget 0.300000 mW — total 0.200001 mW, headroom +0.099999 mW (FEASIBLE)
  layer0         0.200001 mW   66.7 % of budget
";
        assert_eq!(text, expected);
    }

    fn atlas_point(index: u64, iters: u64) -> pnc_surrogate::AtlasPoint {
        pnc_surrogate::AtlasPoint {
            index,
            target: "power".to_string(),
            kind: "p-tanh".to_string(),
            q: vec![1e5, 200e-6, 40e-6],
            solves: 25,
            newton_iterations: iters,
            ramp_fallbacks: 1,
            failures: 0,
            max_cond1_estimate: 2.5e6,
            fingerprint: 0xabcd,
            multi_fingerprint: false,
            nn_distance: if index == 0 { -1.0 } else { 0.3 },
            failed: false,
        }
    }

    #[test]
    fn solver_summary_is_one_line_with_the_headline_numbers() {
        let atlas = SolverAtlas::new(vec![atlas_point(0, 100), atlas_point(1, 140)]);
        let line = render_solver_line(&atlas);
        assert_eq!(line.lines().count(), 1, "{line}");
        assert_eq!(
            line,
            "  solver    : 50 solves · iters p50 100 / p95 140 · 2 ramp fallback(s) · max cond1 2.500e6\n"
        );
    }

    #[test]
    fn atlas_rollup_fields_cover_every_claim_surface() {
        let atlas = SolverAtlas::new(vec![atlas_point(0, 100), atlas_point(1, 140)]);
        let fields = rollup_fields(&atlas.rollup());
        let names: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
        // The three ROADMAP-item-3 claims all have a numeric surface.
        for key in [
            "fingerprint_cardinality",
            "distance_iters_correlation",
            "iters_p95",
        ] {
            assert!(names.contains(&key), "{names:?}");
        }
        assert_eq!(fields.len(), 12);
    }

    #[test]
    fn corrupt_power_tree_fails_check_sum() {
        let mut tree = sample_tree();
        tree.watts *= 2.0;
        assert!(tree.check_sum().is_err());
    }
}
