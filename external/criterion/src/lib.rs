//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `bench_function` /
//! `bench_with_input`, and the `criterion_group!` / `criterion_main!`
//! macros — with a simple measure-and-print harness: each benchmark is
//! warmed up, then timed in batches until a wall-clock budget is spent,
//! and the mean time per iteration is printed. No statistics files, no
//! HTML reports; good enough to compare hot paths between commits in an
//! offline container.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Runs `f` repeatedly, accumulating timing until the budget is
    /// spent. The return value is passed through [`black_box`] so the
    /// optimizer cannot discard the work.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(f());
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget || self.iters >= 10_000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<48} (no iterations)");
            return;
        }
        let per = self.total.as_nanos() as f64 / self.iters as f64;
        let (scaled, unit) = if per >= 1e9 {
            (per / 1e9, "s")
        } else if per >= 1e6 {
            (per / 1e6, "ms")
        } else if per >= 1e3 {
            (per / 1e3, "µs")
        } else {
            (per, "ns")
        };
        println!(
            "{name:<48} {scaled:>10.3} {unit}/iter  ({} iters)",
            self.iters
        );
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's time budget already
    /// bounds the sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            });
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
