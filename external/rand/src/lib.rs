//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored
//! registry, so the real `rand` cannot be fetched. This crate
//! re-implements the narrow API surface the workspace actually uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`] — on top of the public
//! xoshiro256++ generator seeded through SplitMix64. The statistical
//! contract (i.i.d. uniform bits, reproducible per seed) matches the
//! original; the exact stream differs, which the workspace tolerates by
//! design (all tests assert statistical properties, never golden
//! values).

#![forbid(unsafe_code)]

/// Uniform pseudo-random bit source.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the subset of the
/// real crate's `Standard` distribution the workspace needs).
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

mod sealed {
    /// Integer plumbing for uniform range sampling.
    pub trait UniformInt: Copy + PartialOrd {
        fn to_u64(self) -> u64;
        fn from_u64(v: u64) -> Self;
        fn widen_delta(lo: Self, hi: Self) -> u64;
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl UniformInt for $t {
                fn to_u64(self) -> u64 {
                    self as u64
                }
                fn from_u64(v: u64) -> Self {
                    v as Self
                }
                fn widen_delta(lo: Self, hi: Self) -> u64 {
                    (hi as i128 - lo as i128) as u64
                }
            }
        )*};
    }
    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty f32 range");
        let u = f32::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Rejection-free Lemire-style bounded sampling on 64-bit draws.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening multiply keeps the bias below 2⁻⁶⁴ per draw; a rejection
    // zone removes it entirely.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let wide = (rng.next_u64() as u128) * (bound as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

impl<T: sealed::UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty integer range");
        let span = T::widen_delta(self.start, self.end);
        let off = bounded_u64(rng, span);
        T::from_u64(self.start.to_u64().wrapping_add(off))
    }
}

impl<T: sealed::UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        let span = T::widen_delta(lo, hi);
        let off = if span == u64::MAX {
            rng.next_u64()
        } else {
            bounded_u64(rng, span + 1)
        };
        T::from_u64(lo.to_u64().wrapping_add(off))
    }
}

/// High-level sampling methods, blanket-implemented for every bit
/// source just like the original crate.
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Statistically strong, tiny, and reproducible.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_are_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..5usize);
            assert!(i < 5);
            let j = rng.gen_range(1..=5);
            assert!((1..=5).contains(&j));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
