//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro with `proptest_config`, range and
//! tuple strategies, [`collection::vec`], `prop_map` / `prop_filter`
//! combinators and the `prop_assert*` macros. Cases are generated from
//! a deterministic per-test seed; there is no shrinking — a failing
//! case panics with the standard assertion message, which is enough for
//! this workspace's invariant-style properties.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A deterministic pseudo-random source for test-case generation
/// (SplitMix64 — statistically fine for fuzz-style sampling).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = (self.next_u64() as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

/// A recipe for generating test values. `generate` returns `None` when
/// a `prop_filter` rejects the candidate, in which case the runner
/// retries with fresh randomness.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one candidate, or `None` on filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards candidates for which `f` returns `false`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start() + (self.end() - self.start()) * rng.unit_f64())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` — vectors with lengths drawn from
    /// `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

/// Runner configuration (`ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives one property: draws values, retrying on filter rejection.
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
}

impl TestRunner {
    /// Maximum consecutive filter rejections before giving up.
    const MAX_REJECTS: usize = 4096;

    /// Creates a runner with a seed derived from the property name so
    /// every property sees an independent, reproducible stream.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: TestRng::new(seed),
            cases: config.cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// Draws one value from `strategy`, retrying filter rejections.
    ///
    /// # Panics
    ///
    /// Panics when the filter rejects too many candidates in a row.
    pub fn draw<S: Strategy>(&mut self, strategy: &S) -> S::Value {
        for _ in 0..Self::MAX_REJECTS {
            if let Some(v) = strategy.generate(&mut self.rng) {
                return v;
            }
        }
        panic!(
            "proptest filter rejected {} candidates in a row",
            Self::MAX_REJECTS
        );
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a property-test condition (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { … }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for _case in 0..runner.cases() {
                $(let $arg = runner.draw(&($strategy));)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let f = (-2.0..2.0f64).generate(&mut rng).unwrap();
            assert!((-2.0..2.0).contains(&f));
            let u = (3u64..9).generate(&mut rng).unwrap();
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_obeys_size() {
        let mut rng = TestRng::new(2);
        let s = collection::vec(0.0..1.0f64, 4..9);
        for _ in 0..50 {
            let v = s.generate(&mut rng).unwrap();
            assert!((4..9).contains(&v.len()));
        }
        let fixed = collection::vec(0.0..1.0f64, 6);
        assert_eq!(fixed.generate(&mut rng).unwrap().len(), 6);
    }

    #[test]
    fn map_and_filter_compose() {
        let mut rng = TestRng::new(3);
        let s = (0.0..1.0f64)
            .prop_map(|x| x * 10.0)
            .prop_filter("big", |x| *x > 1.0);
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8), "compose");
        for _ in 0..20 {
            let v = runner.draw(&s);
            assert!(v > 1.0 && v < 10.0);
        }
        let _ = rng.next_u64();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn macro_generates_cases(x in 0.0..1.0f64, n in 1usize..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn tuple_and_vec_args(pairs in collection::vec((0.0..1.0f64, 0u64..4), 1..6)) {
            prop_assert!(!pairs.is_empty());
            for (f, l) in &pairs {
                prop_assert!((0.0..1.0).contains(f));
                prop_assert!(*l < 4);
            }
        }
    }
}
