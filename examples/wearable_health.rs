//! Wearable-health scenario (paper Fig. 1d / Sec. I): a disposable
//! smart bandage classifies wound state from five biosensor channels on
//! a tiny printed battery. The battery's rated drain allows 0.5 mW;
//! the clinical team also wants the *fewest printed devices* (yield and
//! cost scale with device count on flexible substrates).
//!
//! The example compares p-tanh (accuracy-oriented) against p-ReLU
//! (device-count-oriented) at the same budget — the trade-off the paper
//! highlights in its discussion ("p-ReLU achieves 80.42 % accuracy with
//! only 37 devices — a 36 % reduction").
//!
//! ```text
//! cargo run --release --example wearable_health
//! ```

use pnc::circuit::activation::{fit_negation_model, LearnableActivation, SurrogateFidelity};
use pnc::circuit::{NetworkConfig, PrintedNetwork};
use pnc::datasets::{Dataset, DatasetId};
use pnc::spice::AfKind;
use pnc::train::auglag::{hard_power, train_auglag, AugLagConfig};
use pnc::train::finetune::finetune;
use pnc::train::trainer::{DataRefs, TrainConfig};

const BATTERY_BUDGET_W: f64 = 0.5e-3;

fn train_with(
    kind: AfKind,
    negation: pnc::surrogate::NegationModel,
    split: &pnc::datasets::Split,
) -> (f64, f64, usize) {
    println!("  fitting {} surrogates …", kind.name());
    let activation =
        LearnableActivation::fit(kind, &SurrogateFidelity::smoke()).expect("surrogate fitting");
    let data = DataRefs::from_split(split);
    let mut rng = pnc::linalg::rng::seeded(3);
    let mut net = PrintedNetwork::new(
        split.train.x.cols(),
        2,
        NetworkConfig::default(),
        activation,
        negation,
        &mut rng,
    )
    .expect("5-3-2 topology");

    let cfg = TrainConfig {
        max_epochs: 250,
        patience: 50,
        ..TrainConfig::default()
    };
    train_auglag(
        &mut net,
        &data,
        &AugLagConfig {
            budget_watts: BATTERY_BUDGET_W,
            mu: 2.0,
            outer_iters: 4,
            inner: cfg.with_seed(3),
            warm_start: true,
            rescue: true,
        },
    )
    .expect("constrained training");
    finetune(&mut net, &data, BATTERY_BUDGET_W, &cfg).expect("fine-tuning");

    let acc = net
        .accuracy(&split.test.x, &split.test.labels)
        .expect("shapes match");
    let power = hard_power(&net, data.x_train).expect("shapes match");
    let devices = net.device_count();
    (acc, power, devices)
}

fn main() {
    println!("wearable smart bandage: infection detection at 0.5 mW\n");

    // The Mammographic Mass stand-in doubles as a 5-feature binary
    // medical-screening task of realistic difficulty.
    let dataset = Dataset::generate(DatasetId::MammographicMass, 11);
    let split = dataset.split(4);
    let negation = fit_negation_model(11).expect("negation fitting");

    let mut rows = Vec::new();
    for kind in [AfKind::PTanh, AfKind::PRelu] {
        let (acc, power, devices) = train_with(kind, negation, &split);
        println!(
            "  {:<15} acc {:.1}%  power {:.3} mW  devices {}",
            kind.name(),
            100.0 * acc,
            power * 1e3,
            devices
        );
        assert!(
            power <= BATTERY_BUDGET_W,
            "{} exceeded the battery budget",
            kind.name()
        );
        rows.push((kind, acc, power, devices));
    }

    let (tanh, relu) = (&rows[0], &rows[1]);
    println!("\ntrade-off:");
    println!(
        "  p-tanh accuracy edge : {:+.1} percentage points",
        100.0 * (tanh.1 - relu.1)
    );
    println!(
        "  p-ReLU device saving : {:.0}% fewer printed components ({} vs {})",
        100.0 * (1.0 - relu.3 as f64 / tanh.3 as f64),
        relu.3,
        tanh.3
    );
    println!(
        "\nThe paper's guidance holds: choose p-tanh when accuracy is king, p-ReLU when \
         substrate area, yield, or unit cost dominate."
    );
}
