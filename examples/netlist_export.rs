//! Compile a trained pNC to its printable transistor-level netlist and
//! cross-validate the differentiable abstraction against full-circuit
//! simulation — the step between "trained model" and "send to the
//! printer".
//!
//! ```text
//! cargo run --release --example netlist_export
//! ```

use pnc::circuit::activation::{fit_negation_model, LearnableActivation, SurrogateFidelity};
use pnc::circuit::export::export_network;
use pnc::circuit::{NetworkConfig, PrintedNetwork};
use pnc::datasets::{Dataset, DatasetId};
use pnc::spice::AfKind;
use pnc::train::auglag::{hard_power, train_auglag, AugLagConfig};
use pnc::train::finetune::finetune;
use pnc::train::trainer::{DataRefs, TrainConfig};

fn main() {
    println!("train → prune → export → transistor-level cross-validation\n");

    let activation = LearnableActivation::fit(AfKind::PRelu, &SurrogateFidelity::smoke())
        .expect("surrogate fitting");
    let negation = fit_negation_model(11).expect("negation fitting");
    let dataset = Dataset::generate(DatasetId::Iris, 8);
    let split = dataset.split(2);
    let data = DataRefs::from_split(&split);

    let mut rng = pnc::linalg::rng::seeded(5);
    let mut net = PrintedNetwork::new(
        4,
        3,
        NetworkConfig::default(),
        activation,
        negation,
        &mut rng,
    )
    .expect("4-3-3 topology");

    let p0 = hard_power(&net, data.x_train).expect("shapes match");
    let budget = 0.5 * p0;
    let cfg = TrainConfig {
        max_epochs: 250,
        patience: 50,
        ..TrainConfig::default()
    };
    train_auglag(
        &mut net,
        &data,
        &AugLagConfig {
            budget_watts: budget,
            mu: 2.0,
            outer_iters: 4,
            inner: cfg.with_seed(5),
            warm_start: true,
            rescue: true,
        },
    )
    .expect("constrained training");
    finetune(&mut net, &data, budget, &cfg).expect("fine-tuning");
    println!(
        "trained: {:.1}% test accuracy at {:.3} mW",
        100.0
            * net
                .accuracy(&split.test.x, &split.test.labels)
                .expect("shapes match"),
        hard_power(&net, data.x_train).expect("shapes match") * 1e3
    );

    // Lower to the printable circuit.
    let exported = export_network(&net).expect("lowering");
    let stats = exported.stats();
    println!(
        "\nexported circuit: {} resistors, {} transistors \
         ({} crossbar R, {} negation cells, {} activation circuits)",
        stats.resistors,
        stats.transistors,
        stats.crossbar_resistors,
        stats.negation_circuits,
        stats.activation_circuits
    );

    // Netlist artifact.
    let text = exported.to_spice_string();
    let path = "target/experiments/pnc_iris.cir";
    std::fs::create_dir_all("target/experiments").expect("mkdir");
    std::fs::write(path, &text).expect("write netlist");
    println!("wrote {} ({} lines)", path, text.lines().count());
    println!("\nfirst netlist cards:");
    for line in text.lines().take(8) {
        println!("  {line}");
    }

    // Cross-validate: does the transistor-level circuit classify like
    // the differentiable abstraction it was trained through?
    let x = &split.test.x;
    let labels = &split.test.labels;
    let abstract_preds = net.predict(x).expect("shapes match").row_argmax();
    let circuit_preds = exported.classify(x).expect("full-circuit DC inference");
    let agree = abstract_preds
        .iter()
        .zip(&circuit_preds)
        .filter(|(a, b)| a == b)
        .count();
    let circuit_acc = circuit_preds
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count() as f64
        / labels.len() as f64;
    println!("\ncross-validation on {} test samples:", labels.len());
    println!(
        "  abstraction vs circuit agreement : {:.1}%",
        100.0 * agree as f64 / labels.len() as f64
    );
    println!(
        "  full-circuit test accuracy       : {:.1}%",
        100.0 * circuit_acc
    );
    println!(
        "\n(Differences stem from inter-stage loading, which the differentiable\n\
         abstraction ignores — the exported netlist is the ground truth.)"
    );
}
