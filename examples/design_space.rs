//! Design-space exploration of printed activation circuits — the
//! library as a *hardware characterization* tool rather than a trainer.
//!
//! For each activation family the example:
//!  1. sweeps a corner-to-corner path through the design space
//!     `q = [R, W, L]` with the SPICE-level simulator,
//!  2. shows how transfer shape and mean power move with the design,
//!  3. validates the differentiable surrogates against SPICE at points
//!     the fit never saw.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use pnc::spice::af::{input_grid, mean_power, transfer_curve};
use pnc::spice::{AfDesign, AfKind};
use pnc::surrogate::{fit_transfer, PowerSurrogate, PowerSurrogateConfig};

/// Interpolates geometrically between design-space corners.
fn corner_path(kind: AfKind, t: f64) -> AfDesign {
    let q: Vec<f64> = kind
        .bounds()
        .iter()
        .map(|&(lo, hi)| lo * (hi / lo).powf(t))
        .collect();
    AfDesign::new(kind, q).expect("path stays inside bounds")
}

fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|&v| LEVELS[(((v - lo) / span) * 7.0).round() as usize % 8])
        .collect()
}

fn main() {
    let grid = input_grid(17);
    println!("printed activation design-space exploration\n");

    for kind in AfKind::ALL {
        println!("== {} ({} design parameters) ==", kind.name(), kind.dim());
        for (label, t) in [
            ("weak corner", 0.15),
            ("centre", 0.5),
            ("strong corner", 0.85),
        ] {
            let d = corner_path(kind, t);
            match (transfer_curve(&d, &grid), mean_power(&d, 9)) {
                (Ok(curve), Ok(p)) => {
                    println!(
                        "  {label:<13} transfer {}  mean power {:>8.3} µW",
                        sparkline(&curve),
                        p * 1e6
                    );
                }
                _ => println!("  {label:<13} (did not converge at this corner)"),
            }
        }

        // Surrogate validation at unseen points.
        let power_model =
            PowerSurrogate::fit(kind, &PowerSurrogateConfig::smoke()).expect("power surrogate");
        let transfer_model = fit_transfer(kind, 24, 9).expect("transfer surrogate");
        let mut worst_ratio: f64 = 1.0;
        for &t in &[0.21, 0.47, 0.73] {
            let d = corner_path(kind, t);
            if let Ok(simulated) = mean_power(&d, 9) {
                let predicted = power_model.predict(d.q());
                let r = (predicted / simulated).max(simulated / predicted);
                worst_ratio = worst_ratio.max(r);
            }
        }
        println!(
            "  surrogates: power within {:.1}× of SPICE on unseen designs, transfer RMSE {:.3} V, R² {:.3}",
            worst_ratio,
            transfer_model.fit_rmse(),
            power_model.validation_r2()
        );
        println!();
    }

    println!(
        "Power spans roughly two orders of magnitude across each design space — this is the\n\
         leverage the power-constrained trainer exploits when it co-optimizes q with the\n\
         crossbar conductances."
    );
}
