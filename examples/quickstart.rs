//! Quickstart: train a printed neuromorphic circuit on Iris under a
//! strict power budget, in five steps.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pnc::circuit::activation::{fit_negation_model, LearnableActivation, SurrogateFidelity};
use pnc::circuit::{NetworkConfig, PrintedNetwork};
use pnc::datasets::{Dataset, DatasetId};
use pnc::spice::AfKind;
use pnc::train::auglag::{hard_power, train_auglag, AugLagConfig};
use pnc::train::finetune::finetune;
use pnc::train::trainer::{fit_cross_entropy, DataRefs, TrainConfig};

fn main() {
    // 1. Characterize the printed hardware: simulate the p-tanh
    //    activation circuit with the SPICE-level solver and fit its
    //    transfer + power surrogates (the paper's Sec. III-A pipeline).
    println!("[1/5] fitting p-tanh surrogates from SPICE simulations …");
    let activation = LearnableActivation::fit(AfKind::PTanh, &SurrogateFidelity::smoke())
        .expect("surrogate fitting");
    let negation = fit_negation_model(11).expect("negation fitting");
    println!(
        "      transfer RMSE {:.3} V, power surrogate R² {:.3}",
        activation.transfer().fit_rmse(),
        activation.power_surrogate().validation_r2()
    );

    // 2. Data: the Iris stand-in, split 60/20/20 as in the paper.
    let dataset = Dataset::generate(DatasetId::Iris, 42);
    let split = dataset.split(7);
    let data = DataRefs::from_split(&split);

    // 3. Find the unconstrained power ceiling P_max.
    println!("[2/5] training an unconstrained reference …");
    let mut rng = pnc::linalg::rng::seeded(2);
    let mut reference = PrintedNetwork::new(
        dataset.features(),
        dataset.classes(),
        NetworkConfig::default(),
        activation.clone(),
        negation,
        &mut rng,
    )
    .expect("4-3-3 topology");
    let train_cfg = TrainConfig {
        max_epochs: 300,
        patience: 60,
        ..TrainConfig::default()
    };
    fit_cross_entropy(&mut reference, &data, &train_cfg).expect("reference fit");
    let p_max = hard_power(&reference, data.x_train).expect("shapes match");
    let ref_acc = reference
        .accuracy(&split.test.x, &split.test.labels)
        .expect("shapes match");
    println!(
        "      reference: {:.1}% accuracy at {:.3} mW",
        100.0 * ref_acc,
        p_max * 1e3
    );

    // 4. Constrain to 40 % of P_max with the augmented Lagrangian.
    println!("[3/5] power-constrained training at a 40% budget …");
    let budget = 0.4 * p_max;
    let mut rng = pnc::linalg::rng::seeded(2);
    let mut net = PrintedNetwork::new(
        dataset.features(),
        dataset.classes(),
        NetworkConfig::default(),
        activation,
        negation,
        &mut rng,
    )
    .expect("4-3-3 topology");
    let report = train_auglag(
        &mut net,
        &data,
        &AugLagConfig {
            budget_watts: budget,
            mu: 2.0,
            outer_iters: 4,
            inner: train_cfg.with_seed(2),
            warm_start: true,
            rescue: true,
        },
    )
    .expect("constrained training");
    println!(
        "      after {} outer iterations: feasible = {}, λ = {:.3}",
        report.outer.len(),
        report.feasible,
        report.lambda_final
    );

    // 5. Prune + fine-tune, then evaluate.
    println!("[4/5] mask-based fine-tuning …");
    let ft = finetune(&mut net, &data, budget, &train_cfg).expect("fine-tuning");
    println!("      pruned {} crossbar entries", ft.pruned_entries);

    println!("[5/5] results");
    let acc = net
        .accuracy(&split.test.x, &split.test.labels)
        .expect("shapes match");
    let power = hard_power(&net, data.x_train).expect("shapes match");
    let breakdown = net.power_report(data.x_train).expect("shapes match");
    println!(
        "      test accuracy : {:.1}% (unconstrained {:.1}%)",
        100.0 * acc,
        100.0 * ref_acc
    );
    println!(
        "      power         : {:.3} mW of {:.3} mW budget ({})",
        power * 1e3,
        budget * 1e3,
        if power <= budget {
            "FEASIBLE"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "      breakdown     : crossbar {:.3} mW, activations {:.3} mW ({}), negations {:.3} mW ({})",
        breakdown.crossbar_watts * 1e3,
        breakdown.activation_watts * 1e3,
        breakdown.af_circuits,
        breakdown.negation_watts * 1e3,
        breakdown.neg_circuits
    );
    println!("      devices       : {}", net.device_count());
    assert!(
        power <= budget,
        "the augmented Lagrangian must end feasible"
    );
}
