//! Smart-packaging scenario (paper Fig. 1a–c): a printed classifier on
//! a milk carton decides from six sensor channels (temperature history,
//! gas, humidity) whether the content is *fresh*, *degrading* or
//! *spoiled* — powered by a printed energy harvester with a hard
//! 0.3 mW budget.
//!
//! Demonstrates using the library with **your own sensor data** (not a
//! built-in benchmark dataset) and a fixed absolute power budget rather
//! than a fraction of P_max.
//!
//! ```text
//! cargo run --release --example smart_packaging
//! ```

use pnc::circuit::activation::{fit_negation_model, LearnableActivation, SurrogateFidelity};
use pnc::circuit::{NetworkConfig, PrintedNetwork};
use pnc::linalg::rng::{next_normal, seeded};
use pnc::linalg::Matrix;
use pnc::spice::AfKind;
use pnc::train::auglag::{hard_power, train_auglag, AugLagConfig};
use pnc::train::trainer::{DataRefs, TrainConfig};
use rand::Rng;

/// Synthesizes carton sensor readings: 6 channels, 3 freshness classes.
/// Spoilage raises mean temperature, gas (ethanol/CO₂) and humidity and
/// adds variance — a simple generative story standing in for real
/// supply-chain traces.
fn carton_batch(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = seeded(seed);
    let mut x = Matrix::zeros(n, 6);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let class = rng.gen_range(0..3usize); // 0 fresh, 1 degrading, 2 spoiled
        let severity = class as f64 / 2.0;
        // temp mean, temp peak, time-above-8C, gas, humidity, lid-events
        let means = [
            -0.4 + 0.5 * severity,
            -0.3 + 0.7 * severity,
            -0.6 + 0.9 * severity,
            -0.5 + 0.8 * severity,
            -0.2 + 0.4 * severity,
            -0.1 + 0.2 * severity,
        ];
        for (j, &m) in means.iter().enumerate() {
            let noise = 0.18 + 0.08 * severity;
            x[(i, j)] = (m + noise * next_normal(&mut rng)).clamp(-0.8, 0.8);
        }
        y.push(class);
    }
    (x, y)
}

fn main() {
    const HARVESTER_BUDGET_W: f64 = 0.3e-3; // 0.3 mW

    println!("smart packaging: freshness classifier under a 0.3 mW harvester budget\n");

    // p-Clipped_ReLU: the paper's best activation at low power budgets.
    println!("fitting p-Clipped_ReLU surrogates …");
    let activation = LearnableActivation::fit(AfKind::PClippedRelu, &SurrogateFidelity::smoke())
        .expect("surrogate fitting");
    let negation = fit_negation_model(11).expect("negation fitting");

    let (x_train, y_train) = carton_batch(240, 1);
    let (x_val, y_val) = carton_batch(80, 2);
    let (x_test, y_test) = carton_batch(80, 3);
    let data = DataRefs {
        x_train: &x_train,
        y_train: &y_train,
        x_val: &x_val,
        y_val: &y_val,
    };

    let mut rng = seeded(9);
    let mut net = PrintedNetwork::new(
        6,
        3,
        NetworkConfig::default(),
        activation,
        negation,
        &mut rng,
    )
    .expect("6-3-3 topology");

    let p_init = hard_power(&net, &x_train).expect("shapes match");
    println!(
        "initial circuit draws {:.3} mW; harvester provides {:.3} mW",
        p_init * 1e3,
        HARVESTER_BUDGET_W * 1e3
    );

    let report = train_auglag(
        &mut net,
        &data,
        &AugLagConfig {
            budget_watts: HARVESTER_BUDGET_W,
            mu: 2.0,
            outer_iters: 4,
            inner: TrainConfig {
                max_epochs: 250,
                patience: 50,
                seed: Some(9),
                ..TrainConfig::default()
            },
            warm_start: true,
            rescue: true,
        },
    )
    .expect("constrained training");

    let acc =
        pnc::autodiff::functional::accuracy(&net.predict(&x_test).expect("shapes match"), &y_test);
    let power = hard_power(&net, &x_train).expect("shapes match");
    println!("\nresults:");
    println!("  test accuracy : {:.1}% (chance: 33.3%)", 100.0 * acc);
    println!(
        "  power         : {:.3} mW / {:.3} mW ({})",
        power * 1e3,
        HARVESTER_BUDGET_W * 1e3,
        if report.feasible {
            "within harvest"
        } else {
            "OVER BUDGET"
        }
    );
    println!(
        "  devices       : {} printed components",
        net.device_count()
    );
    println!(
        "  λ trajectory  : {:?}",
        report
            .outer
            .iter()
            .map(|o| format!("{:.2}", o.lambda))
            .collect::<Vec<_>>()
    );
    assert!(
        report.feasible,
        "the carton must run on harvested power alone"
    );
    assert!(acc > 0.5, "classifier should clearly beat chance");
}
