//! Multi-constraint training + convergence tracing — the paper's
//! future-work direction ("applicability to additional circuit
//! components and constraints", Sec. V) on a disposable-sensor scenario
//! where *both* resources are hard-limited:
//!
//! * **power** (a printed battery rates 0.25 mW continuous), and
//! * **printed devices** (substrate area and yield cap the design at
//!   60 components).
//!
//! Also demonstrates `fit_traced`: per-epoch telemetry of the inner
//! solves, rendered as terminal sparklines.
//!
//! ```text
//! cargo run --release --example multi_constraint
//! ```

use pnc::circuit::activation::{fit_negation_model, LearnableActivation, SurrogateFidelity};
use pnc::circuit::{NetworkConfig, PrintedNetwork};
use pnc::datasets::{Dataset, DatasetId};
use pnc::spice::AfKind;
use pnc::train::multi::{train_multi_constraint, ConstraintKind, MultiConstraintConfig};
use pnc::train::trainer::{fit_traced, DataRefs, EpochRecord, TrainConfig};

const POWER_BUDGET_W: f64 = 0.25e-3;
const DEVICE_BUDGET: f64 = 60.0;

fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|&v| LEVELS[(((v - lo) / span) * 7.0).round() as usize % 8])
        .collect()
}

fn main() {
    println!(
        "disposable sensor: ≤ {:.2} mW AND ≤ {:.0} printed devices\n",
        POWER_BUDGET_W * 1e3,
        DEVICE_BUDGET
    );

    // p-ReLU: the device-count-friendly activation (2 components each).
    let activation = LearnableActivation::fit(AfKind::PRelu, &SurrogateFidelity::smoke())
        .expect("surrogate fitting");
    let negation = fit_negation_model(11).expect("negation fitting");

    let dataset = Dataset::generate(DatasetId::Seeds, 3);
    let split = dataset.split(1);
    let data = DataRefs::from_split(&split);

    let mut rng = pnc::linalg::rng::seeded(4);
    let mut net = PrintedNetwork::new(
        dataset.features(),
        dataset.classes(),
        NetworkConfig::default(),
        activation,
        negation,
        &mut rng,
    )
    .expect("7-3-3 topology");

    println!(
        "initial circuit: {:.3} mW, {} devices",
        net.power_report(data.x_train)
            .expect("shapes match")
            .total()
            * 1e3,
        net.device_count()
    );

    // First, show one traced unconstrained inner solve: the telemetry
    // users would plot.
    println!("\ntracing a 120-epoch cross-entropy warm-up:");
    let mut history: Vec<EpochRecord> = Vec::new();
    fit_traced(
        &mut net,
        &data,
        &TrainConfig {
            max_epochs: 120,
            patience: 40,
            ..TrainConfig::default()
        },
        &|_t, _b, ce| ce,
        &|_n| true,
        &mut |rec| history.push(rec),
    )
    .expect("warm-up fit");
    let objectives: Vec<f64> = history.iter().map(|r| r.objective).collect();
    let accs: Vec<f64> = history.iter().map(|r| r.val_accuracy).collect();
    println!("  objective {}", sparkline(&objectives));
    println!("  val acc   {}", sparkline(&accs));
    println!(
        "  ends at objective {:.3}, val acc {:.1} %",
        objectives.last().unwrap(),
        100.0 * accs.last().unwrap()
    );

    // Now the joint power + device-count constrained run.
    println!("\nmulti-constraint augmented Lagrangian:");
    let report = train_multi_constraint(
        &mut net,
        &data,
        &MultiConstraintConfig {
            constraints: vec![
                ConstraintKind::Power {
                    budget_watts: POWER_BUDGET_W,
                },
                ConstraintKind::DeviceCount {
                    budget_devices: DEVICE_BUDGET,
                },
            ],
            mu: 2.0,
            outer_iters: 5,
            inner: TrainConfig {
                max_epochs: 200,
                patience: 50,
                ..TrainConfig::default()
            },
        },
    )
    .expect("multi-constraint training");

    let power = net
        .power_report(data.x_train)
        .expect("shapes match")
        .total();
    let devices = net.device_count();
    let acc = net
        .accuracy(&split.test.x, &split.test.labels)
        .expect("shapes match");
    println!(
        "  multipliers  : {:?}",
        report
            .lambdas
            .iter()
            .map(|l| format!("{l:.2}"))
            .collect::<Vec<_>>()
    );
    println!(
        "  violations   : power {:+.1} %, devices {:+.1} %",
        100.0 * report.violations[0],
        100.0 * report.violations[1]
    );
    println!("\nresults:");
    println!("  test accuracy : {:.1} %", 100.0 * acc);
    println!(
        "  power         : {:.3} mW / {:.2} mW",
        power * 1e3,
        POWER_BUDGET_W * 1e3
    );
    println!("  devices       : {devices} / {DEVICE_BUDGET:.0}");
    println!(
        "  both budgets  : {}",
        if report.feasible {
            "SATISFIED"
        } else {
            "violated"
        }
    );
    assert!(report.feasible, "both constraints must hold");
    assert!(acc > 0.5, "classifier should clearly beat chance");
}
